//! The task graph: OpenMP-style deferred tasks with `depend` matching on
//! array sections, taskgroups, and a concurrency race detector.
//!
//! Dependence semantics follow OpenMP: a task's `depend(in: s)` orders it
//! after previously created **sibling** tasks (same parent task context)
//! with an overlapping `out` section; `depend(out: s)` orders after
//! overlapping `in` *and* `out` records. Tasks created in different
//! parent contexts (e.g. two `taskloop` bodies) do *not* synchronize via
//! `depend` — exactly the OpenMP rule that makes the paper's Two Buffers
//! version rely on `taskgroup` barriers instead.
//!
//! The graph also keeps per-task *footprints* (everything the task reads
//! and writes: declared depends plus map sections). Footprints never
//! create edges; they feed the race detector, which flags any two tasks
//! that run concurrently in virtual time with conflicting footprints —
//! the honest version of "the coherence between the mappings of the
//! different directives is the programmer's responsibility" (§V-A.2).

use std::collections::HashMap;

use crate::section::{ArrayId, Section};

/// Identifier of a task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u64);

/// Identifier of a taskgroup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// One footprint item: an access to `section`, either on the host
/// (`device == None`) or to its device image (`device == Some(d)`).
/// Accesses in different spaces never conflict (two devices may hold
/// copies of the same section; only same-space overlap is a race).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpAccess {
    /// None = host memory; Some(d) = device d's image.
    pub device: Option<u32>,
    /// The section touched.
    pub section: Section,
}

impl FpAccess {
    /// A host-space access.
    pub fn host(section: Section) -> Self {
        FpAccess {
            device: None,
            section,
        }
    }

    /// A device-space access.
    pub fn device(device: u32, section: Section) -> Self {
        FpAccess {
            device: Some(device),
            section,
        }
    }

    /// Conflicting overlap with another access, if in the same space.
    pub fn conflict(&self, other: &FpAccess) -> Option<Section> {
        if self.device != other.device {
            return None;
        }
        self.section.intersection(&other.section)
    }
}

/// Task lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Created; waiting on predecessors or a group gate.
    Waiting,
    /// Eligible to start (start event scheduled).
    Ready,
    /// Action running (virtual time advancing).
    Running,
    /// Done.
    Finished,
}

/// Everything needed to create a task.
pub struct TaskSpec {
    /// Human-readable label (traces, diagnostics).
    pub label: String,
    /// Sections whose previous writers/readers this task must wait for:
    /// `(section, is_write)`.
    pub wait_on: Vec<(Section, bool)>,
    /// Sections this task publishes for *future* siblings to match
    /// against: `(section, is_write)`. Usually identical to `wait_on`;
    /// split so composite constructs can wait at their first internal
    /// task and publish at their last.
    pub publish: Vec<(Section, bool)>,
    /// Read footprint for race detection.
    pub fp_reads: Vec<FpAccess>,
    /// Write footprint for race detection.
    pub fp_writes: Vec<FpAccess>,
    /// Parent task context (None = the main program).
    pub parent: Option<TaskId>,
    /// Taskgroup this task belongs to.
    pub group: Option<GroupId>,
    /// Additional readiness gate: do not start until this group is empty.
    pub gate_group: Option<GroupId>,
    /// Explicit predecessor tasks (internal chaining of composite
    /// constructs).
    pub extra_preds: Vec<TaskId>,
}

impl TaskSpec {
    /// A minimal spec with just a label.
    pub fn new(label: impl Into<String>) -> Self {
        TaskSpec {
            label: label.into(),
            wait_on: Vec::new(),
            publish: Vec::new(),
            fp_reads: Vec::new(),
            fp_writes: Vec::new(),
            parent: None,
            group: None,
            gate_group: None,
            extra_preds: Vec::new(),
        }
    }
}

pub(crate) struct Task {
    pub label: String,
    pub state: TaskState,
    pub unfinished_preds: usize,
    pub succs: Vec<TaskId>,
    pub group: Option<GroupId>,
    pub gate_group: Option<GroupId>,
    pub parent: Option<TaskId>,
    pub fp_reads: Vec<FpAccess>,
    pub fp_writes: Vec<FpAccess>,
}

struct GroupState {
    unfinished: usize,
    gated: Vec<TaskId>,
}

#[derive(Clone, Copy)]
struct DepRecord {
    task: TaskId,
    section: Section,
    write: bool,
}

/// A detected footprint race between two concurrently running tasks.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// First task (started earlier).
    pub first: TaskId,
    /// Label of the first task.
    pub first_label: String,
    /// Second task (whose start detected the race).
    pub second: TaskId,
    /// Label of the second task.
    pub second_label: String,
    /// The conflicting overlap.
    pub section: Section,
}

/// The task graph.
#[derive(Default)]
pub struct TaskGraph {
    tasks: HashMap<u64, Task>,
    next_task: u64,
    groups: Vec<GroupState>,
    /// Dependence records, scoped by (parent context, array).
    records: HashMap<(Option<TaskId>, ArrayId), Vec<DepRecord>>,
    running: Vec<TaskId>,
    races: Vec<RaceReport>,
    unfinished: usize,
    /// Unfinished children per parent context (None = main program).
    children: HashMap<Option<TaskId>, usize>,
    /// Monotone count of tasks ever finished — the progress signal the
    /// blocking-drain watchdog watches (a drain that keeps completing
    /// tasks is slow, not wedged).
    finished_total: u64,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total unfinished tasks.
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// Monotone count of tasks finished since construction.
    pub fn finished_total(&self) -> u64 {
        self.finished_total
    }

    /// Unfinished children of a parent context.
    pub fn unfinished_children(&self, parent: Option<TaskId>) -> usize {
        self.children.get(&parent).copied().unwrap_or(0)
    }

    /// Create a taskgroup.
    pub fn group_create(&mut self) -> GroupId {
        self.groups.push(GroupState {
            unfinished: 0,
            gated: Vec::new(),
        });
        GroupId((self.groups.len() - 1) as u32)
    }

    /// True if all the group's tasks have finished.
    pub fn group_is_empty(&self, g: GroupId) -> bool {
        self.groups[g.0 as usize].unfinished == 0
    }

    /// Task state.
    pub fn state(&self, id: TaskId) -> TaskState {
        self.tasks[&id.0].state
    }

    /// True once the task has finished.
    pub fn is_finished(&self, id: TaskId) -> bool {
        self.state(id) == TaskState::Finished
    }

    /// Task label.
    pub fn label(&self, id: TaskId) -> &str {
        &self.tasks[&id.0].label
    }

    /// Group the task belongs to.
    pub fn group_of(&self, id: TaskId) -> Option<GroupId> {
        self.tasks[&id.0].group
    }

    /// Recorded races.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Create a task. Returns its id and whether it is immediately ready
    /// (the caller schedules the start event; the graph marks it Ready).
    pub fn create(&mut self, spec: TaskSpec) -> (TaskId, bool) {
        let id = TaskId(self.next_task);
        self.next_task += 1;

        // Dependence matching against sibling records.
        let mut preds: Vec<TaskId> = Vec::new();
        for &(sec, is_write) in &spec.wait_on {
            let key = (spec.parent, sec.array);
            if let Some(records) = self.records.get_mut(&key) {
                // Prune finished tasks while scanning.
                records.retain(|r| {
                    self.tasks
                        .get(&r.task.0)
                        .map(|t| t.state != TaskState::Finished)
                        .unwrap_or(false)
                });
                for r in records.iter() {
                    let conflict = if is_write {
                        // out waits on previous in and out.
                        r.section.overlaps(&sec)
                    } else {
                        // in waits on previous out only.
                        r.write && r.section.overlaps(&sec)
                    };
                    if conflict && !preds.contains(&r.task) {
                        preds.push(r.task);
                    }
                }
            }
        }
        for &p in &spec.extra_preds {
            if !self.is_finished(p) && !preds.contains(&p) {
                preds.push(p);
            }
        }

        // Publish this task's records for future siblings.
        for &(section, write) in &spec.publish {
            self.records
                .entry((spec.parent, section.array))
                .or_default()
                .push(DepRecord {
                    task: id,
                    section,
                    write,
                });
        }

        if let Some(g) = spec.group {
            self.groups[g.0 as usize].unfinished += 1;
        }
        *self.children.entry(spec.parent).or_insert(0) += 1;
        self.unfinished += 1;

        let n_preds = preds.len();
        for p in preds {
            self.tasks
                .get_mut(&p.0)
                .expect("predecessor exists")
                .succs
                .push(id);
        }

        let gate_open = spec
            .gate_group
            .map(|g| self.group_is_empty(g))
            .unwrap_or(true);
        let ready = n_preds == 0 && gate_open;

        let mut task = Task {
            label: spec.label,
            state: if ready {
                TaskState::Ready
            } else {
                TaskState::Waiting
            },
            unfinished_preds: n_preds,
            succs: Vec::new(),
            group: spec.group,
            gate_group: spec.gate_group,
            parent: spec.parent,
            fp_reads: spec.fp_reads,
            fp_writes: spec.fp_writes,
        };
        if ready {
            task.gate_group = None; // consumed
        } else if let Some(g) = spec.gate_group {
            if n_preds == 0 {
                self.groups[g.0 as usize].gated.push(id);
            }
            // If it has preds too, the gate is re-checked when the last
            // pred finishes.
        }
        self.tasks.insert(id.0, task);
        (id, ready)
    }

    /// Mark a task as running and record any footprint races against the
    /// currently running set.
    pub fn start(&mut self, id: TaskId) {
        // Race detection against every running task.
        let me = &self.tasks[&id.0];
        debug_assert!(
            matches!(me.state, TaskState::Ready),
            "start of task {id:?} in state {:?}",
            me.state
        );
        let mut found: Vec<RaceReport> = Vec::new();
        for &other_id in &self.running {
            let other = &self.tasks[&other_id.0];
            let conflict = footprint_conflict(
                (&me.fp_reads, &me.fp_writes),
                (&other.fp_reads, &other.fp_writes),
            );
            if let Some(section) = conflict {
                found.push(RaceReport {
                    first: other_id,
                    first_label: other.label.clone(),
                    second: id,
                    second_label: me.label.clone(),
                    section,
                });
            }
        }
        self.races.extend(found);
        self.tasks.get_mut(&id.0).expect("exists").state = TaskState::Running;
        self.running.push(id);
    }

    /// Mark a task finished. Returns the tasks that became ready.
    pub fn finish(&mut self, id: TaskId) -> Vec<TaskId> {
        let (succs, group, parent) = {
            let t = self.tasks.get_mut(&id.0).expect("finish of unknown task");
            debug_assert!(
                matches!(t.state, TaskState::Running),
                "finish of task {id:?} in state {:?}",
                t.state
            );
            t.state = TaskState::Finished;
            (std::mem::take(&mut t.succs), t.group, t.parent)
        };
        self.running.retain(|&r| r != id);
        self.unfinished -= 1;
        self.finished_total += 1;
        *self.children.get_mut(&parent).expect("counted at create") -= 1;

        let mut ready = Vec::new();
        for s in succs {
            let t = self.tasks.get_mut(&s.0).expect("successor exists");
            t.unfinished_preds -= 1;
            if t.unfinished_preds == 0 {
                match t.gate_group {
                    Some(g) => {
                        if self.groups[g.0 as usize].unfinished == 0 {
                            self.mark_ready(s, &mut ready);
                        } else {
                            self.groups[g.0 as usize].gated.push(s);
                        }
                    }
                    None => self.mark_ready(s, &mut ready),
                }
            }
        }
        if let Some(g) = group {
            let gs = &mut self.groups[g.0 as usize];
            gs.unfinished -= 1;
            if gs.unfinished == 0 {
                for gated in std::mem::take(&mut gs.gated) {
                    let t = &self.tasks[&gated.0];
                    if t.state == TaskState::Waiting && t.unfinished_preds == 0 {
                        self.mark_ready(gated, &mut ready);
                    }
                }
            }
        }
        ready
    }

    fn mark_ready(&mut self, id: TaskId, out: &mut Vec<TaskId>) {
        let t = self.tasks.get_mut(&id.0).expect("exists");
        if t.state == TaskState::Waiting {
            t.state = TaskState::Ready;
            t.gate_group = None;
            out.push(id);
        }
    }

    /// Erase a task's footprints. Used when a fault handler *neutralizes*
    /// a not-yet-started task (its action becomes a no-op, so it touches
    /// nothing) or *forgives* a faulted running task (its operation was
    /// aborted mid-flight; replacement work covering the same sections
    /// must not be flagged as racing with a corpse).
    pub fn clear_footprints(&mut self, id: TaskId) {
        let t = self
            .tasks
            .get_mut(&id.0)
            .expect("clear_footprints of unknown task");
        t.fp_reads.clear();
        t.fp_writes.clear();
    }
}

/// First conflicting overlap between two footprints (W∩W, W∩R, R∩W),
/// considering only same-space accesses.
fn footprint_conflict(
    a: (&[FpAccess], &[FpAccess]),
    b: (&[FpAccess], &[FpAccess]),
) -> Option<Section> {
    let (a_reads, a_writes) = a;
    let (b_reads, b_writes) = b;
    for aw in a_writes {
        for bs in b_writes.iter().chain(b_reads.iter()) {
            if let Some(ov) = aw.conflict(bs) {
                return Some(ov);
            }
        }
    }
    for ar in a_reads {
        for bw in b_writes {
            if let Some(ov) = ar.conflict(bw) {
                return Some(ov);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::ArrayId;

    const A: ArrayId = ArrayId(0);

    fn sec(start: usize, len: usize) -> Section {
        Section::new(A, start, len)
    }

    fn spec(label: &str) -> TaskSpec {
        TaskSpec::new(label)
    }

    /// Drive a task through its lifecycle manually.
    fn run(g: &mut TaskGraph, id: TaskId) -> Vec<TaskId> {
        g.start(id);
        g.finish(id)
    }

    #[test]
    fn independent_tasks_are_ready() {
        let mut g = TaskGraph::new();
        let (t1, r1) = g.create(spec("a"));
        let (t2, r2) = g.create(spec("b"));
        assert!(r1 && r2);
        assert_eq!(g.unfinished(), 2);
        run(&mut g, t1);
        run(&mut g, t2);
        assert_eq!(g.unfinished(), 0);
    }

    #[test]
    fn out_then_in_creates_edge() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("writer");
        s1.wait_on = vec![(sec(0, 10), true)];
        s1.publish = vec![(sec(0, 10), true)];
        let (w, ready) = g.create(s1);
        assert!(ready);
        let mut s2 = spec("reader");
        s2.wait_on = vec![(sec(5, 10), false)];
        s2.publish = vec![(sec(5, 10), false)];
        let (r, ready) = g.create(s2);
        assert!(!ready, "reader must wait for overlapping writer");
        let now_ready = run(&mut g, w);
        assert_eq!(now_ready, vec![r]);
    }

    #[test]
    fn in_then_in_no_edge() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("r1");
        s1.wait_on = vec![(sec(0, 10), false)];
        s1.publish = vec![(sec(0, 10), false)];
        g.create(s1);
        let mut s2 = spec("r2");
        s2.wait_on = vec![(sec(0, 10), false)];
        s2.publish = vec![(sec(0, 10), false)];
        let (_, ready) = g.create(s2);
        assert!(ready, "readers don't serialize");
    }

    #[test]
    fn in_then_out_creates_edge() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("reader");
        s1.wait_on = vec![(sec(0, 10), false)];
        s1.publish = vec![(sec(0, 10), false)];
        let (r, _) = g.create(s1);
        let mut s2 = spec("writer");
        s2.wait_on = vec![(sec(0, 10), true)];
        s2.publish = vec![(sec(0, 10), true)];
        let (_, ready) = g.create(s2);
        assert!(!ready, "writer waits for previous reader");
        run(&mut g, r);
    }

    #[test]
    fn disjoint_sections_no_edge() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("w1");
        s1.publish = vec![(sec(0, 10), true)];
        g.create(s1);
        let mut s2 = spec("w2");
        s2.wait_on = vec![(sec(10, 10), true)];
        let (_, ready) = g.create(s2);
        assert!(ready, "disjoint chunks run concurrently");
    }

    #[test]
    fn different_parents_do_not_match() {
        let mut g = TaskGraph::new();
        let (p1, _) = g.create(spec("parent1"));
        let (p2, _) = g.create(spec("parent2"));
        let mut s1 = spec("w-in-p1");
        s1.parent = Some(p1);
        s1.publish = vec![(sec(0, 10), true)];
        g.create(s1);
        let mut s2 = spec("r-in-p2");
        s2.parent = Some(p2);
        s2.wait_on = vec![(sec(0, 10), false)];
        let (_, ready) = g.create(s2);
        assert!(ready, "depend only matches siblings");
    }

    #[test]
    fn chain_of_kernels() {
        // forces(out F) → accel(in F, out Acc) → velocity(in Acc, out V).
        let f = |s: usize| sec(s * 100, 100);
        let mut g = TaskGraph::new();
        let mut s1 = spec("forces");
        s1.publish = vec![(f(0), true)];
        let (t1, _) = g.create(s1);
        let mut s2 = spec("accel");
        s2.wait_on = vec![(f(0), false), (f(1), true)];
        s2.publish = vec![(f(1), true)];
        let (t2, r2) = g.create(s2);
        assert!(!r2);
        let mut s3 = spec("velocity");
        s3.wait_on = vec![(f(1), false), (f(2), true)];
        s3.publish = vec![(f(2), true)];
        let (t3, r3) = g.create(s3);
        assert!(!r3);
        assert_eq!(run(&mut g, t1), vec![t2]);
        assert_eq!(run(&mut g, t2), vec![t3]);
        assert_eq!(run(&mut g, t3), vec![]);
    }

    #[test]
    fn groups_count_and_gate() {
        let mut g = TaskGraph::new();
        let grp = g.group_create();
        assert!(g.group_is_empty(grp));
        let mut s1 = spec("member");
        s1.group = Some(grp);
        let (m, _) = g.create(s1);
        assert!(!g.group_is_empty(grp));
        // A gated task is not ready while the group is non-empty.
        let mut s2 = spec("continuation");
        s2.gate_group = Some(grp);
        let (c, ready) = g.create(s2);
        assert!(!ready);
        let ready_after = run(&mut g, m);
        assert_eq!(ready_after, vec![c]);
        assert!(g.group_is_empty(grp));
    }

    #[test]
    fn gate_on_already_empty_group() {
        let mut g = TaskGraph::new();
        let grp = g.group_create();
        let mut s = spec("c");
        s.gate_group = Some(grp);
        let (_, ready) = g.create(s);
        assert!(ready);
    }

    #[test]
    fn gate_plus_preds() {
        let mut g = TaskGraph::new();
        let grp = g.group_create();
        let mut member = spec("member");
        member.group = Some(grp);
        let (m, _) = g.create(member);
        let (p, _) = g.create(spec("pred"));
        let mut s = spec("both");
        s.gate_group = Some(grp);
        s.extra_preds = vec![p];
        let (b, ready) = g.create(s);
        assert!(!ready);
        // Finish the group first: still waiting on pred.
        let r1 = run(&mut g, m);
        assert!(r1.is_empty());
        // Finish pred: now ready.
        let r2 = run(&mut g, p);
        assert_eq!(r2, vec![b]);
    }

    #[test]
    fn extra_preds_of_finished_tasks_ignored() {
        let mut g = TaskGraph::new();
        let (p, _) = g.create(spec("p"));
        run(&mut g, p);
        let mut s = spec("after");
        s.extra_preds = vec![p];
        let (_, ready) = g.create(s);
        assert!(ready);
    }

    #[test]
    fn race_detection_on_concurrent_conflict() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("writer");
        s1.fp_writes = vec![FpAccess::host(sec(0, 10))];
        let (w, _) = g.create(s1);
        let mut s2 = spec("reader");
        s2.fp_reads = vec![FpAccess::host(sec(5, 10))];
        let (r, _) = g.create(s2);
        g.start(w);
        g.start(r); // concurrent with writer → race
        assert_eq!(g.races().len(), 1);
        let race = &g.races()[0];
        assert_eq!(race.first, w);
        assert_eq!(race.second, r);
        assert_eq!(race.section, sec(5, 5));
        g.finish(w);
        g.finish(r);
    }

    #[test]
    fn no_race_when_serialized() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("writer");
        s1.fp_writes = vec![FpAccess::host(sec(0, 10))];
        let (w, _) = g.create(s1);
        let mut s2 = spec("reader");
        s2.fp_reads = vec![FpAccess::host(sec(0, 10))];
        let (r, _) = g.create(s2);
        run(&mut g, w); // finished before reader starts
        run(&mut g, r);
        assert!(g.races().is_empty());
    }

    #[test]
    fn no_race_on_read_read() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("r1");
        s1.fp_reads = vec![FpAccess::host(sec(0, 10))];
        let (a, _) = g.create(s1);
        let mut s2 = spec("r2");
        s2.fp_reads = vec![FpAccess::host(sec(0, 10))];
        let (b, _) = g.create(s2);
        g.start(a);
        g.start(b);
        assert!(g.races().is_empty());
        g.finish(a);
        g.finish(b);
    }

    #[test]
    fn cleared_footprints_do_not_race() {
        let mut g = TaskGraph::new();
        let mut s1 = spec("faulted-writer");
        s1.fp_writes = vec![FpAccess::host(sec(0, 10))];
        let (w, _) = g.create(s1);
        let mut s2 = spec("replacement");
        s2.fp_writes = vec![FpAccess::host(sec(0, 10))];
        let (r, _) = g.create(s2);
        g.start(w);
        // The writer faulted: its in-flight work is aborted, so the
        // replacement covering the same section is not a race.
        g.clear_footprints(w);
        g.start(r);
        assert!(g.races().is_empty());
        g.finish(w);
        g.finish(r);
    }

    #[test]
    fn children_counting() {
        let mut g = TaskGraph::new();
        let (p, _) = g.create(spec("parent"));
        assert_eq!(g.unfinished_children(None), 1);
        let mut c1 = spec("child");
        c1.parent = Some(p);
        let (c, _) = g.create(c1);
        assert_eq!(g.unfinished_children(Some(p)), 1);
        run(&mut g, c);
        assert_eq!(g.unfinished_children(Some(p)), 0);
        run(&mut g, p);
        assert_eq!(g.unfinished_children(None), 0);
    }
}
