//! The pipelined transfer/compute overlap engine behind
//! `spread_overlap(depth)`.
//!
//! A classic construct moves its whole chunk in, runs one kernel, and
//! moves the whole chunk out — three strictly serial phases per device
//! (the paper's One-Buffer discipline). With `spread_overlap(depth)` the
//! runtime splits the chunk's iteration range into `depth` contiguous
//! *stages* and software-pipelines them per device:
//!
//! ```text
//! H2D:   [s0][s1][s2][s3]
//! krnl:      [s0][s1][s2][s3]
//! D2H:           [s0][s1][s2][s3]
//! ```
//!
//! Every pipelined copy and sub-kernel is *streamed* — it skips the
//! device's default-stream [`SerialGate`](spread_devices::gate) so the
//! copy engines and the compute queue run concurrently — while the
//! per-engine FIFO still orders the stages among themselves, which is
//! exactly the multi-stream + in-order-queue model of a real device.
//!
//! ## What stays whole
//!
//! The pipeline is an *internal* reorganization of one construct; its
//! external contract is unchanged:
//!
//! - The construct still consists of exactly three tasks
//!   (enter → kernel → exit), so `depend`, straggler watching,
//!   resilience guards and cancellation see the same shape.
//! - D2H sub-slices are staged like any other exit and drained
//!   all-or-nothing at the exit's commit point, through the same
//!   [`staged_commit_finish`] the classic path uses — the commit gate,
//!   integrity verification and healing, and the rescue log all observe
//!   whole-piece commits. No sub-slice commit is externally visible.
//! - Under allocation backpressure an enter that cannot get memory
//!   parks classically and the construct *bypasses* the pipeline
//!   (degrades to the un-pipelined path) rather than deadlocking.
//!
//! ## Transfer slicing and coalescing
//!
//! Stage `j` of an H2D copy ships the bytes the sub-kernel over stage
//! `j` is the first to touch (per the kernel's declared `section_of`
//! argument windows, halos included); bytes no stage reads — the
//! written-only region of a `tofrom` map — ship with stage 0, before
//! any read-modify-write sub-kernel may run. Adjacent per-argument runs
//! are merged into single DMA descriptors. D2H is predicted at kernel
//! launch from the exit-equivalent maps (`refcount == 1` means the exit
//! will release the entry and copy out) and reconciled against the real
//! exit plan — a misprediction falls back to a whole-section copy, and
//! staged sub-slices whose entry survives the exit are discarded
//! unwritten.

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::rc::Rc;

use spread_devices::compute::KernelOp;
use spread_devices::dma::DmaOp;
use spread_devices::node::DeviceHandle;
use spread_devices::AllocId;
use spread_sim::{FaultEventKind, Simulator};
use spread_teams::{LoopSchedule, TeamPool};

use crate::error::RtError;
use crate::integrity::IntegrityMode;
use crate::kernel::{self, KernelBody, KernelSpec, ResolvedArg};
use crate::map::MapClause;
use crate::mapping::EntryKey;
use crate::runtime::{
    complete_task, flip_one_bit, run_kernel, run_transfers_ex, staged_commit_finish, task_failed,
    Completion, CopyPlanItem, Inner, StagedWrite,
};
use crate::section::Section;
use crate::task::TaskId;

/// One completed (or degraded) pipelined construct, in completion
/// order. The conformance harness checks `staged == committed` on every
/// clean record — the whole-piece commit contract — and that a
/// pipelined run really pipelined (`depth >= 2`, descriptors split).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverlapRecord {
    /// Device the piece ran on.
    pub device: u32,
    /// First loop iteration of the piece.
    pub start: usize,
    /// Iteration count of the piece.
    pub len: usize,
    /// Effective pipeline depth (requested depth clamped to the range).
    pub depth: u32,
    /// Pipelined H2D descriptors issued (after coalescing).
    pub h2d_ops: u32,
    /// Pipelined D2H descriptors predicted and issued.
    pub d2h_ops: u32,
    /// Staged sub-slice snapshots present at the exit's commit point.
    pub staged: u32,
    /// Snapshots actually drained to host memory by the commit (0 when
    /// the commit gate lost the race or the drain failed verification).
    pub committed: u32,
    /// The construct degraded to the classic un-pipelined path (enter
    /// parked under allocation backpressure).
    pub bypassed: bool,
    /// Leak canary fired: a sub-slice commit escaped before the exit's
    /// commit point (only with the hidden fault-injection knob).
    pub leaked: bool,
}

/// A half-open interval of loop iterations / array elements.
type Iv = Range<usize>;

/// Sort and coalesce intervals: overlapping or *adjacent* runs become
/// one — this is the DMA-descriptor coalescing step (two arguments
/// reading abutting sections of one array produce a single transfer).
fn merge(mut v: Vec<Iv>) -> Vec<Iv> {
    v.retain(|r| r.start < r.end);
    v.sort_by_key(|r| r.start);
    let mut out: Vec<Iv> = Vec::with_capacity(v.len());
    for r in v {
        match out.last_mut() {
            Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
            _ => out.push(r),
        }
    }
    out
}

/// `a \ b` where both lists are merged (sorted, disjoint).
fn subtract(a: &[Iv], b: &[Iv]) -> Vec<Iv> {
    let mut out = Vec::new();
    for r in a {
        let mut cur = r.start;
        for s in b {
            if s.end <= cur {
                continue;
            }
            if s.start >= r.end {
                break;
            }
            if s.start > cur {
                out.push(cur..s.start.min(r.end));
            }
            cur = cur.max(s.end);
            if cur >= r.end {
                break;
            }
        }
        if cur < r.end {
            out.push(cur..r.end);
        }
    }
    out
}

/// The part of `r` inside `within`, if any.
fn clip(r: &Iv, within: &Iv) -> Option<Iv> {
    let s = r.start.max(within.start);
    let e = r.end.min(within.end);
    (s < e).then_some(s..e)
}

/// Split `range` into `depth` contiguous stages of near-equal length
/// (earlier stages take the remainder), clamped so no stage is empty.
pub(crate) fn split_stages(range: &Range<usize>, depth: u32) -> Vec<Range<usize>> {
    let n = range.len();
    let k = (depth as usize).clamp(1, n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut cur = range.start;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(cur..cur + len);
        cur += len;
    }
    out
}

/// One predicted D2H descriptor: a sub-range of a dying map's section.
struct SubCopy {
    sec: Section,
    alloc: AllocId,
    /// Element offset of `sec.start` within the device buffer.
    offset: usize,
    label: String,
}

/// Kernel-phase context captured once when the kernel task starts.
struct KernelCtx {
    dev: DeviceHandle,
    pool: Rc<TeamPool>,
    resolved: Rc<Vec<ResolvedArg>>,
    body: KernelBody,
    schedule: LoopSchedule,
    name: String,
    work_per_iter_ns: f64,
    teams: u32,
    threads_per_team: u32,
    integrity: IntegrityMode,
}

/// The exit's deferred commit finish, armed by the exit action and run
/// when the last outstanding D2H lands.
type ExitFinish = Box<dyn FnOnce(&mut Simulator)>;

/// Shared state of one pipelined construct, threaded through the three
/// phase actions and every streamed operation's callbacks.
pub(crate) struct PipeState {
    device: u32,
    stages: Vec<Range<usize>>,
    /// Leak canary armed (hidden fault-injection knob).
    leak: bool,
    /// Outstanding H2D descriptors per stage; a stage at zero has all
    /// its input bytes resident.
    h2d_pending: Vec<Cell<usize>>,
    /// Next sub-kernel stage to launch.
    next_kernel: Cell<usize>,
    /// Sub-kernels completed so far.
    kernels_done: Cell<usize>,
    kernel_started: Cell<bool>,
    kernel_task: Cell<Option<TaskId>>,
    /// A fault was already routed to the kernel task (route at most
    /// once — the recovery handler is one-shot).
    fault_routed: Cell<bool>,
    krn: RefCell<Option<KernelCtx>>,
    /// Predicted per-stage D2H descriptors, drained as stages complete.
    d2h_stages: RefCell<Vec<Vec<SubCopy>>>,
    /// Map-level sections the D2H prediction covered.
    predicted: RefCell<Vec<Section>>,
    d2h_outstanding: Cell<usize>,
    /// Staged sub-slice snapshots awaiting the exit's commit drain.
    staged: Rc<RefCell<Vec<StagedWrite>>>,
    /// First error seen by any pipelined operation.
    failed: Rc<RefCell<Option<RtError>>>,
    /// The exit's commit finish, armed by the exit action and run when
    /// the last outstanding D2H lands.
    exit_finish: RefCell<Option<ExitFinish>>,
    /// Degraded to the classic path (enter parked for memory).
    bypass: Cell<bool>,
    /// The exit committed and freed the device buffers: late stragglers
    /// of a stolen pipeline (queued sub-kernels, unreached copies) must
    /// not touch the device again.
    freed: Cell<bool>,
    /// Canary fired already (leak at most one sub-slice).
    leaked: Cell<bool>,
    record: RefCell<OverlapRecord>,
}

impl PipeState {
    /// State for one construct over `range` at the requested depth
    /// (clamped to the range length).
    pub(crate) fn new(device: u32, range: Range<usize>, depth: u32, leak: bool) -> Rc<Self> {
        let stages = split_stages(&range, depth);
        let k = stages.len();
        Rc::new(PipeState {
            device,
            leak,
            h2d_pending: (0..k).map(|_| Cell::new(0)).collect(),
            next_kernel: Cell::new(0),
            kernels_done: Cell::new(0),
            kernel_started: Cell::new(false),
            kernel_task: Cell::new(None),
            fault_routed: Cell::new(false),
            krn: RefCell::new(None),
            d2h_stages: RefCell::new((0..k).map(|_| Vec::new()).collect()),
            predicted: RefCell::new(Vec::new()),
            d2h_outstanding: Cell::new(0),
            staged: Rc::new(RefCell::new(Vec::new())),
            failed: Rc::new(RefCell::new(None)),
            exit_finish: RefCell::new(None),
            bypass: Cell::new(false),
            freed: Cell::new(false),
            leaked: Cell::new(false),
            record: RefCell::new(OverlapRecord {
                device,
                start: range.start,
                len: range.len(),
                depth: k as u32,
                h2d_ops: 0,
                d2h_ops: 0,
                staged: 0,
                committed: 0,
                bypassed: false,
                leaked: false,
            }),
            stages,
        })
    }

    /// Record the construct's kernel task id (known once all three
    /// phase tasks are submitted).
    pub(crate) fn set_kernel_task(&self, id: TaskId) {
        self.kernel_task.set(Some(id));
    }
}

/// Map a device fault event to the runtime error it means for `what`.
fn fault_err(ev: &spread_sim::FaultEvent, what: String) -> RtError {
    match ev.kind {
        FaultEventKind::TransientExhausted { attempts } => RtError::TransientCopy {
            device: ev.device,
            what,
            attempts,
        },
        FaultEventKind::DeviceLost => RtError::DeviceLost {
            device: ev.device,
            what,
        },
    }
}

/// Record an error and fail the construct's kernel task if it is the
/// live phase (started, unfinished, not yet routed). A fault that lands
/// before the kernel starts stays in `failed` and surfaces when the
/// kernel action runs; one that lands after it finished surfaces at the
/// exit's commit drain — mirroring which classic phase would have
/// failed.
fn route_kernel_fault(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    pipe: &Rc<PipeState>,
    err: RtError,
) {
    pipe.failed.borrow_mut().get_or_insert(err);
    if pipe.fault_routed.get() || !pipe.kernel_started.get() {
        return;
    }
    let Some(kid) = pipe.kernel_task.get() else {
        return;
    };
    if inner_rc.borrow().graph.is_finished(kid) {
        return;
    }
    pipe.fault_routed.set(true);
    let err = pipe
        .failed
        .borrow_mut()
        .take()
        .expect("error recorded above");
    task_failed(sim, inner_rc, kid, err);
}

/// Phase 1 of a pipelined construct: plan the whole enter mapping, then
/// slice every H2D copy into per-stage descriptor runs and enqueue them
/// all as streamed transfers. The enter *task* completes when stage 0's
/// descriptors have landed — later stages stream in behind the first
/// sub-kernels, which is the whole point.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipelined_enter(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    id: TaskId,
    device: u32,
    maps: Vec<MapClause>,
    spec: &KernelSpec,
    pipe: &Rc<PipeState>,
) -> Result<Completion, RtError> {
    let plan = {
        let mut inner = inner_rc.borrow_mut();
        match inner.plan_enter(device, &maps) {
            Ok(p) => p,
            Err(RtError::OutOfMemory { .. }) if inner.alloc_backpressure => {
                // Degrade gracefully: park the enter classically; the
                // kernel and exit phases fall back to the un-pipelined
                // path when memory eventually frees up.
                pipe.bypass.set(true);
                pipe.record.borrow_mut().bypassed = true;
                inner.mem_waiters.push((device, id, maps));
                return Ok(Completion::Async);
            }
            Err(e) => return Err(e),
        }
    };
    let k = pipe.stages.len();
    // Slice each planned copy: stage j ships the bytes stage j's
    // sub-kernel is the first to touch; bytes no stage touches ship with
    // stage 0 (a written-only `tofrom` region must be resident before
    // any read-modify-write sub-kernel runs over its entry).
    let mut ops: Vec<(usize, Section, AllocId, usize, String)> = Vec::new();
    {
        let inner = inner_rc.borrow();
        for c in &plan.copies {
            let copy_iv = c.section.range();
            let mut shipped: Vec<Iv> = Vec::new();
            let mut per_stage: Vec<Vec<Iv>> = vec![Vec::new(); k];
            for (j, st) in pipe.stages.iter().enumerate() {
                let mut needed = Vec::new();
                for arg in &spec.args {
                    if arg.array.id() != c.section.array {
                        continue;
                    }
                    if let Some(iv) = clip(&(arg.section_of)(st.clone()), &copy_iv) {
                        needed.push(iv);
                    }
                }
                let fresh = subtract(&merge(needed), &shipped);
                shipped = merge([shipped, fresh.clone()].concat());
                per_stage[j] = fresh;
            }
            let leftover = subtract(&[copy_iv], &shipped);
            per_stage[0] = merge([std::mem::take(&mut per_stage[0]), leftover].concat());
            for (j, runs) in per_stage.into_iter().enumerate() {
                for r in runs {
                    let sec = Section::from_range(c.section.array, r.clone());
                    let off = c.offset + (r.start - c.section.start);
                    let label = format!(
                        "{} H2D[p{}/{}] {}",
                        inner.host.name(sec.array),
                        j + 1,
                        k,
                        sec
                    );
                    ops.push((j, sec, c.alloc, off, label));
                }
            }
        }
    }
    pipe.record.borrow_mut().h2d_ops = ops.len() as u32;
    for &(j, ..) in &ops {
        pipe.h2d_pending[j].set(pipe.h2d_pending[j].get() + 1);
    }
    let stage0 = pipe.h2d_pending[0].get();
    if stage0 == 0 {
        // All stage-0 inputs already resident (reused entries): the
        // enter is logically done; later stages still stream behind it.
        complete_task(sim, inner_rc, id);
    }
    let enter_remaining = Rc::new(Cell::new(stage0));
    let enter_failed: Rc<RefCell<Option<RtError>>> = Rc::new(RefCell::new(None));
    let dev = inner_rc.borrow().devices[device as usize].clone();
    for (j, sec, alloc, off, label) in ops {
        let host_store = inner_rc.borrow().host.storage(sec.array);
        let mem = dev.mem.clone();
        let pipe_e = Rc::clone(pipe);
        let effect: Box<dyn FnOnce()> = Box::new(move || {
            if pipe_e.freed.get() {
                return;
            }
            let host = host_store.borrow();
            let mut mem = mem.borrow_mut();
            let buf = mem.buffer_mut(alloc);
            buf[off..off + sec.len].copy_from_slice(&host[sec.range()]);
        });
        let what = label.clone();
        let on_complete: Box<dyn FnOnce(&mut Simulator)> = {
            let inner2 = Rc::clone(inner_rc);
            let pipe2 = Rc::clone(pipe);
            let rem = Rc::clone(&enter_remaining);
            let efail = Rc::clone(&enter_failed);
            Box::new(move |sim| {
                h2d_stage_done(sim, &inner2, &pipe2, j);
                if j == 0 {
                    enter_one_done(sim, &inner2, id, &rem, &efail);
                }
            })
        };
        let on_fault: spread_devices::health::OnFault = {
            let inner2 = Rc::clone(inner_rc);
            let pipe2 = Rc::clone(pipe);
            let rem = Rc::clone(&enter_remaining);
            let efail = Rc::clone(&enter_failed);
            Box::new(move |sim, ev| {
                let err = fault_err(&ev, what);
                pipe2.h2d_pending[j].set(pipe2.h2d_pending[j].get().saturating_sub(1));
                if j == 0 {
                    // A stage-0 loss fails the enter phase, exactly like
                    // a classic enter transfer fault.
                    pipe2.failed.borrow_mut().get_or_insert(err.clone());
                    efail.borrow_mut().get_or_insert(err);
                    enter_one_done(sim, &inner2, id, &rem, &efail);
                } else {
                    // Later stages belong to the pipeline's steady
                    // state: the kernel phase owns the failure.
                    route_kernel_fault(sim, &inner2, &pipe2, err);
                }
            })
        };
        dev.dma_in.enqueue(
            sim,
            DmaOp {
                bytes: sec.len as u64 * 8,
                label,
                effect: Some(effect),
                on_complete,
                on_fault: Some(on_fault),
                extra_caps: Vec::new(),
                streamed: true,
            },
        );
    }
    Ok(Completion::Async)
}

/// Count one stage-0 H2D as done; the last completes (or fails) the
/// enter task.
fn enter_one_done(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    enter: TaskId,
    remaining: &Rc<Cell<usize>>,
    failed: &Rc<RefCell<Option<RtError>>>,
) {
    remaining.set(remaining.get().saturating_sub(1));
    if remaining.get() != 0 {
        return;
    }
    match failed.borrow_mut().take() {
        Some(err) => task_failed(sim, inner_rc, enter, err),
        None => complete_task(sim, inner_rc, enter),
    }
}

/// One H2D descriptor of stage `j` landed; when the stage's set is
/// complete, the pump may launch its sub-kernel.
fn h2d_stage_done(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    pipe: &Rc<PipeState>,
    j: usize,
) {
    if pipe.freed.get() {
        return;
    }
    pipe.h2d_pending[j].set(pipe.h2d_pending[j].get().saturating_sub(1));
    if pipe.h2d_pending[j].get() == 0 && pipe.kernel_started.get() {
        pump(sim, inner_rc, pipe);
    }
}

/// Phase 2: resolve the kernel's arguments once, predict the per-stage
/// D2H descriptors from the exit-equivalent maps, then launch
/// sub-kernels as their stages' inputs become resident.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipelined_kernel(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    id: TaskId,
    device: u32,
    range: Range<usize>,
    spec: &KernelSpec,
    teams: u32,
    threads_per_team: u32,
    exit_maps: &[MapClause],
    integrity: IntegrityMode,
    pipe: &Rc<PipeState>,
) -> Result<Completion, RtError> {
    if pipe.bypass.get() {
        run_kernel(
            sim,
            inner_rc,
            id,
            device,
            range,
            spec,
            teams,
            threads_per_team,
        )?;
        return Ok(Completion::Async);
    }
    if let Some(err) = pipe.failed.borrow_mut().take() {
        return Err(err);
    }
    // Resolve arguments exactly like the classic kernel launch; the
    // resolution is range-independent, so every sub-kernel shares it.
    let (dev, pool, resolved) = {
        let inner = inner_rc.borrow();
        inner.check_device(device)?;
        let d = device as usize;
        let mut resolved = Vec::with_capacity(spec.args.len());
        let table = inner.presence.read(d);
        for arg in &spec.args {
            let rng = (arg.section_of)(range.clone());
            let sec = Section::from_range(arg.array.id(), rng);
            let Some((_, entry)) = table.lookup_containing(&sec) else {
                return Err(RtError::KernelSectionMissing {
                    device,
                    kernel: spec.name.clone(),
                    requested: sec,
                });
            };
            resolved.push(ResolvedArg {
                alloc: entry.alloc,
                entry_start: entry.section.start,
                entry_len: entry.section.len,
                access: arg.access,
                section_of: std::sync::Arc::clone(&arg.section_of),
            });
        }
        (inner.devices[d].clone(), Rc::clone(&inner.pool), resolved)
    };
    // Predict the exit's D2H: a dying copies-out map (refcount 1 right
    // now) is sliced so stage j's copy-out covers what stage j's
    // sub-kernel wrote; bytes no stage writes ride with the final stage.
    let k = pipe.stages.len();
    let mut total_d2h = 0u32;
    {
        let inner = inner_rc.borrow();
        let d = device as usize;
        let table = inner.presence.read(d);
        let mut d2h = pipe.d2h_stages.borrow_mut();
        for m in exit_maps {
            if !m.map_type.copies_out() || m.section.is_empty() {
                continue;
            }
            let Some((_, entry)) = table.lookup_containing(&m.section) else {
                continue;
            };
            if entry.refcount != 1 {
                // The exit will keep the entry alive: no copy-out.
                continue;
            }
            let entry_start = entry.section.start;
            let alloc = entry.alloc;
            let copy_iv = m.section.range();
            let mut shipped: Vec<Iv> = Vec::new();
            let mut per_stage: Vec<Vec<Iv>> = vec![Vec::new(); k];
            for (j, st) in pipe.stages.iter().enumerate() {
                let mut w = Vec::new();
                for arg in &spec.args {
                    if arg.array.id() != m.section.array || !arg.access.writes() {
                        continue;
                    }
                    if let Some(iv) = clip(&(arg.section_of)(st.clone()), &copy_iv) {
                        w.push(iv);
                    }
                }
                let fresh = subtract(&merge(w), &shipped);
                shipped = merge([shipped, fresh.clone()].concat());
                per_stage[j] = fresh;
            }
            let leftover = subtract(&[copy_iv], &shipped);
            per_stage[k - 1] = merge([std::mem::take(&mut per_stage[k - 1]), leftover].concat());
            for (j, runs) in per_stage.into_iter().enumerate() {
                for r in runs {
                    let sec = Section::from_range(m.section.array, r.clone());
                    let label = format!(
                        "{} D2H[p{}/{}] {}",
                        inner.host.name(sec.array),
                        j + 1,
                        k,
                        sec
                    );
                    d2h[j].push(SubCopy {
                        sec,
                        alloc,
                        offset: r.start - entry_start,
                        label,
                    });
                    total_d2h += 1;
                }
            }
            pipe.predicted.borrow_mut().push(m.section);
        }
    }
    pipe.record.borrow_mut().d2h_ops = total_d2h;
    if total_d2h > 0 {
        // Expose the staging buffer to the at-rest corruption surface
        // (MemoryScribble) for as long as it is live — same contract as
        // the classic staged exit.
        let mut inner = inner_rc.borrow_mut();
        inner.staged_registry.retain(|(_, w)| w.strong_count() > 0);
        inner
            .staged_registry
            .push((device, Rc::downgrade(&pipe.staged)));
    }
    *pipe.krn.borrow_mut() = Some(KernelCtx {
        dev,
        pool,
        resolved: Rc::new(resolved),
        body: std::sync::Arc::clone(&spec.body),
        schedule: spec.schedule,
        name: spec.name.clone(),
        work_per_iter_ns: spec.work_per_iter_ns,
        teams,
        threads_per_team,
        integrity,
    });
    pipe.kernel_task.set(Some(id));
    pipe.kernel_started.set(true);
    pump(sim, inner_rc, pipe);
    Ok(Completion::Async)
}

/// Launch every stage whose inputs are resident, in order. The compute
/// queue is FIFO, so launching eagerly keeps the device busy without
/// reordering stages.
fn pump(sim: &mut Simulator, inner_rc: &Rc<RefCell<Inner>>, pipe: &Rc<PipeState>) {
    loop {
        if pipe.freed.get() || pipe.failed.borrow().is_some() {
            return;
        }
        let j = pipe.next_kernel.get();
        if j >= pipe.stages.len() || pipe.h2d_pending[j].get() != 0 {
            return;
        }
        pipe.next_kernel.set(j + 1);
        launch_stage(sim, inner_rc, pipe, j);
    }
}

/// Enqueue sub-kernel `j` as a streamed launch on the compute queue.
fn launch_stage(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    pipe: &Rc<PipeState>,
    j: usize,
) {
    let (dev, op) = {
        let krn = pipe.krn.borrow();
        let ctx = krn.as_ref().expect("kernel context set before pumping");
        let st = pipe.stages[j].clone();
        let mem = ctx.dev.mem.clone();
        let pool = Rc::clone(&ctx.pool);
        let body = std::sync::Arc::clone(&ctx.body);
        let resolved = Rc::clone(&ctx.resolved);
        let schedule = ctx.schedule;
        let pipe_b = Rc::clone(pipe);
        let stb = st.clone();
        let exec: Box<dyn FnOnce()> = Box::new(move || {
            if pipe_b.freed.get() {
                // A stolen piece's exit already committed and freed the
                // buffers; this queued straggler stage must not run.
                return;
            }
            let mut mem = mem.borrow_mut();
            kernel::execute_on_device(&mut mem, &pool, schedule, stb, &body, &resolved);
        });
        let inner2 = Rc::clone(inner_rc);
        let pipe2 = Rc::clone(pipe);
        let inner3 = Rc::clone(inner_rc);
        let pipe3 = Rc::clone(pipe);
        let kname = ctx.name.clone();
        let op = KernelOp {
            tag: pipe.kernel_task.get().map_or(0, |t| t.0),
            name: format!("{}[p{}/{}]", ctx.name, j + 1, pipe.stages.len()),
            iters: st.len() as u64,
            work_per_iter_ns: ctx.work_per_iter_ns,
            teams: ctx.teams,
            threads_per_team: ctx.threads_per_team,
            body: Some(exec),
            on_complete: Box::new(move |sim| stage_kernel_done(sim, &inner2, &pipe2, j)),
            on_fault: Some(Box::new(move |sim, ev| {
                route_kernel_fault(
                    sim,
                    &inner3,
                    &pipe3,
                    RtError::DeviceLost {
                        device: ev.device,
                        what: format!("kernel `{kname}`"),
                    },
                );
            })),
            streamed: true,
        };
        (ctx.dev.clone(), op)
    };
    dev.compute.enqueue(sim, op);
}

/// Sub-kernel `j` finished: ship its predicted D2H right away (the
/// copy-out overlaps the next stage's compute), keep the pump running,
/// and complete the construct's kernel task on the last stage.
fn stage_kernel_done(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    pipe: &Rc<PipeState>,
    j: usize,
) {
    if pipe.freed.get() {
        return;
    }
    let subs = std::mem::take(&mut pipe.d2h_stages.borrow_mut()[j]);
    for sc in subs {
        enqueue_staged_d2h(sim, inner_rc, pipe, sc, true);
    }
    pump(sim, inner_rc, pipe);
    let done = pipe.kernels_done.get() + 1;
    pipe.kernels_done.set(done);
    if done == pipe.stages.len() {
        let kid = pipe.kernel_task.get().expect("kernel task id set");
        // A stolen piece's kernel was force-completed by the straggler
        // monitor; finishing it twice would corrupt the graph.
        if !inner_rc.borrow().graph.is_finished(kid) {
            complete_task(sim, inner_rc, kid);
        }
    }
}

/// Enqueue one staged D2H descriptor: the effect snapshots the device
/// bytes (with a source-side CRC under `verify`/`heal`), completion
/// consumes a pending `SilentFlip`, and the snapshot waits in the
/// pipe's staging buffer for the exit's whole-piece commit drain.
fn enqueue_staged_d2h(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    pipe: &Rc<PipeState>,
    sc: SubCopy,
    canary: bool,
) {
    let (dev, integrity) = {
        let krn = pipe.krn.borrow();
        let ctx = krn.as_ref().expect("kernel context set");
        (ctx.dev.clone(), ctx.integrity)
    };
    pipe.d2h_outstanding.set(pipe.d2h_outstanding.get() + 1);
    let device = pipe.device;
    let host_store = inner_rc.borrow().host.storage(sc.sec.array);
    let mem = dev.mem.clone();
    let (sec, alloc, off) = (sc.sec, sc.alloc, sc.offset);
    let staged = Rc::clone(&pipe.staged);
    let pipe_e = Rc::clone(pipe);
    let effect: Box<dyn FnOnce()> = Box::new(move || {
        if pipe_e.freed.get() {
            return;
        }
        let mem = mem.borrow();
        let buf = mem.buffer(alloc);
        let data = buf[off..off + sec.len].to_vec();
        let crc = integrity
            .checks()
            .then(|| spread_devices::digest_f64(&data));
        staged.borrow_mut().push((host_store, sec, data, crc));
    });
    let what = sc.label.clone();
    let on_complete: Box<dyn FnOnce(&mut Simulator)> = {
        let inner2 = Rc::clone(inner_rc);
        let pipe2 = Rc::clone(pipe);
        Box::new(move |sim| {
            // In-flight silent corruption, identical to the classic
            // staged D2H: a SilentFlip token flips one bit after the
            // source digest was taken.
            let flip = inner2
                .borrow()
                .fault
                .as_ref()
                .is_some_and(|ctx| ctx.take_flip(device, sim.now()));
            if flip {
                let mut st = pipe2.staged.borrow_mut();
                if let Some((_, _, data, _)) = st.iter_mut().find(|(_, s, _, _)| *s == sec) {
                    flip_one_bit(data);
                }
            }
            if canary && pipe2.leak && !pipe2.leaked.get() {
                // Leak canary: commit one staged sub-slice to host
                // memory *now*, before the exit's commit point, with its
                // first element perturbed so the escape is value-visible
                // to a differential harness (same discipline as the
                // forced-duplicate straggler canary).
                let entry = {
                    let mut st = pipe2.staged.borrow_mut();
                    (!st.is_empty()).then(|| st.remove(0))
                };
                if let Some((store, lsec, mut data, _)) = entry {
                    if !data.is_empty() {
                        data[0] += 1.0;
                    }
                    store.borrow_mut()[lsec.range()].copy_from_slice(&data);
                    pipe2.leaked.set(true);
                    pipe2.record.borrow_mut().leaked = true;
                }
            }
            d2h_one_done(sim, &pipe2);
        })
    };
    let on_fault: spread_devices::health::OnFault = {
        let pipe2 = Rc::clone(pipe);
        Box::new(move |sim, ev| {
            pipe2
                .failed
                .borrow_mut()
                .get_or_insert(fault_err(&ev, what));
            d2h_one_done(sim, &pipe2);
        })
    };
    dev.dma_out.enqueue(
        sim,
        DmaOp {
            bytes: sec.len as u64 * 8,
            label: sc.label,
            effect: Some(effect),
            on_complete,
            on_fault: Some(on_fault),
            extra_caps: Vec::new(),
            streamed: true,
        },
    );
}

/// Count one D2H as landed; when the exit is armed and nothing is
/// outstanding, run the commit finish.
fn d2h_one_done(sim: &mut Simulator, pipe: &Rc<PipeState>) {
    pipe.d2h_outstanding
        .set(pipe.d2h_outstanding.get().saturating_sub(1));
    try_exit_finish(sim, pipe);
}

/// Run the armed exit finish once every outstanding D2H has landed.
fn try_exit_finish(sim: &mut Simulator, pipe: &Rc<PipeState>) {
    if pipe.d2h_outstanding.get() != 0 {
        return;
    }
    let f = pipe.exit_finish.borrow_mut().take();
    if let Some(f) = f {
        f(sim);
    }
}

/// Phase 3: plan the real exit, reconcile it against the kernel-time
/// D2H prediction, then run the same whole-piece commit drain the
/// classic path uses — CRC verification, commit-gate arbitration,
/// all-or-nothing host writes, presence cleanup.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipelined_exit(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    id: TaskId,
    device: u32,
    maps: &[MapClause],
    integrity: IntegrityMode,
    gate: Option<(crate::commit::CommitGate, u32)>,
    pipe: &Rc<PipeState>,
) -> Result<Completion, RtError> {
    if pipe.bypass.get() {
        let plan = inner_rc.borrow_mut().plan_exit(device, maps)?;
        push_record(inner_rc, pipe);
        run_transfers_ex(
            sim,
            inner_rc,
            id,
            device,
            Vec::new(),
            Vec::new(),
            plan.copies,
            plan.to_free,
            integrity,
            gate,
        );
        return Ok(Completion::Async);
    }
    let plan = inner_rc.borrow_mut().plan_exit(device, maps)?;
    let predicted = pipe.predicted.borrow().clone();
    let actual: Vec<Section> = plan.copies.iter().map(|c| c.section).collect();
    // Predicted-but-kept: another mapping took a reference between the
    // kernel and the exit, so the entry survives and host memory must
    // not see the staged sub-slices.
    let stale: Vec<Section> = predicted
        .iter()
        .filter(|p| !actual.contains(p))
        .copied()
        .collect();
    if !stale.is_empty() {
        pipe.staged
            .borrow_mut()
            .retain(|(_, sec, _, _)| !stale.iter().any(|p| p.contains(sec)));
    }
    // Kept-but-dying: the prediction saw a shared entry, but the exit
    // releases it after all — fetch the whole section classically into
    // the same commit set.
    let fallback: Vec<CopyPlanItem> = plan
        .copies
        .into_iter()
        .filter(|c| !predicted.contains(&c.section))
        .collect();
    let to_free: Vec<EntryKey> = plan.to_free;
    let finish: Box<dyn FnOnce(&mut Simulator)> = {
        let inner_rc = Rc::clone(inner_rc);
        let pipe = Rc::clone(pipe);
        Box::new(move |sim| {
            // From here on the dying entries are released and their
            // buffers freed: queued stragglers of a stolen pipeline
            // must not touch the device again.
            pipe.freed.set(true);
            pipe.record.borrow_mut().staged = pipe.staged.borrow().len() as u32;
            let committed = staged_commit_finish(
                sim,
                &inner_rc,
                id,
                device,
                &pipe.staged,
                &pipe.failed,
                &to_free,
                integrity,
                &gate,
            );
            pipe.record.borrow_mut().committed = committed as u32;
            push_record(&inner_rc, &pipe);
        })
    };
    *pipe.exit_finish.borrow_mut() = Some(finish);
    for c in fallback {
        enqueue_staged_d2h(
            sim,
            inner_rc,
            pipe,
            SubCopy {
                sec: c.section,
                alloc: c.alloc,
                offset: c.offset,
                label: c.label,
            },
            false,
        );
    }
    try_exit_finish(sim, pipe);
    Ok(Completion::Async)
}

/// Append the construct's ledger record.
fn push_record(inner_rc: &Rc<RefCell<Inner>>, pipe: &Rc<PipeState>) {
    let rec = pipe.record.borrow().clone();
    inner_rc.borrow_mut().overlap_log.push(rec);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_coalesces_adjacent_and_overlapping() {
        assert_eq!(merge(vec![5..8, 0..3, 3..5]), vec![0..8]);
        assert_eq!(merge(vec![0..2, 4..6]), vec![0..2, 4..6]);
        assert_eq!(merge(vec![0..0, 1..1]), Vec::<Iv>::new());
        assert_eq!(merge(vec![0..4, 2..3]), vec![0..4]);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-range slices are the point here
    fn subtract_cuts_holes() {
        assert_eq!(subtract(&[0..10], &[3..5]), vec![0..3, 5..10]);
        assert_eq!(subtract(&[0..10], &[0..10]), Vec::<Iv>::new());
        assert_eq!(subtract(&[0..4, 6..9], &[2..7]), vec![0..2, 7..9]);
        assert_eq!(subtract(&[0..3], &[5..7]), vec![0..3]);
    }

    #[test]
    fn split_stages_balances_and_clamps() {
        assert_eq!(split_stages(&(0..10), 4), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(split_stages(&(5..7), 4), vec![5..6, 6..7]);
        assert_eq!(split_stages(&(0..9), 1), vec![0..9]);
        let total: usize = split_stages(&(3..40), 3).iter().map(|r| r.len()).sum();
        assert_eq!(total, 37);
    }
}
