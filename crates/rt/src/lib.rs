//! # spread-rt
//!
//! The OpenMP-like offloading runtime of the `target-spread` reproduction
//! — the equivalent of `libomptarget` plus the host tasking layer that
//! the paper's Somier implementations rely on (`task`, `taskloop`,
//! `taskwait`, `taskgroup`).
//!
//! * [`section`] — array sections `A[start:len]` and their overlap
//!   algebra.
//! * [`host`] — the host array registry ([`HostArray`] handles backed by
//!   real `Vec<f64>` storage).
//! * [`map`] — `map` clause types (`to`/`from`/`tofrom`/`alloc`/
//!   `release`/`delete`).
//! * [`mapping`] — per-device presence tables with reference counts and
//!   the OpenMP rule the paper leans on: mapping a section that *extends*
//!   an already-present section is an error (why Two Buffers cannot run
//!   on one GPU, §V-B).
//! * [`task`] — the task graph: `depend(in/out)` matching on array
//!   sections among sibling tasks, taskgroups, and a race detector that
//!   flags concurrently running tasks with conflicting footprints.
//! * [`kernel`] — kernel specifications and the launcher that binds
//!   mapped device buffers into bounds-checked views and really executes
//!   the body on a [`spread_teams::TeamPool`].
//! * [`runtime`] — [`Runtime`] / [`Scope`]: the central object tying the
//!   simulator, devices, presence tables and task graph together.
//! * [`directives`] — builder-style directives mirroring the pragmas:
//!   [`Target`](directives::Target), [`TargetData`](directives::TargetData),
//!   [`TargetEnterData`](directives::TargetEnterData),
//!   [`TargetExitData`](directives::TargetExitData),
//!   [`TargetUpdate`](directives::TargetUpdate).
//! * [`error`] — [`RtError`], including the fault family
//!   ([`RtError::TransientCopy`], [`RtError::DeviceLost`],
//!   [`RtError::Timeout`]) surfaced when a
//!   [`FaultPlan`](spread_sim::FaultPlan) is injected through
//!   [`RuntimeConfig::with_fault_plan`](runtime::RuntimeConfig::with_fault_plan);
//!   recovery layers hook task failures with
//!   [`Scope::on_task_fault`](runtime::Scope::on_task_fault).
//!
//! The execution model is *eager effects over a deterministic DES*: a
//! task's data effects (memcpy, kernel body) run when the task starts in
//! virtual time; its completion event fires after the modeled duration.
//! Because the task graph already orders conflicting tasks (and the race
//! detector reports the ones it doesn't), results are deterministic and
//! checked against CPU references in the test-suite.

#![warn(missing_docs)]

pub mod commit;
pub mod directives;
pub mod error;
pub mod host;
pub mod integrity;
pub mod kernel;
pub mod map;
pub mod mapping;
pub mod overlap;
pub mod plan_cache;
pub(crate) mod profile;
pub mod runtime;
pub mod section;
pub mod spill;
pub mod task;

pub use commit::CommitGate;
pub use directives::{ConstructIds, ExchangeMode};
pub use error::RtError;
pub use host::HostArray;
pub use integrity::{IntegrityAction, IntegrityBoundary, IntegrityEvent, IntegrityMode};
pub use kernel::{Access, KernelArg, KernelSpec};
pub use map::{MapClause, MapType};
pub use overlap::OverlapRecord;
pub use plan_cache::PlanCacheStats;
pub use runtime::{
    DegradationEvent, DegradationKind, PeerCopyRecord, RescueRecord, Runtime, RuntimeConfig, Scope,
};
pub use section::{ArrayId, Section};
pub use spill::{kernel_footprint_bytes, spill_chunk, spill_slices};
pub use task::{GroupId, TaskId};

/// Convenience re-exports for building runtime programs.
pub mod prelude {
    pub use crate::directives::{
        ExchangeMode, Target, TargetData, TargetEnterData, TargetExitData, TargetUpdate,
    };
    pub use crate::host::HostArray;
    pub use crate::integrity::{IntegrityAction, IntegrityBoundary, IntegrityEvent, IntegrityMode};
    pub use crate::kernel::{Access, KernelArg, KernelSpec};
    pub use crate::map::{alloc, from, to, tofrom, MapClause, MapType};
    pub use crate::runtime::{Runtime, RuntimeConfig, Scope};
    pub use crate::section::Section;
    pub use crate::RtError;
}
