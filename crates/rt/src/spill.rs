//! Host spill executor — the last rung of the memory-pressure
//! degradation ladder.
//!
//! When no device has headroom for a chunk (and the pressure policy
//! allows it), the chunk still executes: its mapped sections stream
//! through a *bounded host staging buffer* in map→compute→unmap slices.
//! Each slice allocates only its own sections in a scratch
//! [`DeviceMemory`], copies the inputs in from host memory, runs the
//! kernel body over the slice's iteration sub-range through the normal
//! bounds-checked launcher, and stages the outputs. Staged outputs are
//! committed to host memory only after *every* slice has executed —
//! the same all-or-nothing rule as the staged device-to-host commit
//! path, so a spilled chunk is observationally one atomic construct.
//!
//! ## Soundness constraint
//!
//! A slice reads its inputs from host memory at slice-execution time.
//! This is sound because within one construct the supported workloads
//! never have an array that is *read* by one chunk and *written* by
//! another (write sections are chunk-disjoint, and read-only arrays —
//! stencil sources, saxpy inputs — are not written at all), and the
//! pressure launch path serializes the construct's pieces against each
//! other. A slice therefore always observes the host image from before
//! the construct started.

use std::ops::Range;
use std::rc::Rc;

use spread_devices::memory::DeviceMemory;

use crate::kernel::{KernelSpec, ResolvedArg};
use crate::runtime::{Action, Completion, Scope};
use crate::section::Section;
use crate::task::{FpAccess, TaskId, TaskSpec};

/// The total device-footprint bytes a kernel's arguments need for
/// `range` (the figure the admission planner budgets and the slicer
/// bounds). Arguments are summed independently — two arguments viewing
/// the same array count twice, exactly as two map clauses would.
pub fn kernel_footprint_bytes(kernel: &KernelSpec, range: &Range<usize>) -> u64 {
    kernel
        .args
        .iter()
        .map(|a| (a.section_of)(range.clone()).len() as u64 * 8)
        .sum()
}

/// Split `range` into the iteration slices the spill executor will
/// run, such that each slice's footprint stays within `staging_bytes`
/// (modulo the fixed halo overhead of a slice). Deterministic and pure
/// — `spread-check`'s oracle calls this to predict slice boundaries.
pub fn spill_slices(
    range: Range<usize>,
    footprint_bytes: u64,
    staging_bytes: u64,
) -> Vec<Range<usize>> {
    if range.is_empty() {
        return Vec::new();
    }
    let staging = staging_bytes.max(8);
    let n_slices = footprint_bytes.div_ceil(staging).max(1) as usize;
    let n_slices = n_slices.min(range.len());
    let slice_len = range.len().div_ceil(n_slices);
    let mut out = Vec::with_capacity(n_slices);
    let mut start = range.start;
    while start < range.end {
        let end = (start + slice_len).min(range.end);
        out.push(start..end);
        start = end;
    }
    out
}

/// Submit the host task that executes `kernel` over `range` through the
/// staging buffer, ordered after `preds`. Returns the task id (the
/// piece's "exit" from the construct's point of view).
///
/// `drop_last_slice_writes` is a failure-injection hook for
/// `spread-check`: when set, the staged outputs of the *last* slice are
/// silently discarded — a truncated spill that the semantic oracle must
/// catch. Never set outside the conformance harness.
pub fn spill_chunk(
    scope: &mut Scope<'_>,
    label: impl Into<String>,
    range: Range<usize>,
    kernel: KernelSpec,
    preds: Vec<TaskId>,
    drop_last_slice_writes: bool,
) -> TaskId {
    let mut spec = TaskSpec::new(label.into());
    spec.extra_preds = preds;
    for arg in &kernel.args {
        let sec = Section::from_range(arg.array.id(), (arg.section_of)(range.clone()));
        if arg.access.writes() {
            spec.fp_writes.push(FpAccess::host(sec));
        } else {
            spec.fp_reads.push(FpAccess::host(sec));
        }
    }
    let action: Action = Box::new(move |_sim, inner_rc, _id| {
        let (pool, staging_bytes, stores): (_, _, Vec<Rc<std::cell::RefCell<Vec<f64>>>>) = {
            let inner = inner_rc.borrow();
            (
                Rc::clone(&inner.pool),
                inner.spill_staging_bytes,
                kernel
                    .args
                    .iter()
                    .map(|a| inner.host.storage(a.array.id()))
                    .collect(),
            )
        };
        let footprint = kernel_footprint_bytes(&kernel, &range);
        let slices = spill_slices(range.clone(), footprint, staging_bytes);
        // (store index, global section range, data) — committed after
        // every slice has run.
        let mut staged: Vec<(usize, Range<usize>, Vec<f64>)> = Vec::new();
        for slice in &slices {
            let mut slice_bytes = 0u64;
            let sections: Vec<Range<usize>> = kernel
                .args
                .iter()
                .map(|a| {
                    let s = (a.section_of)(slice.clone());
                    slice_bytes += s.len() as u64 * 8;
                    s
                })
                .collect();
            // The scratch memory is sized to the slice: by construction
            // the slicer bounded this near `staging_bytes`, so the
            // allocations below cannot fail.
            let mut scratch = DeviceMemory::new(slice_bytes.max(8));
            let mut resolved = Vec::with_capacity(kernel.args.len());
            for (arg, sec) in kernel.args.iter().zip(&sections) {
                let alloc = scratch
                    .alloc_elems(sec.len().max(1))
                    .expect("slice footprint fits its scratch memory");
                if !sec.is_empty() {
                    let host = stores[resolved.len()].borrow();
                    scratch
                        .buffer_mut(alloc)
                        .copy_from_slice(&host[sec.clone()]);
                }
                resolved.push(ResolvedArg {
                    alloc,
                    entry_start: sec.start,
                    entry_len: sec.len().max(1),
                    access: arg.access,
                    section_of: std::sync::Arc::clone(&arg.section_of),
                });
            }
            crate::kernel::execute_on_device(
                &mut scratch,
                &pool,
                kernel.schedule,
                slice.clone(),
                &kernel.body,
                &resolved,
            );
            let is_last = std::ptr::eq(slice, slices.last().unwrap());
            for (i, (arg, sec)) in kernel.args.iter().zip(&sections).enumerate() {
                if !arg.access.writes() || sec.is_empty() {
                    continue;
                }
                if drop_last_slice_writes && is_last {
                    continue;
                }
                let data = scratch.buffer(resolved[i].alloc).to_vec();
                staged.push((i, sec.clone(), data));
            }
        }
        for (i, sec, data) in staged {
            stores[i].borrow_mut()[sec].copy_from_slice(&data);
        }
        Ok(Completion::Done)
    });
    scope.submit(spec, action)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_cover_range_and_respect_bound() {
        // 100 iters, 800 B footprint (one f64 arg), 128 B staging →
        // ceil(800/128) = 7 slices of ceil(100/7) = 15.
        let s = spill_slices(0..100, 800, 128);
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], 0..15);
        assert_eq!(s.last().unwrap().end, 100);
        let total: usize = s.iter().map(|r| r.len()).sum();
        assert_eq!(total, 100);
        // Contiguous and ordered.
        for w in s.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn single_slice_when_it_fits() {
        assert_eq!(spill_slices(5..25, 160, 1 << 20), vec![5..25]);
    }

    #[test]
    fn empty_range_no_slices() {
        assert!(spill_slices(7..7, 0, 64).is_empty());
    }

    #[test]
    fn slice_count_never_exceeds_iterations() {
        // Absurdly tiny staging still yields at most one slice per iter.
        let s = spill_slices(0..4, 1 << 30, 8);
        assert_eq!(s.len(), 4);
        assert_eq!(s, vec![0..1, 1..2, 2..3, 3..4]);
    }
}
