//! First-commit-wins commit arbitration for speculative execution.
//!
//! A straggler rescue runs the *same* chunk twice — once on the lagging
//! device, once on a healthy sibling — and both copies end in a staged
//! D2H exit that wants to write the chunk's host section. A
//! [`CommitGate`] shared by the two exits decides which one lands:
//! the first exit to finish commits its staged writes; the loser's
//! staged snapshot is discarded (its presence cleanup still runs, so
//! device memory never leaks).
//!
//! Determinism: in a correct run both copies compute bit-identical
//! bytes, so *which* copy wins cannot change host memory. The recorded
//! winner identity is still made schedule-independent for the
//! conformance harness: when both commits arrive at the same virtual
//! instant (a tie the seeded tie-break permutes), the lower copy index
//! is recorded as the winner regardless of arrival order — without a
//! second write, because the bytes already match.

use std::cell::RefCell;
use std::rc::Rc;

use spread_trace::SimTime;

#[derive(Debug, Default)]
struct GateState {
    /// `(copy, commit instant)` of the recorded winner.
    winner: Option<(u32, SimTime)>,
    /// Staged-write sets actually drained to host memory. Exactly 1 in
    /// any correct run that reached its exit(s).
    commits: u32,
    /// Copies barred from committing: the cancelled half of a steal,
    /// and/or any copy whose staged bytes failed digest verification
    /// (`spread_integrity`). A set, because both can happen to the same
    /// gate — a stolen original *and* a corrupted rescue.
    disqualified: Vec<u32>,
    /// Canary: losers commit too (with a perturbed first element) so a
    /// conformance harness can prove double commits are caught.
    force_duplicate: bool,
    /// Index of this gate's entry in the runtime's rescue log, set when
    /// a rescue is actually launched.
    log_idx: Option<usize>,
}

/// Shared first-commit-wins gate (cheap to clone; all clones arbitrate
/// the same decision).
#[derive(Clone, Debug, Default)]
pub struct CommitGate {
    inner: Rc<RefCell<GateState>>,
}

impl CommitGate {
    /// A fresh gate with no winner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arbitrate one commit attempt by `copy` at `now`. Returns whether
    /// this copy's staged writes should be drained to host memory.
    ///
    /// First caller wins. A later caller at the *same instant* with a
    /// lower copy index takes over the recorded winner identity (the
    /// deterministic tie-break) but still returns `false` — the bytes
    /// are identical, so no second write is needed.
    pub fn try_commit(&self, now: SimTime, copy: u32) -> bool {
        let mut st = self.inner.borrow_mut();
        if st.disqualified.contains(&copy) {
            return false;
        }
        match st.winner {
            None => {
                st.winner = Some((copy, now));
                st.commits += 1;
                true
            }
            Some((w, at)) => {
                if at == now && copy < w {
                    st.winner = Some((copy, now));
                }
                false
            }
        }
    }

    /// Bar `copy` from ever committing (its work was cancelled, or its
    /// staged bytes failed digest verification). Cumulative: each call
    /// adds to the barred set.
    pub fn disqualify(&self, copy: u32) {
        let mut st = self.inner.borrow_mut();
        if !st.disqualified.contains(&copy) {
            st.disqualified.push(copy);
        }
    }

    /// Whether `copy` is barred from committing.
    pub fn is_disqualified(&self, copy: u32) -> bool {
        self.inner.borrow().disqualified.contains(&copy)
    }

    /// The recorded winner's copy index, if a commit has happened.
    pub fn winner(&self) -> Option<u32> {
        self.inner.borrow().winner.map(|(c, _)| c)
    }

    /// Number of staged-write sets actually drained through this gate.
    pub fn commits(&self) -> u32 {
        self.inner.borrow().commits
    }

    /// Canary hook: make every losing copy commit anyway, with its first
    /// staged element perturbed, so the double commit is value-visible.
    #[doc(hidden)]
    pub fn force_duplicate(&self) {
        self.inner.borrow_mut().force_duplicate = true;
    }

    /// Whether the duplicate-commit canary is armed.
    pub fn duplicates_forced(&self) -> bool {
        self.inner.borrow().force_duplicate
    }

    /// Record that a losing copy committed anyway (canary path).
    pub(crate) fn count_forced_commit(&self) {
        self.inner.borrow_mut().commits += 1;
    }

    /// Attach this gate to an entry of the runtime's rescue log (the
    /// index returned by `Scope::record_rescue`): the gate will fill in
    /// that record's `winner`/`commits` as the racing exits arrive.
    pub fn set_log_idx(&self, idx: usize) {
        self.inner.borrow_mut().log_idx = Some(idx);
    }

    /// The attached rescue-log index, if any.
    pub(crate) fn log_idx(&self) -> Option<usize> {
        self.inner.borrow().log_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn first_commit_wins() {
        let g = CommitGate::new();
        assert!(g.try_commit(t(10), 1));
        assert!(!g.try_commit(t(20), 0));
        assert_eq!(g.winner(), Some(1));
        assert_eq!(g.commits(), 1);
    }

    #[test]
    fn same_instant_tie_breaks_to_lower_copy() {
        // Arrival order 1 then 0 at the same instant: copy 0 is recorded
        // winner either way, and only one write happens.
        let g = CommitGate::new();
        assert!(g.try_commit(t(10), 1));
        assert!(!g.try_commit(t(10), 0));
        assert_eq!(g.winner(), Some(0));
        assert_eq!(g.commits(), 1);
        // Opposite arrival order: identical outcome.
        let g = CommitGate::new();
        assert!(g.try_commit(t(10), 0));
        assert!(!g.try_commit(t(10), 1));
        assert_eq!(g.winner(), Some(0));
        assert_eq!(g.commits(), 1);
    }

    #[test]
    fn disqualified_copy_never_commits() {
        let g = CommitGate::new();
        g.disqualify(0);
        assert!(!g.try_commit(t(5), 0));
        assert!(g.try_commit(t(9), 1));
        assert_eq!(g.winner(), Some(1));
    }

    #[test]
    fn same_instant_tie_break_is_transitive_over_three_copies() {
        // Three speculative copies landing at one instant: the lowest
        // index is recorded winner whatever the arrival permutation,
        // and exactly one write happens.
        for order in [[2, 1, 0], [1, 0, 2], [0, 2, 1], [2, 0, 1]] {
            let g = CommitGate::new();
            let mut writes = 0;
            for copy in order {
                if g.try_commit(t(7), copy) {
                    writes += 1;
                }
            }
            assert_eq!(g.winner(), Some(0), "order {order:?}");
            assert_eq!(g.commits(), 1, "order {order:?}");
            assert_eq!(writes, 1, "order {order:?}");
        }
    }

    #[test]
    fn later_instant_never_steals_the_win() {
        // The tie-break applies only to same-instant arrivals: a lower
        // copy index arriving *later* does not rewrite history.
        let g = CommitGate::new();
        assert!(g.try_commit(t(10), 3));
        assert!(!g.try_commit(t(11), 0));
        assert_eq!(g.winner(), Some(3));
        assert_eq!(g.commits(), 1);
    }

    #[test]
    fn disqualification_accumulates_across_copies() {
        // A stolen original (copy 0) and a corrupted rescue (copy 1) on
        // the same gate: both stay barred, a clean third copy commits.
        let g = CommitGate::new();
        g.disqualify(0);
        g.disqualify(1);
        g.disqualify(1); // idempotent
        assert!(g.is_disqualified(0));
        assert!(g.is_disqualified(1));
        assert!(!g.try_commit(t(5), 0));
        assert!(!g.try_commit(t(5), 1));
        assert_eq!(g.winner(), None);
        assert_eq!(g.commits(), 0);
        assert!(g.try_commit(t(6), 2));
        assert_eq!(g.winner(), Some(2));
        assert_eq!(g.commits(), 1);
    }

    #[test]
    fn disqualified_copy_cannot_claim_a_tie() {
        // Copy 0 is barred; at a shared instant the tie-break must not
        // hand it the recorded win either.
        let g = CommitGate::new();
        g.disqualify(0);
        assert!(g.try_commit(t(9), 1));
        assert!(!g.try_commit(t(9), 0));
        assert_eq!(g.winner(), Some(1));
    }

    #[test]
    fn clones_share_the_decision() {
        let g = CommitGate::new();
        let h = g.clone();
        assert!(g.try_commit(t(1), 0));
        assert!(!h.try_commit(t(2), 1));
        assert_eq!(h.winner(), Some(0));
    }
}
