//! Builder-style directives mirroring the single-device `target` pragma
//! family — the baseline directive set the paper compares against.
//!
//! | Pragma | Builder |
//! |---|---|
//! | `#pragma omp target teams distribute parallel for device(d) map(…) nowait depend(…)` | [`Target`] |
//! | `#pragma omp target data device(d) map(…)` | [`TargetData`] |
//! | `#pragma omp target enter data device(d) nowait map(to: …)` | [`TargetEnterData`] |
//! | `#pragma omp target exit data device(d) nowait map(from: …)` | [`TargetExitData`] |
//! | `#pragma omp target update device(d) nowait to(…) from(…)` | [`TargetUpdate`] |
//!
//! Every builder is consumed by a `launch`-style method taking a
//! [`Scope`]. Without `nowait` the call blocks (drains the simulator)
//! until the construct completes, like the OpenMP originals.

use std::ops::Range;

use crate::error::RtError;
use crate::kernel::KernelSpec;
use crate::map::{MapClause, MapType};
use crate::runtime::{run_kernel, run_transfers, run_transfers_ex, Action, Completion, Scope};
use crate::section::Section;
use crate::task::{FpAccess, TaskId, TaskSpec};

/// Dependence clauses shared by the directive builders.
#[derive(Clone, Default)]
struct Depends {
    ins: Vec<Section>,
    outs: Vec<Section>,
}

impl Depends {
    fn wait_on(&self) -> Vec<(Section, bool)> {
        self.ins
            .iter()
            .map(|&s| (s, false))
            .chain(self.outs.iter().map(|&s| (s, true)))
            .collect()
    }
}

/// Footprints of the enter half of a map set (for race detection).
fn enter_footprints(device: u32, maps: &[MapClause]) -> (Vec<FpAccess>, Vec<FpAccess>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for m in maps {
        if m.map_type.copies_in() {
            reads.push(FpAccess::host(m.section));
            writes.push(FpAccess::device(device, m.section));
        }
    }
    (reads, writes)
}

/// Footprints of the exit half of a map set.
fn exit_footprints(device: u32, maps: &[MapClause]) -> (Vec<FpAccess>, Vec<FpAccess>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for m in maps {
        if m.map_type.copies_out() {
            reads.push(FpAccess::device(device, m.section));
            writes.push(FpAccess::host(m.section));
        }
    }
    (reads, writes)
}

/// `#pragma omp target enter data`.
#[derive(Clone)]
pub struct TargetEnterData {
    device: u32,
    maps: Vec<MapClause>,
    nowait: bool,
    deps: Depends,
    label: Option<String>,
}

impl TargetEnterData {
    /// Start building for `device(d)`.
    pub fn device(device: u32) -> Self {
        TargetEnterData {
            device,
            maps: Vec::new(),
            nowait: false,
            deps: Depends::default(),
            label: None,
        }
    }

    /// Add a map item (`to` or `alloc`).
    pub fn map(mut self, m: MapClause) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = MapClause>) -> Self {
        self.maps.extend(items);
        self
    }

    /// `nowait` — asynchronous.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// `depend(in: s)`.
    pub fn depend_in(mut self, s: Section) -> Self {
        self.deps.ins.push(s);
        self
    }

    /// `depend(out: s)`.
    pub fn depend_out(mut self, s: Section) -> Self {
        self.deps.outs.push(s);
        self
    }

    /// Override the task label.
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = Some(l.into());
        self
    }

    /// Issue the directive.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<TaskId, RtError> {
        for m in &self.maps {
            if !m.map_type.valid_on_enter() {
                return Err(RtError::InvalidDirective(format!(
                    "target enter data: map type {:?} not allowed (use to/alloc)",
                    m.map_type
                )));
            }
        }
        let device = self.device;
        let maps = self.maps;
        let (fp_reads, fp_writes) = enter_footprints(device, &maps);
        let mut spec = TaskSpec::new(
            self.label
                .unwrap_or_else(|| format!("enter-data(dev{device})")),
        );
        spec.wait_on = self.deps.wait_on();
        spec.publish = spec.wait_on.clone();
        spec.fp_reads = fp_reads;
        spec.fp_writes = fp_writes;
        let action: Action = Box::new(move |sim, inner_rc, id| {
            crate::runtime::enter_with_backpressure(sim, inner_rc, id, device, maps)?;
            Ok(Completion::Async)
        });
        let id = scope.submit(spec, action);
        if !self.nowait {
            scope.drain_task(id)?;
        }
        Ok(id)
    }
}

/// `#pragma omp target exit data`.
#[derive(Clone)]
pub struct TargetExitData {
    device: u32,
    maps: Vec<MapClause>,
    nowait: bool,
    deps: Depends,
    label: Option<String>,
}

impl TargetExitData {
    /// Start building for `device(d)`.
    pub fn device(device: u32) -> Self {
        TargetExitData {
            device,
            maps: Vec::new(),
            nowait: false,
            deps: Depends::default(),
            label: None,
        }
    }

    /// Add a map item (`from`, `release` or `delete`).
    pub fn map(mut self, m: MapClause) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = MapClause>) -> Self {
        self.maps.extend(items);
        self
    }

    /// `nowait` — asynchronous.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// `depend(in: s)`.
    pub fn depend_in(mut self, s: Section) -> Self {
        self.deps.ins.push(s);
        self
    }

    /// `depend(out: s)`.
    pub fn depend_out(mut self, s: Section) -> Self {
        self.deps.outs.push(s);
        self
    }

    /// Override the task label.
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = Some(l.into());
        self
    }

    /// Issue the directive.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<TaskId, RtError> {
        for m in &self.maps {
            if !m.map_type.valid_on_exit() {
                return Err(RtError::InvalidDirective(format!(
                    "target exit data: map type {:?} not allowed (use from/release/delete)",
                    m.map_type
                )));
            }
        }
        let device = self.device;
        let maps = self.maps;
        let (fp_reads, fp_writes) = exit_footprints(device, &maps);
        let mut spec = TaskSpec::new(
            self.label
                .unwrap_or_else(|| format!("exit-data(dev{device})")),
        );
        spec.wait_on = self.deps.wait_on();
        spec.publish = spec.wait_on.clone();
        spec.fp_reads = fp_reads;
        spec.fp_writes = fp_writes;
        let action: Action = Box::new(move |sim, inner_rc, id| {
            let plan = inner_rc.borrow_mut().plan_exit(device, &maps)?;
            run_transfers(
                sim,
                inner_rc,
                id,
                device,
                Vec::new(),
                plan.copies,
                plan.to_free,
            );
            Ok(Completion::Async)
        });
        let id = scope.submit(spec, action);
        if !self.nowait {
            scope.drain_task(id)?;
        }
        Ok(id)
    }
}

/// The `exchange(…)` clause of `target update`: how `to(…)` sections
/// reach the device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Route every copy host→device over the host bus (the classic
    /// path; the rt-level default).
    #[default]
    Host,
    /// Require a direct device-to-device pull for every `to(…)` copy;
    /// `InvalidDirective` when no eligible peer source exists.
    Peer,
    /// Pull from an eligible sibling device when one holds the section
    /// bit-identical to the host image; host path otherwise.
    Auto,
}

/// `#pragma omp target update`.
#[derive(Clone)]
pub struct TargetUpdate {
    device: u32,
    to_items: Vec<Section>,
    from_items: Vec<Section>,
    nowait: bool,
    deps: Depends,
    exchange: ExchangeMode,
    integrity: crate::integrity::IntegrityMode,
}

impl TargetUpdate {
    /// Start building for `device(d)`.
    pub fn device(device: u32) -> Self {
        TargetUpdate {
            device,
            to_items: Vec::new(),
            from_items: Vec::new(),
            nowait: false,
            deps: Depends::default(),
            exchange: ExchangeMode::Host,
            integrity: crate::integrity::IntegrityMode::default(),
        }
    }

    /// `exchange(peer|host|auto)` — route `to(…)` refreshes
    /// device-to-device when a sibling already holds the bytes.
    pub fn exchange(mut self, mode: ExchangeMode) -> Self {
        self.exchange = mode;
        self
    }

    /// `spread_integrity(off|verify|heal)` — checksum every payload at
    /// its source and re-verify at the trust boundary. For an update,
    /// `heal` re-fetches a tainted peer pull over the host path; a
    /// tainted `from(…)` drain fails either way (the host is the
    /// destination — there is no unharmed image to heal a `from` item
    /// from, so reject `heal` with `from` items at a higher layer or
    /// accept fail-stop here).
    pub fn integrity(mut self, mode: crate::integrity::IntegrityMode) -> Self {
        self.integrity = mode;
        self
    }

    /// `to(section)` — refresh the device image from the host.
    pub fn to(mut self, s: Section) -> Self {
        self.to_items.push(s);
        self
    }

    /// `from(section)` — refresh the host from the device image.
    pub fn from(mut self, s: Section) -> Self {
        self.from_items.push(s);
        self
    }

    /// `nowait` — asynchronous.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// `depend(in: s)`.
    pub fn depend_in(mut self, s: Section) -> Self {
        self.deps.ins.push(s);
        self
    }

    /// `depend(out: s)`.
    pub fn depend_out(mut self, s: Section) -> Self {
        self.deps.outs.push(s);
        self
    }

    /// Issue the directive.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<TaskId, RtError> {
        let device = self.device;
        let (to_items, from_items) = (self.to_items, self.from_items);
        if self.exchange == ExchangeMode::Peer && to_items.is_empty() {
            return Err(RtError::InvalidDirective(
                "exchange(peer) requires at least one to(…) item".into(),
            ));
        }
        let exchange = self.exchange;
        let integrity = self.integrity;
        let mut spec = TaskSpec::new(format!("update(dev{device})"));
        spec.wait_on = self.deps.wait_on();
        spec.publish = spec.wait_on.clone();
        for &s in &to_items {
            spec.fp_reads.push(FpAccess::host(s));
            spec.fp_writes.push(FpAccess::device(device, s));
        }
        for &s in &from_items {
            spec.fp_reads.push(FpAccess::device(device, s));
            spec.fp_writes.push(FpAccess::host(s));
        }
        let action: Action = Box::new(move |sim, inner_rc, id| {
            let (to_copies, from_copies, routes) = {
                let mut inner = inner_rc.borrow_mut();
                let (to_copies, from_copies) = inner.plan_update(device, &to_items, &from_items)?;
                let routes = inner.plan_peer_routes(device, exchange, &to_copies)?;
                (to_copies, from_copies, routes)
            };
            run_transfers_ex(
                sim,
                inner_rc,
                id,
                device,
                to_copies,
                routes,
                from_copies,
                Vec::new(),
                integrity,
                None,
            );
            Ok(Completion::Async)
        });
        let id = scope.submit(spec, action);
        if !self.nowait {
            scope.drain_task(id)?;
        }
        Ok(id)
    }
}

/// `#pragma omp target data { … }` — structured mapping scope.
#[derive(Clone)]
pub struct TargetData {
    device: u32,
    maps: Vec<MapClause>,
}

impl TargetData {
    /// Start building for `device(d)`.
    pub fn device(device: u32) -> Self {
        TargetData {
            device,
            maps: Vec::new(),
        }
    }

    /// Add a map item.
    pub fn map(mut self, m: MapClause) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = MapClause>) -> Self {
        self.maps.extend(items);
        self
    }

    /// Run the structured region: blocking enter, body, blocking exit —
    /// the original supports neither `nowait` nor `depend` (§III-B.3).
    pub fn region<R>(
        self,
        scope: &mut Scope<'_>,
        f: impl FnOnce(&mut Scope<'_>) -> Result<R, RtError>,
    ) -> Result<R, RtError> {
        let enter_maps: Vec<MapClause> = self
            .maps
            .iter()
            .map(|m| MapClause {
                // `from` allocates on entry without copying.
                map_type: match m.map_type {
                    MapType::From => MapType::Alloc,
                    t => t,
                },
                section: m.section,
            })
            .collect();
        let exit_maps: Vec<MapClause> = self
            .maps
            .iter()
            .map(|m| MapClause {
                map_type: exit_equivalent(m.map_type),
                section: m.section,
            })
            .collect();
        let device = self.device;
        {
            let mut b = TargetEnterData::device(device).label(format!("data-enter(dev{device})"));
            b.maps = enter_maps;
            b.launch(scope)?;
        }
        let r = f(scope)?;
        {
            let mut b = TargetExitData::device(device).label(format!("data-exit(dev{device})"));
            b.maps = exit_maps;
            b.launch(scope)?;
        }
        Ok(r)
    }
}

/// The exit-phase equivalent of a structured/`target` map type.
fn exit_equivalent(t: MapType) -> MapType {
    match t {
        MapType::From | MapType::ToFrom => MapType::From,
        MapType::To | MapType::Alloc => MapType::Release,
        MapType::Release | MapType::Delete => t,
    }
}

/// The three chained tasks making up one executable `target` construct:
/// enter mappings → kernel → exit mappings. Returned by
/// [`Target::parallel_for_phases`] so resilience layers can register
/// fault handlers for every phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstructIds {
    /// Phase 1: enter mappings.
    pub enter: TaskId,
    /// Phase 2: the kernel.
    pub kernel: TaskId,
    /// Phase 3: exit mappings (the id downstream `depend`s see).
    pub exit: TaskId,
}

impl ConstructIds {
    /// All three ids, in phase order.
    pub fn all(&self) -> [TaskId; 3] {
        [self.enter, self.kernel, self.exit]
    }
}

/// `#pragma omp target [teams distribute parallel for]` — the executable
/// directive. Offloads a kernel over a loop range to one device.
#[derive(Clone)]
pub struct Target {
    device: u32,
    maps: Vec<MapClause>,
    nowait: bool,
    deps: Depends,
    num_teams: Option<u32>,
    threads_per_team: Option<u32>,
    extra_preds: Vec<TaskId>,
    pressure_managed: bool,
    commit_gate: Option<(crate::commit::CommitGate, u32)>,
    integrity: crate::integrity::IntegrityMode,
    overlap_depth: u32,
    overlap_leak: bool,
}

impl Target {
    /// Start building for `device(d)`.
    pub fn device(device: u32) -> Self {
        Target {
            device,
            maps: Vec::new(),
            nowait: false,
            deps: Depends::default(),
            num_teams: None,
            threads_per_team: None,
            extra_preds: Vec::new(),
            pressure_managed: false,
            commit_gate: None,
            integrity: crate::integrity::IntegrityMode::default(),
            overlap_depth: 1,
            overlap_leak: false,
        }
    }

    /// `spread_overlap(depth)` — software-pipeline this construct:
    /// split its iteration range into `depth` contiguous stages and
    /// overlap copy-in, kernel and copy-out across stages on
    /// runtime-allocated streams (see [`crate::overlap`]). `depth <= 1`
    /// is the classic un-pipelined path; depths beyond the range length
    /// are clamped. The construct's external contract — three phase
    /// tasks, whole-piece staged commit, gate/integrity semantics — is
    /// unchanged.
    pub fn overlap(mut self, depth: u32) -> Self {
        self.overlap_depth = depth.max(1);
        self
    }

    /// Fault-injection canary: make the pipelined exit leak one staged
    /// sub-slice to host memory before the commit point (value-visibly
    /// perturbed). Used by the conformance harness to prove its
    /// whole-piece commit check has teeth.
    #[doc(hidden)]
    pub fn overlap_leak(mut self) -> Self {
        self.overlap_leak = true;
        self
    }

    /// `spread_integrity(off|verify|heal)` — checksum this construct's
    /// staged D2H exit at its source and re-verify at the commit drain.
    /// Under `verify` a mismatch fails the construct with
    /// [`RtError::IntegrityViolation`]; under `heal` it routes to the
    /// construct's registered [`Scope::on_task_integrity`] recoverer,
    /// which re-executes the piece from the unharmed host image.
    pub fn integrity(mut self, mode: crate::integrity::IntegrityMode) -> Self {
        self.integrity = mode;
        self
    }

    /// Route this construct's staged D2H exit through a shared
    /// first-commit-wins [`CommitGate`](crate::commit::CommitGate) as
    /// copy index `copy`. The straggler layer attaches the same gate to
    /// a piece's original construct (copy 0) and its speculative rescue
    /// (copy 1): whichever exit finishes first writes host memory, the
    /// loser discards its staged snapshot but still cleans up its
    /// device-side mappings.
    pub fn commit_gate(mut self, gate: crate::commit::CommitGate, copy: u32) -> Self {
        self.commit_gate = Some((gate, copy));
        self
    }

    /// Mark this construct as pressure-managed: its enter phase retries
    /// an out-of-memory with bounded sim-time backoff (bypassing the
    /// indefinite backpressure parking) and, once retries are
    /// exhausted, *fails the enter task* with the OOM so a registered
    /// [`Scope::on_task_oom`] handler can split or spill the chunk.
    pub fn pressure_managed(mut self) -> Self {
        self.pressure_managed = true;
        self
    }

    /// Add a map item.
    pub fn map(mut self, m: MapClause) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = MapClause>) -> Self {
        self.maps.extend(items);
        self
    }

    /// `nowait` — asynchronous.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// Cancel a previously set `nowait` (the construct blocks again).
    pub fn blocking(mut self) -> Self {
        self.nowait = false;
        self
    }

    /// `depend(in: s)`.
    pub fn depend_in(mut self, s: Section) -> Self {
        self.deps.ins.push(s);
        self
    }

    /// `depend(out: s)`.
    pub fn depend_out(mut self, s: Section) -> Self {
        self.deps.outs.push(s);
        self
    }

    /// Serialize this construct after arbitrary tasks (beyond `depend`
    /// matching). Used by the resilient spread layer to order a
    /// replacement construct after the survivor's own work, which keeps
    /// the §V-B gap condition satisfied on the survivor's presence
    /// table.
    pub fn after(mut self, preds: impl IntoIterator<Item = TaskId>) -> Self {
        self.extra_preds.extend(preds);
        self
    }

    /// `num_teams(n)`.
    pub fn num_teams(mut self, n: u32) -> Self {
        self.num_teams = Some(n);
        self
    }

    /// `thread_limit`/threads per team.
    pub fn num_threads(mut self, n: u32) -> Self {
        self.threads_per_team = Some(n);
        self
    }

    /// Plain `target` (no `teams distribute parallel for`): the loop runs
    /// on a single device lane.
    pub fn serial(mut self) -> Self {
        self.num_teams = Some(1);
        self.threads_per_team = Some(1);
        self
    }

    /// Offload `kernel` over `range`. Creates the construct's three
    /// phases (enter mappings → kernel → exit mappings) as chained tasks;
    /// downstream `depend` matching sees the construct as one unit.
    pub fn parallel_for(
        self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
    ) -> Result<TaskId, RtError> {
        let nowait = self.nowait;
        let ids = self.parallel_for_phases(scope, range, kernel)?;
        if !nowait {
            scope.drain_task(ids.exit)?;
        }
        Ok(ids.exit)
    }

    /// Like [`Target::parallel_for`], but never blocks (regardless of
    /// `nowait`) and returns the ids of all three phase tasks, so a
    /// resilience layer can register a fault handler covering each
    /// phase and rebuild the construct elsewhere if its device dies.
    pub fn parallel_for_phases(
        self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
    ) -> Result<ConstructIds, RtError> {
        for m in &self.maps {
            if matches!(m.map_type, MapType::Release | MapType::Delete) {
                return Err(RtError::InvalidDirective(format!(
                    "target: map type {:?} not allowed",
                    m.map_type
                )));
            }
        }
        let device = self.device;
        let name = kernel.name.clone();
        let (teams, threads) = {
            let inner = scope.inner.borrow();
            (
                self.num_teams.unwrap_or(inner.default_num_teams),
                self.threads_per_team
                    .unwrap_or(inner.default_threads_per_team),
            )
        };
        // The pipelined path: shared state threaded through the three
        // phase actions. The task shapes (footprints, dependences,
        // labels) are identical to the classic path — the pipeline is
        // an internal reorganization only.
        let pipe =
            (self.overlap_depth >= 2 && range.len() >= 2 && !self.pressure_managed).then(|| {
                crate::overlap::PipeState::new(
                    device,
                    range.clone(),
                    self.overlap_depth,
                    self.overlap_leak,
                )
            });

        // Phase 1: enter mappings. Waits on the user's depends.
        let enter_id = {
            let maps = self.maps.clone();
            let (fp_reads, fp_writes) = enter_footprints(device, &maps);
            let mut spec = TaskSpec::new(format!("{name}-enter(dev{device})"));
            spec.wait_on = self.deps.wait_on();
            spec.extra_preds = self.extra_preds.clone();
            spec.fp_reads = fp_reads;
            spec.fp_writes = fp_writes;
            let pressure = self.pressure_managed;
            let action: Action = match &pipe {
                Some(p) => {
                    let pipe = std::rc::Rc::clone(p);
                    let spec_for_enter = kernel.clone();
                    Box::new(move |sim, inner_rc, id| {
                        crate::overlap::pipelined_enter(
                            sim,
                            inner_rc,
                            id,
                            device,
                            maps,
                            &spec_for_enter,
                            &pipe,
                        )
                    })
                }
                None => Box::new(move |sim, inner_rc, id| {
                    if pressure {
                        crate::runtime::pressure_enter(sim, inner_rc, id, device, maps, 0);
                    } else {
                        crate::runtime::enter_with_backpressure(sim, inner_rc, id, device, maps)?;
                    }
                    Ok(Completion::Async)
                }),
            };
            scope.submit(spec, action)
        };

        let exit_maps: Vec<MapClause> = self
            .maps
            .iter()
            .map(|m| MapClause {
                map_type: exit_equivalent(m.map_type),
                section: m.section,
            })
            .collect();

        // Phase 2: the kernel.
        let kernel_id = {
            let mut spec = TaskSpec::new(format!("{name}(dev{device})"));
            spec.extra_preds = vec![enter_id];
            for arg in &kernel.args {
                let sec = Section::from_range(arg.array.id(), (arg.section_of)(range.clone()));
                let fp = FpAccess::device(device, sec);
                if arg.access.writes() {
                    spec.fp_writes.push(fp);
                } else {
                    spec.fp_reads.push(fp);
                }
            }
            let krange = range.clone();
            let action: Action = match &pipe {
                Some(p) => {
                    let pipe = std::rc::Rc::clone(p);
                    let exit_maps = exit_maps.clone();
                    let integrity = self.integrity;
                    Box::new(move |sim, inner_rc, id| {
                        crate::overlap::pipelined_kernel(
                            sim, inner_rc, id, device, krange, &kernel, teams, threads, &exit_maps,
                            integrity, &pipe,
                        )
                    })
                }
                None => Box::new(move |sim, inner_rc, id| {
                    run_kernel(sim, inner_rc, id, device, krange, &kernel, teams, threads)?;
                    Ok(Completion::Async)
                }),
            };
            scope.submit(spec, action)
        };

        // Phase 3: exit mappings. Publishes the user's depends.
        let exit_id = {
            let maps = exit_maps;
            let (fp_reads, fp_writes) = exit_footprints(device, &maps);
            let mut spec = TaskSpec::new(format!("{name}-exit(dev{device})"));
            spec.extra_preds = vec![kernel_id];
            spec.publish = self.deps.wait_on();
            spec.fp_reads = fp_reads;
            spec.fp_writes = fp_writes;
            let gate = self.commit_gate.clone();
            let integrity = self.integrity;
            let action: Action = match &pipe {
                Some(p) => {
                    let pipe = std::rc::Rc::clone(p);
                    Box::new(move |sim, inner_rc, id| {
                        crate::overlap::pipelined_exit(
                            sim, inner_rc, id, device, &maps, integrity, gate, &pipe,
                        )
                    })
                }
                None => Box::new(move |sim, inner_rc, id| {
                    let plan = inner_rc.borrow_mut().plan_exit(device, &maps)?;
                    run_transfers_ex(
                        sim,
                        inner_rc,
                        id,
                        device,
                        Vec::new(),
                        Vec::new(),
                        plan.copies,
                        plan.to_free,
                        integrity,
                        gate,
                    );
                    Ok(Completion::Async)
                }),
            };
            scope.submit(spec, action)
        };

        if let Some(p) = &pipe {
            p.set_kernel_task(kernel_id);
        }
        Ok(ConstructIds {
            enter: enter_id,
            kernel: kernel_id,
            exit: exit_id,
        })
    }
}
