//! Array sections — the `A[start:len]` notation of the `map`, `depend`
//! and `range` clauses — and their overlap algebra.

use std::fmt;
use std::ops::Range;

/// Identifier of a registered host array.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArrayId(pub u32);

/// A contiguous element range of one array: `array[start : len]`
/// (OpenMP array-section syntax: start and *length*).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Section {
    /// The array.
    pub array: ArrayId,
    /// First element.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

impl Section {
    /// `array[start:len]`.
    pub fn new(array: ArrayId, start: usize, len: usize) -> Self {
        Section { array, start, len }
    }

    /// Build from a `Range` of element indexes.
    pub fn from_range(array: ArrayId, range: Range<usize>) -> Self {
        Section {
            array,
            start: range.start,
            len: range.end.saturating_sub(range.start),
        }
    }

    /// One-past-the-end element.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// The element range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end()
    }

    /// True if the section has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if both sections are on the same array and share at least one
    /// element.
    pub fn overlaps(&self, other: &Section) -> bool {
        self.array == other.array
            && !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }

    /// True if `other` lies entirely within `self` (same array). Empty
    /// sections are contained in anything on the same array whose range
    /// brackets their start point; for simplicity an empty `other` is
    /// contained iff its start is within `[start, end]`.
    pub fn contains(&self, other: &Section) -> bool {
        self.array == other.array && other.start >= self.start && other.end() <= self.end()
    }

    /// True if `i` is within the section.
    pub fn contains_index(&self, i: usize) -> bool {
        i >= self.start && i < self.end()
    }

    /// The overlapping sub-section, if any.
    pub fn intersection(&self, other: &Section) -> Option<Section> {
        if !self.overlaps(other) {
            return None;
        }
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        Some(Section::new(self.array, start, end - start))
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}[{}:{}]", self.array.0, self.start, self.len)
    }
}

impl fmt::Debug for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Section({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ArrayId = ArrayId(0);
    const B: ArrayId = ArrayId(1);

    fn s(start: usize, len: usize) -> Section {
        Section::new(A, start, len)
    }

    #[test]
    // A reversed range is deliberately passed to check it clamps to empty.
    #[allow(clippy::reversed_empty_ranges)]
    fn basic_accessors() {
        let x = s(10, 5);
        assert_eq!(x.end(), 15);
        assert_eq!(x.range(), 10..15);
        assert!(!x.is_empty());
        assert!(s(3, 0).is_empty());
        assert_eq!(Section::from_range(A, 4..9), s(4, 5));
        assert_eq!(Section::from_range(A, 9..4).len, 0);
    }

    #[test]
    fn overlap_cases() {
        assert!(s(0, 10).overlaps(&s(9, 5)));
        assert!(s(9, 5).overlaps(&s(0, 10)));
        assert!(!s(0, 10).overlaps(&s(10, 5)), "adjacent is not overlap");
        assert!(
            !s(0, 10).overlaps(&Section::new(B, 0, 10)),
            "different arrays"
        );
        assert!(!s(0, 0).overlaps(&s(0, 10)), "empty never overlaps");
        assert!(s(5, 1).overlaps(&s(0, 10)));
    }

    #[test]
    fn containment() {
        assert!(s(0, 10).contains(&s(2, 5)));
        assert!(s(0, 10).contains(&s(0, 10)));
        assert!(!s(0, 10).contains(&s(5, 10)));
        assert!(!s(0, 10).contains(&Section::new(B, 2, 5)));
        assert!(s(0, 10).contains_index(0));
        assert!(s(0, 10).contains_index(9));
        assert!(!s(0, 10).contains_index(10));
    }

    #[test]
    fn intersection() {
        assert_eq!(s(0, 10).intersection(&s(5, 10)), Some(s(5, 5)));
        assert_eq!(s(0, 10).intersection(&s(10, 5)), None);
        assert_eq!(s(0, 10).intersection(&Section::new(B, 5, 10)), None);
    }

    #[test]
    fn display() {
        assert_eq!(s(3, 7).to_string(), "arr0[3:7]");
    }
}
