//! Runtime error types.

use std::fmt;

use crate::section::Section;

/// Errors surfaced by the offloading runtime.
///
/// Errors are recorded when the failing task *starts* in virtual time (a
/// `nowait` directive cannot fail at the point of its pragma); blocking
/// drains return the first recorded error, after which the runtime is
/// poisoned.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    /// A new mapping overlaps, but does not fit inside, a section already
    /// present on the device — OpenMP forbids extending a mapped array.
    /// This is the rule that makes the Two Buffers / Double Buffering
    /// Somier versions impossible on a single GPU (paper §V-B).
    OverlapExtension {
        /// Device on which the conflict occurred.
        device: u32,
        /// The requested section.
        requested: Section,
        /// The already-present conflicting section.
        present: Section,
    },
    /// A `from`/`release`/`delete`/`update` referenced data that is not
    /// mapped on the device.
    NotMapped {
        /// Device looked up.
        device: u32,
        /// The missing section.
        requested: Section,
    },
    /// The device allocator could not satisfy a mapping.
    OutOfMemory {
        /// Device that ran out.
        device: u32,
        /// The section being mapped.
        requested: Section,
        /// Bytes requested.
        bytes: u64,
        /// Bytes free (possibly fragmented).
        free: u64,
    },
    /// A kernel argument's section was not present on the launch device.
    KernelSectionMissing {
        /// Launch device.
        device: u32,
        /// Kernel name.
        kernel: String,
        /// The section the kernel needs.
        requested: Section,
    },
    /// The simulator went idle while a blocking construct still waited —
    /// a dependency cycle or a lost completion.
    Deadlock {
        /// Description of what was being waited for.
        waiting_for: String,
    },
    /// A directive was mis-specified (empty device list, zero chunk, …).
    InvalidDirective(
        /// Explanation.
        String,
    ),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::OverlapExtension {
                device,
                requested,
                present,
            } => write!(
                f,
                "illegal extension of mapped array on device {device}: requested {requested} \
                 overlaps present {present} without being contained in it"
            ),
            RtError::NotMapped { device, requested } => {
                write!(f, "section {requested} is not mapped on device {device}")
            }
            RtError::OutOfMemory {
                device,
                requested,
                bytes,
                free,
            } => write!(
                f,
                "device {device} out of memory mapping {requested}: need {bytes} B, {free} B free"
            ),
            RtError::KernelSectionMissing {
                device,
                kernel,
                requested,
            } => write!(
                f,
                "kernel `{kernel}` on device {device} requires unmapped section {requested}"
            ),
            RtError::Deadlock { waiting_for } => {
                write!(
                    f,
                    "deadlock: simulator idle while waiting for {waiting_for}"
                )
            }
            RtError::InvalidDirective(msg) => write!(f, "invalid directive: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::{ArrayId, Section};

    #[test]
    fn display_messages() {
        let s = Section::new(ArrayId(0), 10, 5);
        let e = RtError::OverlapExtension {
            device: 2,
            requested: s,
            present: Section::new(ArrayId(0), 12, 8),
        };
        assert!(e.to_string().contains("illegal extension"));
        assert!(e.to_string().contains("device 2"));
        let e = RtError::NotMapped {
            device: 0,
            requested: s,
        };
        assert!(e.to_string().contains("not mapped"));
        let e = RtError::Deadlock {
            waiting_for: "taskgroup 3".into(),
        };
        assert!(e.to_string().contains("deadlock"));
    }
}
