//! Runtime error types.

use std::fmt;

use spread_trace::SimDuration;

use crate::section::Section;

/// Errors surfaced by the offloading runtime.
///
/// Errors are recorded when the failing task *starts* in virtual time (a
/// `nowait` directive cannot fail at the point of its pragma); blocking
/// drains return the first recorded error, after which the runtime is
/// poisoned.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    /// A new mapping overlaps, but does not fit inside, a section already
    /// present on the device — OpenMP forbids extending a mapped array.
    /// This is the rule that makes the Two Buffers / Double Buffering
    /// Somier versions impossible on a single GPU (paper §V-B).
    OverlapExtension {
        /// Device on which the conflict occurred.
        device: u32,
        /// The requested section.
        requested: Section,
        /// The already-present conflicting section.
        present: Section,
    },
    /// A `from`/`release`/`delete`/`update` referenced data that is not
    /// mapped on the device.
    NotMapped {
        /// Device looked up.
        device: u32,
        /// The missing section.
        requested: Section,
    },
    /// The device allocator could not satisfy a mapping.
    OutOfMemory {
        /// Device that ran out.
        device: u32,
        /// The section being mapped.
        requested: Section,
        /// Bytes requested.
        bytes: u64,
        /// Bytes free (possibly fragmented).
        free: u64,
    },
    /// A kernel argument's section was not present on the launch device.
    KernelSectionMissing {
        /// Launch device.
        device: u32,
        /// Kernel name.
        kernel: String,
        /// The section the kernel needs.
        requested: Section,
    },
    /// The simulator went idle while a blocking construct still waited —
    /// a dependency cycle or a lost completion.
    Deadlock {
        /// Description of what was being waited for.
        waiting_for: String,
    },
    /// A directive was mis-specified (empty device list, zero chunk, …).
    InvalidDirective(
        /// Explanation.
        String,
    ),
    /// A transfer kept failing transiently until the retry budget ran
    /// out. Fatal: the runtime no longer trusts the link.
    TransientCopy {
        /// Device the copy targeted.
        device: u32,
        /// What was being copied (the transfer label).
        what: String,
        /// Attempts made (first try + retries).
        attempts: u32,
    },
    /// The device is permanently lost; the operation (and everything
    /// mapped on the device) went with it.
    DeviceLost {
        /// The lost device.
        device: u32,
        /// What was running or requested when the loss surfaced.
        what: String,
    },
    /// A watchdog expired while a blocking construct still waited —
    /// progress stalled without the simulator going idle.
    Timeout {
        /// Description of what was being waited for.
        waiting_for: String,
        /// Virtual time spent waiting before the watchdog fired.
        waited: SimDuration,
    },
    /// Memory-pressure degradation was exhausted: even after splitting
    /// to the minimum chunk size no device could hold a piece and the
    /// construct's `spread_pressure(…)` policy forbade the next rung of
    /// the ladder (host spill). Carries the terminal allocation failure
    /// for telemetry.
    Degraded {
        /// Device of the final failed placement attempt.
        device: u32,
        /// What was being placed (the piece label).
        what: String,
        /// Bytes the smallest piece still needed.
        bytes: u64,
    },
    /// An end-to-end digest verification failed at a trust boundary: the
    /// payload that arrived is not the payload the source digested. The
    /// transfer itself reported success — only the checksum knows.
    /// Raised under `spread_integrity(verify)`; under `heal` the piece
    /// is re-executed instead and the error only surfaces if healing is
    /// impossible.
    IntegrityViolation {
        /// Device whose data path corrupted the payload.
        device: u32,
        /// The section whose bytes failed verification.
        section: Section,
    },
}

impl RtError {
    /// True for faults a resilient runtime may retry or route around
    /// (memory pressure can clear; a transient link error can heal).
    /// Fatal errors — lost devices, poisoned mappings, malformed
    /// directives, deadlocks — return false.
    ///
    /// Every variant is classified explicitly (no `_` arm): a new
    /// variant must document its choice here, and
    /// `transient_classification_is_exhaustive` pins each decision.
    pub fn is_transient(&self) -> bool {
        match self {
            // Memory pressure can clear: deallocation, splitting or
            // spilling may let a retry succeed.
            RtError::OutOfMemory { .. } => true,
            // The link may heal; retry with backoff is meaningful.
            RtError::TransientCopy { .. } => true,
            // Mapping-rule violations are deterministic program errors:
            // retrying replays the same violation.
            RtError::OverlapExtension { .. } => false,
            RtError::NotMapped { .. } => false,
            RtError::KernelSectionMissing { .. } => false,
            // Malformed directives never become well-formed.
            RtError::InvalidDirective(_) => false,
            // Scheduling failures describe a wedged run, not a fault
            // that clears.
            RtError::Deadlock { .. } => false,
            RtError::Timeout { .. } => false,
            // The device never comes back.
            RtError::DeviceLost { .. } => false,
            // Degradation already *was* the retry ladder: by
            // construction every transient avenue has been exhausted.
            RtError::Degraded { .. } => false,
            // A data path that corrupts silently cannot be trusted to
            // behave on a blind retry; healing is an explicit policy
            // (re-execute from the host image), not a retry.
            RtError::IntegrityViolation { .. } => false,
        }
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::OverlapExtension {
                device,
                requested,
                present,
            } => write!(
                f,
                "illegal extension of mapped array on device {device}: requested {requested} \
                 overlaps present {present} without being contained in it"
            ),
            RtError::NotMapped { device, requested } => {
                write!(f, "section {requested} is not mapped on device {device}")
            }
            RtError::OutOfMemory {
                device,
                requested,
                bytes,
                free,
            } => write!(
                f,
                "device {device} out of memory mapping {requested}: need {bytes} B, {free} B free"
            ),
            RtError::KernelSectionMissing {
                device,
                kernel,
                requested,
            } => write!(
                f,
                "kernel `{kernel}` on device {device} requires unmapped section {requested}"
            ),
            RtError::Deadlock { waiting_for } => {
                write!(
                    f,
                    "deadlock: simulator idle while waiting for {waiting_for}"
                )
            }
            RtError::InvalidDirective(msg) => write!(f, "invalid directive: {msg}"),
            RtError::TransientCopy {
                device,
                what,
                attempts,
            } => write!(
                f,
                "transient copy errors on device {device} exhausted {attempts} attempts \
                 transferring {what}"
            ),
            RtError::DeviceLost { device, what } => {
                write!(f, "device {device} lost during {what}")
            }
            RtError::Timeout {
                waiting_for,
                waited,
            } => write!(
                f,
                "timeout: no progress on {waiting_for} after {:.3} ms",
                waited.as_secs_f64() * 1e3
            ),
            RtError::Degraded {
                device,
                what,
                bytes,
            } => write!(
                f,
                "degradation exhausted placing {what}: no device can hold {bytes} B \
                 (last tried device {device})"
            ),
            RtError::IntegrityViolation { device, section } => write!(
                f,
                "integrity violation: digest mismatch on {section} from device {device} \
                 (silent corruption caught at a trust boundary)"
            ),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::{ArrayId, Section};

    /// Every variant's message must name the device (where one exists)
    /// and the thing that failed — operators debug from these strings.
    #[test]
    fn display_messages() {
        let s = Section::new(ArrayId(0), 10, 5);
        let e = RtError::OverlapExtension {
            device: 2,
            requested: s,
            present: Section::new(ArrayId(0), 12, 8),
        };
        assert!(e.to_string().contains("illegal extension"));
        assert!(e.to_string().contains("device 2"));
        assert!(e.to_string().contains(&s.to_string()));
        let e = RtError::NotMapped {
            device: 0,
            requested: s,
        };
        assert!(e.to_string().contains("not mapped"));
        assert!(e.to_string().contains("device 0"));
        assert!(e.to_string().contains(&s.to_string()));
        let e = RtError::OutOfMemory {
            device: 1,
            requested: s,
            bytes: 40,
            free: 16,
        };
        assert!(e.to_string().contains("device 1 out of memory"));
        assert!(e.to_string().contains("40 B"));
        assert!(e.to_string().contains("16 B free"));
        let e = RtError::KernelSectionMissing {
            device: 3,
            kernel: "forces".into(),
            requested: s,
        };
        assert!(e.to_string().contains("`forces`"));
        assert!(e.to_string().contains("device 3"));
        assert!(e.to_string().contains(&s.to_string()));
        let e = RtError::Deadlock {
            waiting_for: "taskgroup 3".into(),
        };
        assert!(e.to_string().contains("deadlock"));
        assert!(e.to_string().contains("taskgroup 3"));
        let e = RtError::InvalidDirective("empty device list".into());
        assert!(e.to_string().contains("invalid directive"));
        assert!(e.to_string().contains("empty device list"));
    }

    #[test]
    fn display_fault_messages() {
        let e = RtError::TransientCopy {
            device: 2,
            what: "u H2D a[0:64)".into(),
            attempts: 4,
        };
        assert!(e.to_string().contains("device 2"));
        assert!(e.to_string().contains("4 attempts"));
        assert!(e.to_string().contains("u H2D a[0:64)"));
        let e = RtError::DeviceLost {
            device: 1,
            what: "kernel `forces`".into(),
        };
        assert!(e.to_string().contains("device 1 lost"));
        assert!(e.to_string().contains("kernel `forces`"));
        let e = RtError::Timeout {
            waiting_for: "task `spread`".into(),
            waited: SimDuration::from_millis(250),
        };
        assert!(e.to_string().contains("timeout"));
        assert!(e.to_string().contains("task `spread`"));
        assert!(e.to_string().contains("250.000 ms"));
    }

    /// Only faults a resilient run can absorb are transient.
    #[test]
    fn transient_classification() {
        let s = Section::new(ArrayId(0), 0, 8);
        assert!(RtError::OutOfMemory {
            device: 0,
            requested: s,
            bytes: 64,
            free: 0,
        }
        .is_transient());
        assert!(RtError::TransientCopy {
            device: 0,
            what: "x".into(),
            attempts: 1,
        }
        .is_transient());
        for fatal in [
            RtError::DeviceLost {
                device: 0,
                what: "x".into(),
            },
            RtError::Timeout {
                waiting_for: "x".into(),
                waited: SimDuration::from_micros(1),
            },
            RtError::Deadlock {
                waiting_for: "x".into(),
            },
            RtError::NotMapped {
                device: 0,
                requested: s,
            },
            RtError::InvalidDirective("x".into()),
        ] {
            assert!(!fatal.is_transient(), "{fatal}");
        }
    }

    /// Exhaustive: one value of *every* variant with its expected
    /// classification. The `match` below has no `_` arm, so adding a
    /// variant breaks this test (and `is_transient` itself) until the
    /// new variant is classified explicitly.
    #[test]
    fn transient_classification_is_exhaustive() {
        let s = Section::new(ArrayId(0), 0, 8);
        let every: Vec<(RtError, bool)> = vec![
            (
                RtError::OverlapExtension {
                    device: 0,
                    requested: s,
                    present: s,
                },
                false,
            ),
            (
                RtError::NotMapped {
                    device: 0,
                    requested: s,
                },
                false,
            ),
            (
                RtError::OutOfMemory {
                    device: 0,
                    requested: s,
                    bytes: 64,
                    free: 0,
                },
                true,
            ),
            (
                RtError::KernelSectionMissing {
                    device: 0,
                    kernel: "k".into(),
                    requested: s,
                },
                false,
            ),
            (
                RtError::Deadlock {
                    waiting_for: "x".into(),
                },
                false,
            ),
            (RtError::InvalidDirective("x".into()), false),
            (
                RtError::TransientCopy {
                    device: 0,
                    what: "x".into(),
                    attempts: 1,
                },
                true,
            ),
            (
                RtError::DeviceLost {
                    device: 0,
                    what: "x".into(),
                },
                false,
            ),
            (
                RtError::Timeout {
                    waiting_for: "x".into(),
                    waited: SimDuration::from_micros(1),
                },
                false,
            ),
            (
                RtError::Degraded {
                    device: 0,
                    what: "x".into(),
                    bytes: 64,
                },
                false,
            ),
            (
                RtError::IntegrityViolation {
                    device: 0,
                    section: s,
                },
                false,
            ),
        ];
        for (err, want) in &every {
            assert_eq!(err.is_transient(), *want, "{err}");
            // Coverage check: every variant must appear in the list
            // above exactly once. No `_` arm — extending `RtError`
            // fails compilation here until the new variant is added.
            match err {
                RtError::OverlapExtension { .. }
                | RtError::NotMapped { .. }
                | RtError::OutOfMemory { .. }
                | RtError::KernelSectionMissing { .. }
                | RtError::Deadlock { .. }
                | RtError::InvalidDirective(_)
                | RtError::TransientCopy { .. }
                | RtError::DeviceLost { .. }
                | RtError::Timeout { .. }
                | RtError::Degraded { .. }
                | RtError::IntegrityViolation { .. } => {}
            }
        }
        let variants: std::collections::BTreeSet<&'static str> = every
            .iter()
            .map(|(e, _)| match e {
                RtError::OverlapExtension { .. } => "OverlapExtension",
                RtError::NotMapped { .. } => "NotMapped",
                RtError::OutOfMemory { .. } => "OutOfMemory",
                RtError::KernelSectionMissing { .. } => "KernelSectionMissing",
                RtError::Deadlock { .. } => "Deadlock",
                RtError::InvalidDirective(_) => "InvalidDirective",
                RtError::TransientCopy { .. } => "TransientCopy",
                RtError::DeviceLost { .. } => "DeviceLost",
                RtError::Timeout { .. } => "Timeout",
                RtError::Degraded { .. } => "Degraded",
                RtError::IntegrityViolation { .. } => "IntegrityViolation",
            })
            .collect();
        assert_eq!(variants.len(), every.len(), "a variant is listed twice");
    }

    #[test]
    fn integrity_violation_display_and_classification() {
        let s = Section::new(ArrayId(2), 4, 8);
        let e = RtError::IntegrityViolation {
            device: 3,
            section: s,
        };
        assert!(e.to_string().contains("integrity violation"));
        assert!(e.to_string().contains("device 3"));
        assert!(e.to_string().contains(&s.to_string()));
        assert!(!e.is_transient());
    }

    #[test]
    fn degraded_display() {
        let e = RtError::Degraded {
            device: 2,
            what: "piece [4..6)".into(),
            bytes: 96,
        };
        assert!(e.to_string().contains("degradation exhausted"));
        assert!(e.to_string().contains("piece [4..6)"));
        assert!(e.to_string().contains("96 B"));
        assert!(e.to_string().contains("device 2"));
    }
}
