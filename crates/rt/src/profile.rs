//! The keyed profile store behind `spread_schedule(auto)`.
//!
//! Each *construct key* (a stable name for one spread construct that a
//! program launches repeatedly) owns a weight vector. A launch resolves
//! `auto` into `spread_schedule(static_weighted)` using the current
//! weights; when the construct completes, the runtime aggregates its
//! trace window into a [`ConstructProfile`] and feeds the per-device
//! finish times back through a damped update:
//!
//! ```text
//! rate_d  = w_d / finish_d          (observed per-weight throughput)
//! ideal_d = rate_d / Σ rate         (weights that equalize finish times)
//! w'_d    = (1 − α)·w_d + α·ideal_d (damping factor α)
//! ```
//!
//! All inputs are virtual-time durations from the deterministic
//! simulator, so the weight trajectory — and therefore every later
//! placement — is bit-reproducible across runs.

use std::collections::HashMap;

use spread_trace::ConstructProfile;

/// Weights below this fraction of an equal share are clamped back up, so
/// a device that once looked slow keeps receiving a sliver of work and
/// can be re-measured (and the `StaticWeighted` plan never degenerates
/// to a zero-weight device).
const WEIGHT_FLOOR: f64 = 1e-3;

/// The pipeline depths `spread_overlap(auto)` explores, in order, before
/// settling on the EWMA argmin. 1 (no pipelining) stays a candidate so a
/// construct that does not benefit from overlap converges back to the
/// plain path.
const DEPTH_CANDIDATES: [u32; 3] = [1, 2, 4];

/// Smoothing factor for the per-depth duration EWMA.
const DEPTH_EWMA_ALPHA: f64 = 0.5;

/// Per-key adaptive state plus the full launch history.
pub(crate) struct ProfileStore {
    /// Damping factor α in `(0, 1]`.
    damping: f64,
    /// Current normalized weights per construct key.
    weights: HashMap<String, Vec<f64>>,
    /// Launches per key (the `launch` counter stamped on profiles).
    counts: HashMap<String, u64>,
    /// Every recorded launch, in completion order across all keys.
    history: Vec<ConstructProfile>,
    /// Per-key `spread_overlap(auto)` observations:
    /// depth → (duration EWMA in ns, observation count).
    depths: HashMap<String, Vec<(u32, f64, u64)>>,
}

impl ProfileStore {
    pub(crate) fn new(damping: f64) -> Self {
        ProfileStore {
            damping: damping.clamp(f64::MIN_POSITIVE, 1.0),
            weights: HashMap::new(),
            counts: HashMap::new(),
            history: Vec::new(),
            depths: HashMap::new(),
        }
    }

    /// The pipeline depth `spread_overlap(auto)` should use for the
    /// next launch of `key`: unexplored candidates first (in
    /// [`DEPTH_CANDIDATES`] order), then the EWMA argmin of construct
    /// duration (ties break toward the smaller depth).
    pub(crate) fn next_depth(&self, key: &str) -> u32 {
        let obs = self.depths.get(key);
        for &d in &DEPTH_CANDIDATES {
            let seen = obs
                .and_then(|v| v.iter().find(|(dd, _, _)| *dd == d))
                .map_or(0, |&(_, _, n)| n);
            if seen == 0 {
                return d;
            }
        }
        let obs = obs.expect("all candidates observed above");
        let mut best = DEPTH_CANDIDATES[0];
        let mut best_ewma = f64::INFINITY;
        for &d in &DEPTH_CANDIDATES {
            if let Some(&(_, e, _)) = obs.iter().find(|(dd, _, _)| *dd == d) {
                if e < best_ewma {
                    best_ewma = e;
                    best = d;
                }
            }
        }
        best
    }

    /// Feed back one completed `spread_overlap(auto)` launch: update
    /// the duration EWMA of `depth` under `key`.
    pub(crate) fn record_depth(&mut self, key: &str, depth: u32, duration_ns: f64) {
        let v = self.depths.entry(key.to_string()).or_default();
        match v.iter_mut().find(|(d, _, _)| *d == depth) {
            Some((_, e, n)) => {
                *e = (1.0 - DEPTH_EWMA_ALPHA) * *e + DEPTH_EWMA_ALPHA * duration_ns;
                *n += 1;
            }
            None => v.push((depth, duration_ns, 1)),
        }
    }

    /// The weights to use for the next launch of `key` over `k` devices:
    /// the stored vector when it matches `k`, an equal split otherwise
    /// (first launch, or the construct changed its device list).
    pub(crate) fn weights(&self, key: &str, k: usize) -> Vec<f64> {
        match self.weights.get(key) {
            Some(w) if w.len() == k => w.clone(),
            _ => vec![1.0; k.max(1)],
        }
    }

    /// The next launch index for `key`.
    pub(crate) fn next_launch(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Record a completed launch and run the damped update.
    ///
    /// If any device shows a zero finish time the update is skipped:
    /// either tracing is disabled (no spans, nothing to learn from) or
    /// the device received no work this round — in both cases the
    /// observation carries no throughput information for that device.
    pub(crate) fn record(&mut self, profile: ConstructProfile) {
        let key = profile.key.clone();
        let finishes = profile.finish_ns();
        let used = &profile.weights;
        if finishes.len() == used.len() && finishes.iter().all(|&f| f > 0.0) {
            let rates: Vec<f64> = used.iter().zip(&finishes).map(|(w, f)| w / f).collect();
            let total_rate: f64 = rates.iter().sum();
            if total_rate > 0.0 && total_rate.is_finite() {
                let total_used: f64 = used.iter().sum();
                let a = self.damping;
                let mut next: Vec<f64> = used
                    .iter()
                    .zip(&rates)
                    .map(|(w, r)| (1.0 - a) * (w / total_used) + a * (r / total_rate))
                    .collect();
                let floor = WEIGHT_FLOOR / next.len() as f64;
                for w in &mut next {
                    *w = w.max(floor);
                }
                let sum: f64 = next.iter().sum();
                let k = next.len() as f64;
                for w in &mut next {
                    // Normalize so weights sum to the device count: an
                    // equal split reads as all-ones, like the paper's
                    // hand-written `static` chunks.
                    *w = *w / sum * k;
                }
                self.weights.insert(key.clone(), next);
            }
        }
        *self.counts.entry(key).or_insert(0) += 1;
        self.history.push(profile);
    }

    /// Every recorded launch, in completion order.
    pub(crate) fn history(&self) -> &[ConstructProfile] {
        &self.history
    }

    /// The current weights for `key`, if it has adapted at least once.
    pub(crate) fn current(&self, key: &str) -> Option<&[f64]> {
        self.weights.get(key).map(|w| w.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_trace::{profile_window, SimTime};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn profile_with_finishes(
        key: &str,
        launch: u64,
        weights: Vec<f64>,
        finishes_ns: &[u64],
    ) -> ConstructProfile {
        // Build per-device profiles with the requested finish times by
        // aggregating synthetic kernel spans.
        use spread_trace::{Lane, SpanKind, TraceRecorder};
        let rec = TraceRecorder::new();
        let t1 = *finishes_ns.iter().max().unwrap_or(&0);
        for (d, &f) in finishes_ns.iter().enumerate() {
            if f > 0 {
                rec.record(
                    Lane::compute(d as u32),
                    SpanKind::Kernel,
                    "k",
                    t(0),
                    t(f),
                    0,
                );
            }
        }
        let devices: Vec<u32> = (0..finishes_ns.len() as u32).collect();
        let devs = profile_window(&rec.snapshot(), &devices, t(0), t(t1.max(1)));
        ConstructProfile {
            key: key.into(),
            launch,
            start: t(0),
            end: t(t1.max(1)),
            devices: devs,
            weights,
            round: 100,
        }
    }

    #[test]
    fn first_launch_gets_equal_weights() {
        let store = ProfileStore::new(0.5);
        assert_eq!(store.weights("k", 3), vec![1.0, 1.0, 1.0]);
        assert_eq!(store.next_launch("k"), 0);
    }

    #[test]
    fn update_shifts_weight_toward_fast_device() {
        let mut store = ProfileStore::new(0.5);
        // Device 1 took twice as long as device 0 under equal weights.
        store.record(profile_with_finishes("k", 0, vec![1.0, 1.0], &[100, 200]));
        let w = store.weights("k", 2);
        assert!(w[0] > w[1], "fast device should gain weight: {w:?}");
        assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-12);
        // rate = [1/100, 1/200] → ideal = [2/3, 1/3];
        // w' = 0.5·[1/2,1/2] + 0.5·[2/3,1/3] = [7/12, 5/12]; ×2 → [7/6, 5/6].
        assert!((w[0] - 7.0 / 6.0).abs() < 1e-9, "{w:?}");
        assert!((w[1] - 5.0 / 6.0).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn converges_to_equal_finish_times() {
        // Device 1 is 2× slower: its per-iteration cost is doubled. If
        // weights (w0, w1) give finishes proportional to (w0, 2·w1), the
        // fixpoint is w0 = 2·w1.
        let mut store = ProfileStore::new(0.5);
        for launch in 0..20 {
            let w = store.weights("k", 2);
            let f0 = (w[0] * 1000.0) as u64;
            let f1 = (w[1] * 2000.0) as u64;
            store.record(profile_with_finishes(
                "k",
                launch,
                w,
                &[f0.max(1), f1.max(1)],
            ));
        }
        let w = store.weights("k", 2);
        assert!(
            (w[0] / w[1] - 2.0).abs() < 0.05,
            "should converge to a 2:1 split, got {w:?}"
        );
    }

    #[test]
    fn zero_finish_skips_adaptation() {
        let mut store = ProfileStore::new(0.5);
        store.record(profile_with_finishes("k", 0, vec![1.0, 1.0], &[100, 0]));
        assert_eq!(store.weights("k", 2), vec![1.0, 1.0]);
        assert_eq!(store.next_launch("k"), 1); // still counted + in history
        assert_eq!(store.history().len(), 1);
    }

    #[test]
    fn device_count_change_resets_to_equal() {
        let mut store = ProfileStore::new(0.5);
        store.record(profile_with_finishes("k", 0, vec![1.0, 1.0], &[100, 200]));
        assert_eq!(store.weights("k", 3), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn weights_never_hit_zero() {
        let mut store = ProfileStore::new(1.0);
        for launch in 0..50 {
            let w = store.weights("k", 2);
            // Device 1 pathologically slow.
            let f0 = ((w[0] * 100.0) as u64).max(1);
            let f1 = ((w[1] * 1_000_000.0) as u64).max(1);
            store.record(profile_with_finishes("k", launch, w, &[f0, f1]));
        }
        let w = store.weights("k", 2);
        assert!(w[1] > 0.0, "floor must keep the slow device sampled: {w:?}");
    }

    #[test]
    fn keys_are_independent() {
        let mut store = ProfileStore::new(0.5);
        store.record(profile_with_finishes("a", 0, vec![1.0, 1.0], &[100, 200]));
        assert_eq!(store.weights("b", 2), vec![1.0, 1.0]);
        assert!(store.current("a").is_some());
        assert!(store.current("b").is_none());
    }
}
