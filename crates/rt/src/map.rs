//! `map` clause types.

use std::ops::Range;

use crate::host::HostArray;
use crate::section::Section;

/// The map type of one `map(type: section)` item.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MapType {
    /// `map(to: …)` — copy host→device when the mapping is created.
    To,
    /// `map(from: …)` — copy device→host when the mapping is released.
    From,
    /// `map(tofrom: …)` — both.
    ToFrom,
    /// `map(alloc: …)` — allocate only, no copies.
    Alloc,
    /// `map(release: …)` — decrement the reference count, no copy
    /// (exit-data only).
    Release,
    /// `map(delete: …)` — force the mapping away regardless of reference
    /// count (exit-data only).
    Delete,
}

impl MapType {
    /// Does entering this mapping copy host→device (on a fresh mapping)?
    pub fn copies_in(self) -> bool {
        matches!(self, MapType::To | MapType::ToFrom)
    }

    /// Does releasing this mapping copy device→host?
    pub fn copies_out(self) -> bool {
        matches!(self, MapType::From | MapType::ToFrom)
    }

    /// Valid on `target enter data`?
    pub fn valid_on_enter(self) -> bool {
        matches!(self, MapType::To | MapType::Alloc | MapType::ToFrom)
    }

    /// Valid on `target exit data`?
    pub fn valid_on_exit(self) -> bool {
        matches!(
            self,
            MapType::From | MapType::Release | MapType::Delete | MapType::ToFrom
        )
    }
}

/// One item of a `map` clause: a typed array section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapClause {
    /// The map type.
    pub map_type: MapType,
    /// The mapped section.
    pub section: Section,
}

impl MapClause {
    /// Construct from a handle and element range.
    pub fn new(map_type: MapType, array: HostArray, range: Range<usize>) -> Self {
        MapClause {
            map_type,
            section: array.section(range),
        }
    }
}

/// `map(to: a[range])`.
pub fn to(array: HostArray, range: Range<usize>) -> MapClause {
    MapClause::new(MapType::To, array, range)
}

/// `map(from: a[range])`.
pub fn from(array: HostArray, range: Range<usize>) -> MapClause {
    MapClause::new(MapType::From, array, range)
}

/// `map(tofrom: a[range])`.
pub fn tofrom(array: HostArray, range: Range<usize>) -> MapClause {
    MapClause::new(MapType::ToFrom, array, range)
}

/// `map(alloc: a[range])`.
pub fn alloc(array: HostArray, range: Range<usize>) -> MapClause {
    MapClause::new(MapType::Alloc, array, range)
}

/// `map(release: a[range])`.
pub fn release(array: HostArray, range: Range<usize>) -> MapClause {
    MapClause::new(MapType::Release, array, range)
}

/// `map(delete: a[range])`.
pub fn delete(array: HostArray, range: Range<usize>) -> MapClause {
    MapClause::new(MapType::Delete, array, range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostRegistry;

    #[test]
    fn helpers_build_sections() {
        let mut reg = HostRegistry::new();
        let a = reg.register("A", 100);
        let m = to(a, 10..20);
        assert_eq!(m.map_type, MapType::To);
        assert_eq!(m.section, a.section(10..20));
        assert_eq!(from(a, 0..5).map_type, MapType::From);
        assert_eq!(tofrom(a, 0..5).map_type, MapType::ToFrom);
        assert_eq!(alloc(a, 0..5).map_type, MapType::Alloc);
    }

    #[test]
    fn direction_predicates() {
        assert!(MapType::To.copies_in());
        assert!(MapType::ToFrom.copies_in());
        assert!(!MapType::From.copies_in());
        assert!(!MapType::Alloc.copies_in());
        assert!(MapType::From.copies_out());
        assert!(MapType::ToFrom.copies_out());
        assert!(!MapType::To.copies_out());
        assert!(!MapType::Release.copies_out());
        assert!(!MapType::Delete.copies_out());
    }

    #[test]
    fn directive_validity() {
        assert!(MapType::To.valid_on_enter());
        assert!(MapType::Alloc.valid_on_enter());
        assert!(!MapType::From.valid_on_enter());
        assert!(!MapType::Release.valid_on_enter());
        assert!(MapType::From.valid_on_exit());
        assert!(MapType::Release.valid_on_exit());
        assert!(MapType::Delete.valid_on_exit());
        assert!(!MapType::To.valid_on_exit());
    }
}
