//! Kernel specifications and the launcher.
//!
//! A [`KernelSpec`] is the reproduction's "device code": a closure over
//! iteration chunks plus a declaration of every array it touches
//! ([`KernelArg`]) — which array, with what [`Access`], and which element
//! section a given iteration range touches (the `section_of` expression,
//! the same arithmetic the paper writes with `omp_spread_start` /
//! `omp_spread_size`).
//!
//! At launch the runtime resolves each argument against the device's
//! presence table, binds the device buffers into [`ChunkViews`]
//! (bounds-checked, global-indexed views) and executes the body over the
//! iteration range on a [`TeamPool`] — `teams distribute parallel for`
//! for real, while the device's [`ComputeModel`] provides the virtual
//! duration.
//!
//! ## Safety contract (enforced + documented)
//!
//! * Every access is bounds-checked against the mapped section — touching
//!   an unmapped element aborts with a clear message (see the
//!   failure-injection tests).
//! * Writes are additionally restricted to the *current chunk's* section
//!   (`section_of(chunk)`). Because loop chunks are disjoint and
//!   `section_of` must be disjointness-preserving (affine expressions
//!   are), concurrent chunk executions never write the same element.
//! * Reading outside your own chunk's write section of a `ReadWrite`
//!   argument while other chunks run is the user's responsibility —
//!   the same contract OpenMP gives device kernels.

use std::ops::Range;
use std::sync::Arc;

use spread_devices::memory::DeviceMemory;
use spread_devices::AllocId;
use spread_teams::{ChunkDispenser, LoopSchedule, SliceCells, TeamPool};

use crate::host::HostArray;

/// How a kernel uses one of its arrays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Read anywhere within the mapped section.
    Read,
    /// Write only within the current chunk's section.
    Write,
    /// Read and write within the current chunk's section.
    ReadWrite,
}

impl Access {
    /// True if writes are allowed.
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// Maps an iteration range to the element section it touches.
pub type SectionExpr = Arc<dyn Fn(Range<usize>) -> Range<usize> + Send + Sync>;

/// One kernel array argument.
#[derive(Clone)]
pub struct KernelArg {
    /// The host array this argument views (device-resident at launch).
    pub array: HostArray,
    /// Access mode.
    pub access: Access,
    /// Iteration range → element section.
    pub section_of: SectionExpr,
}

impl KernelArg {
    /// A read-only argument.
    pub fn read(
        array: HostArray,
        section_of: impl Fn(Range<usize>) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        KernelArg {
            array,
            access: Access::Read,
            section_of: Arc::new(section_of),
        }
    }

    /// A write-only argument.
    pub fn write(
        array: HostArray,
        section_of: impl Fn(Range<usize>) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        KernelArg {
            array,
            access: Access::Write,
            section_of: Arc::new(section_of),
        }
    }

    /// A read-write argument.
    pub fn read_write(
        array: HostArray,
        section_of: impl Fn(Range<usize>) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        KernelArg {
            array,
            access: Access::ReadWrite,
            section_of: Arc::new(section_of),
        }
    }
}

/// The kernel body: called once per scheduled chunk with bounds-checked
/// views.
pub type KernelBody = Arc<dyn Fn(Range<usize>, &ChunkViews<'_, '_>) + Send + Sync>;

/// A complete kernel description.
#[derive(Clone)]
pub struct KernelSpec {
    /// Name (labels trace spans and diagnostics).
    pub name: String,
    /// Modeled single-lane device cost of one iteration, in nanoseconds.
    pub work_per_iter_ns: f64,
    /// Array arguments, indexed by position in [`ChunkViews`] calls.
    pub args: Vec<KernelArg>,
    /// The body.
    pub body: KernelBody,
    /// Intra-device loop schedule for the team executor.
    pub schedule: LoopSchedule,
}

impl KernelSpec {
    /// A kernel with the given per-iteration cost and body; add arguments
    /// with [`KernelSpec::arg`].
    pub fn new(
        name: impl Into<String>,
        work_per_iter_ns: f64,
        body: impl Fn(Range<usize>, &ChunkViews<'_, '_>) + Send + Sync + 'static,
    ) -> Self {
        KernelSpec {
            name: name.into(),
            work_per_iter_ns,
            args: Vec::new(),
            body: Arc::new(body),
            schedule: LoopSchedule::StaticBlocked,
        }
    }

    /// Append an argument.
    pub fn arg(mut self, arg: KernelArg) -> Self {
        self.args.push(arg);
        self
    }

    /// Override the intra-device schedule.
    pub fn with_schedule(mut self, schedule: LoopSchedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// An argument resolved against a device's presence table.
pub(crate) struct ResolvedArg {
    pub alloc: AllocId,
    /// Global element index of the buffer's first element.
    pub entry_start: usize,
    pub entry_len: usize,
    pub access: Access,
    pub section_of: SectionExpr,
}

struct Binding {
    cells_idx: usize,
    entry_start: usize,
    entry_len: usize,
    access: Access,
    section_of: SectionExpr,
}

/// Bounds-checked, global-indexed views over the mapped device buffers,
/// restricted to one scheduled chunk.
pub struct ChunkViews<'a, 'b> {
    cells: &'a [SliceCells<'b, f64>],
    bindings: &'a [Binding],
    /// Per-argument allowed write section for this chunk (empty for
    /// read-only arguments).
    write_ranges: Vec<Range<usize>>,
}

impl ChunkViews<'_, '_> {
    /// Read `array_arg[idx]` (global element index).
    #[inline]
    pub fn get(&self, arg: usize, idx: usize) -> f64 {
        let b = &self.bindings[arg];
        self.check_mapped(b, idx, idx + 1);
        // SAFETY: bounds checked; concurrent writers excluded by the
        // chunk-disjoint write contract.
        unsafe { self.cells[b.cells_idx].read(idx - b.entry_start) }
    }

    /// Write `array_arg[idx] = v` (global element index, within this
    /// chunk's write section).
    #[inline]
    pub fn set(&self, arg: usize, idx: usize, v: f64) {
        let b = &self.bindings[arg];
        self.check_writable(arg, b, idx, idx + 1);
        // SAFETY: bounds + ownership checked; disjoint chunks.
        unsafe {
            self.cells[b.cells_idx].slice_mut(idx - b.entry_start..idx - b.entry_start + 1)[0] = v;
        }
    }

    /// Borrow a read-only row `array_arg[range]` (global indexes).
    #[inline]
    pub fn row(&self, arg: usize, range: Range<usize>) -> &[f64] {
        let b = &self.bindings[arg];
        self.check_mapped(b, range.start, range.end);
        // SAFETY: bounds checked; read contract as in `get`.
        unsafe {
            self.cells[b.cells_idx].slice(range.start - b.entry_start..range.end - b.entry_start)
        }
    }

    /// Borrow a mutable row `array_arg[range]` (global indexes, within
    /// this chunk's write section).
    // Interior mutability by design: `SliceCells` hands out disjoint
    // mutable sub-slices from a shared view; the `check_writable` bounds
    // restrict this chunk to its own (disjoint) write section.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub fn row_mut(&self, arg: usize, range: Range<usize>) -> &mut [f64] {
        let b = &self.bindings[arg];
        self.check_writable(arg, b, range.start, range.end);
        // SAFETY: bounds + ownership checked; disjoint chunks.
        unsafe {
            self.cells[b.cells_idx]
                .slice_mut(range.start - b.entry_start..range.end - b.entry_start)
        }
    }

    /// The write section of argument `arg` for this chunk.
    pub fn write_range(&self, arg: usize) -> Range<usize> {
        self.write_ranges[arg].clone()
    }

    #[inline]
    fn check_mapped(&self, b: &Binding, start: usize, end: usize) {
        assert!(
            start >= b.entry_start && end <= b.entry_start + b.entry_len && start <= end,
            "kernel accessed elements [{start}, {end}) of an argument whose mapped \
             section is [{}, {}) — unmapped device access",
            b.entry_start,
            b.entry_start + b.entry_len,
        );
    }

    #[inline]
    fn check_writable(&self, arg: usize, b: &Binding, start: usize, end: usize) {
        assert!(
            b.access.writes(),
            "kernel wrote a read-only argument (arg {arg})"
        );
        let w = &self.write_ranges[arg];
        assert!(
            start >= w.start && end <= w.end && start <= end,
            "kernel wrote elements [{start}, {end}) outside its chunk's write \
             section [{}, {}) (arg {arg}) — cross-chunk write",
            w.start,
            w.end,
        );
        self.check_mapped(b, start, end);
    }
}

/// Execute a kernel body over `range` on a device's buffers.
///
/// `resolved` pairs each [`KernelArg`] with its presence-table entry; the
/// body runs work-shared on `pool`.
pub(crate) fn execute_on_device(
    mem: &mut DeviceMemory,
    pool: &TeamPool,
    schedule: LoopSchedule,
    range: Range<usize>,
    body: &KernelBody,
    resolved: &[ResolvedArg],
) {
    // Deduplicate buffers (two args may view the same presence entry).
    let mut unique: Vec<AllocId> = Vec::with_capacity(resolved.len());
    let mut cells_idx_of: Vec<usize> = Vec::with_capacity(resolved.len());
    for r in resolved {
        match unique.iter().position(|&a| a == r.alloc) {
            Some(i) => cells_idx_of.push(i),
            None => {
                unique.push(r.alloc);
                cells_idx_of.push(unique.len() - 1);
            }
        }
    }
    let bufs = mem.buffers_mut(&unique);
    let cells: Vec<SliceCells<'_, f64>> = bufs.into_iter().map(SliceCells::new).collect();
    let bindings: Vec<Binding> = resolved
        .iter()
        .zip(&cells_idx_of)
        .map(|(r, &ci)| Binding {
            cells_idx: ci,
            entry_start: r.entry_start,
            entry_len: r.entry_len,
            access: r.access,
            section_of: Arc::clone(&r.section_of),
        })
        .collect();
    let disp = ChunkDispenser::new(range, schedule, pool.n_threads());
    pool.broadcast(&|tid| {
        disp.drive(tid, |chunk| {
            let write_ranges: Vec<Range<usize>> = bindings
                .iter()
                .map(|b| {
                    if b.access.writes() {
                        (b.section_of)(chunk.clone())
                    } else {
                        0..0
                    }
                })
                .collect();
            let views = ChunkViews {
                cells: &cells,
                bindings: &bindings,
                write_ranges,
            };
            body(chunk.clone(), &views);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostRegistry;
    use spread_devices::memory::DeviceMemory;

    /// Set up a device holding one 100-element buffer mapped at global
    /// offset 10 (entry [10, 110)).
    fn setup() -> (DeviceMemory, AllocId) {
        let mut mem = DeviceMemory::new(1 << 16);
        let alloc = mem.alloc_elems(100).unwrap();
        for (i, v) in mem.buffer_mut(alloc).iter_mut().enumerate() {
            *v = (10 + i) as f64; // value == global index
        }
        (mem, alloc)
    }

    fn resolved(alloc: AllocId, access: Access, expr: SectionExpr) -> ResolvedArg {
        ResolvedArg {
            alloc,
            entry_start: 10,
            entry_len: 100,
            access,
            section_of: expr,
        }
    }

    fn ident() -> SectionExpr {
        Arc::new(|r: Range<usize>| r)
    }

    #[test]
    fn kernel_reads_and_writes_globally_indexed() {
        let (mut mem, alloc) = setup();
        let pool = TeamPool::new(4);
        let body: KernelBody = Arc::new(|chunk, v: &ChunkViews| {
            for i in chunk {
                let x = v.get(0, i);
                v.set(1, i, x * 2.0);
            }
        });
        let args = vec![
            resolved(alloc, Access::Read, ident()),
            resolved(alloc, Access::Write, ident()),
        ];
        execute_on_device(
            &mut mem,
            &pool,
            LoopSchedule::Dynamic { chunk: 7 },
            20..90,
            &body,
            &args,
        );
        let buf = mem.buffer(alloc);
        // Elements [20, 90) doubled, the rest untouched.
        assert_eq!(buf[20 - 10], 40.0);
        assert_eq!(buf[89 - 10], 178.0);
        assert_eq!(buf[10 - 10], 10.0);
        assert_eq!(buf[95 - 10], 95.0);
    }

    #[test]
    fn row_based_access() {
        let (mut mem, alloc) = setup();
        let pool = TeamPool::new(2);
        let body: KernelBody = Arc::new(|chunk, v: &ChunkViews| {
            let out = v.row_mut(0, chunk.clone());
            let inp = v.row(1, chunk.clone());
            for (o, &x) in out.iter_mut().zip(inp) {
                *o = x + 0.5;
            }
        });
        let args = vec![
            resolved(alloc, Access::ReadWrite, ident()),
            resolved(alloc, Access::Read, ident()),
        ];
        execute_on_device(
            &mut mem,
            &pool,
            LoopSchedule::StaticBlocked,
            10..110,
            &body,
            &args,
        );
        assert_eq!(mem.buffer(alloc)[0], 10.5);
        assert_eq!(mem.buffer(alloc)[99], 109.5);
    }

    #[test]
    fn halo_reads_with_shifted_section() {
        // Stencil: out[i] = in[i-1] + in[i+1]; read section extends ±1.
        let (mut mem, alloc) = setup();
        let mut out_mem = DeviceMemory::new(1 << 16);
        let out_alloc = out_mem.alloc_elems(100).unwrap();
        // Put both buffers in one memory for simultaneous binding.
        let pool = TeamPool::new(3);
        let body: KernelBody = Arc::new(|chunk, v: &ChunkViews| {
            for i in chunk {
                let s = v.get(0, i - 1) + v.get(0, i + 1);
                v.set(1, i, s);
            }
        });
        // Reuse the same buffer for output at a different arg slot is not
        // allowed (overlapping writes/reads); use a second buffer in the
        // same DeviceMemory instead.
        let out2 = mem.alloc_elems(100).unwrap();
        let args = vec![
            resolved(
                alloc,
                Access::Read,
                Arc::new(|r: Range<usize>| r.start - 1..r.end + 1),
            ),
            resolved(out2, Access::Write, ident()),
        ];
        execute_on_device(
            &mut mem,
            &pool,
            LoopSchedule::StaticChunked { chunk: 5 },
            11..109,
            &body,
            &args,
        );
        let buf = mem.buffer(out2);
        // out[i] = (i-1) + (i+1) = 2i
        assert_eq!(buf[11 - 10], 22.0);
        assert_eq!(buf[108 - 10], 216.0);
        drop(out_mem);
        let _ = out_alloc;
    }

    #[test]
    #[should_panic(expected = "unmapped device access")]
    fn out_of_section_read_panics() {
        let (mut mem, alloc) = setup();
        let pool = TeamPool::new(1);
        let body: KernelBody = Arc::new(|_chunk, v: &ChunkViews| {
            let _ = v.get(0, 5); // entry starts at 10
        });
        let args = vec![resolved(alloc, Access::Read, ident())];
        execute_on_device(
            &mut mem,
            &pool,
            LoopSchedule::StaticBlocked,
            20..21,
            &body,
            &args,
        );
    }

    #[test]
    #[should_panic(expected = "cross-chunk write")]
    fn cross_chunk_write_panics() {
        let (mut mem, alloc) = setup();
        let pool = TeamPool::new(1);
        let body: KernelBody = Arc::new(|chunk, v: &ChunkViews| {
            // Writing one past the chunk's own section.
            v.set(0, chunk.end, 1.0);
        });
        let args = vec![resolved(alloc, Access::Write, ident())];
        execute_on_device(
            &mut mem,
            &pool,
            LoopSchedule::StaticBlocked,
            20..30,
            &body,
            &args,
        );
    }

    #[test]
    #[should_panic(expected = "read-only argument")]
    fn write_to_read_arg_panics() {
        let (mut mem, alloc) = setup();
        let pool = TeamPool::new(1);
        let body: KernelBody = Arc::new(|chunk, v: &ChunkViews| {
            v.set(0, chunk.start, 1.0);
        });
        let args = vec![resolved(alloc, Access::Read, ident())];
        execute_on_device(
            &mut mem,
            &pool,
            LoopSchedule::StaticBlocked,
            20..30,
            &body,
            &args,
        );
    }

    #[test]
    fn kernel_spec_builder() {
        let mut reg = HostRegistry::new();
        let a = reg.register("A", 100);
        let spec = KernelSpec::new("copy", 2.0, |_c, _v| {})
            .arg(KernelArg::read(a, |r| r))
            .arg(KernelArg::write(a, |r| r))
            .with_schedule(LoopSchedule::Dynamic { chunk: 4 });
        assert_eq!(spec.name, "copy");
        assert_eq!(spec.args.len(), 2);
        assert_eq!(spec.args[0].access, Access::Read);
        assert!(spec.args[1].access.writes());
        assert_eq!(spec.schedule, LoopSchedule::Dynamic { chunk: 4 });
    }
}
