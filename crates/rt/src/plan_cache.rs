//! The launch-plan cache.
//!
//! Repeated launches of the *same* construct — Somier's five constructs
//! × N timesteps — re-run chunking, admission planning and overlap
//! sub-slice prediction every iteration even though nothing about the
//! directive changed. The cache short-circuits that: a construct that
//! opts in with `with_plan_cache(key)` stores its finished plan under
//! `(key, fingerprint, epoch)` and replays it on the next launch when
//! all three still match.
//!
//! * **key** — the construct-site identity, chosen by the program. Like
//!   an OpenMP lexical construct, one key must always describe the same
//!   directive shape; the fingerprint guards against drift anyway.
//! * **fingerprint** — a cheap structural hash of everything the plan
//!   depends on (range, devices, schedule, clause set, map/dep shape —
//!   and under memory pressure the live headroom vector). Computed by
//!   `spread-core` without evaluating a single map closure.
//! * **epoch** — the runtime's *topology epoch*, bumped by device loss
//!   (including integrity-breaker quarantine, which routes through the
//!   loss hook) and by every adaptive-state update (`ProfileStore`
//!   weight or overlap-depth feedback). A plan stored under an old
//!   epoch can never be served, however well its fingerprint matches.
//!
//! The payload is an opaque `Rc<dyn Any>`: the runtime owns the cache
//! mechanics, `spread-core` owns the plan type and downcasts on a hit.
//! Debug builds additionally re-plan from scratch on every hit and
//! assert the cached plan equal (in `spread-core`), and the
//! `spread-check` cache-parity suite proves cold and warm runs
//! bit-identical across every fuzz mode.

use std::any::Any;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::rc::Rc;
use std::time::Instant;

/// FNV-1a for the key map. Plan keys are short program-chosen strings;
/// SipHash's DoS resistance buys nothing here and its setup cost is
/// measurable on the warm path this cache exists to shorten.
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Clone, Default)]
pub(crate) struct FnvBuild;

impl BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// Hit/miss/invalidation counters plus the planning-time accounting the
/// hot-path benchmark reports. Instrumentation only — nothing in here
/// feeds back into planning decisions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a stored plan.
    pub hits: u64,
    /// Lookups that found nothing servable (absent, fingerprint
    /// mismatch, or stale epoch).
    pub misses: u64,
    /// Misses caused specifically by a stale epoch: the construct was
    /// cached, but the topology moved underneath it.
    pub invalidations: u64,
    /// Wall-clock nanoseconds spent producing plans from scratch
    /// (admission planning + chunking + map/dep section evaluation),
    /// summed over [`PlanCacheStats::cold_plans`] launches.
    pub cold_planning_ns: u64,
    /// Launches that planned from scratch.
    pub cold_plans: u64,
    /// Wall-clock nanoseconds spent on the warm path (fingerprint +
    /// lookup + plan replay), summed over [`PlanCacheStats::warm_plans`]
    /// launches.
    pub warm_planning_ns: u64,
    /// Launches served from the cache.
    pub warm_plans: u64,
}

impl PlanCacheStats {
    /// Mean nanoseconds per cold (from-scratch) planning pass.
    pub fn cold_ns_per_plan(&self) -> f64 {
        if self.cold_plans == 0 {
            return 0.0;
        }
        self.cold_planning_ns as f64 / self.cold_plans as f64
    }

    /// Mean nanoseconds per warm (cache-served) planning pass.
    pub fn warm_ns_per_plan(&self) -> f64 {
        if self.warm_plans == 0 {
            return 0.0;
        }
        self.warm_planning_ns as f64 / self.warm_plans as f64
    }
}

/// One stored plan.
struct CacheEntry {
    fingerprint: u64,
    epoch: u64,
    plan: Rc<dyn Any>,
}

/// The per-runtime launch-plan cache. Single-threaded like the rest of
/// `Inner`; the sharded structures around it carry the concurrency.
pub(crate) struct PlanCache {
    entries: HashMap<String, CacheEntry, FnvBuild>,
    epoch: u64,
    enabled: bool,
    stats: PlanCacheStats,
}

impl PlanCache {
    pub(crate) fn new(enabled: bool) -> Self {
        PlanCache {
            entries: HashMap::default(),
            epoch: 0,
            enabled,
            stats: PlanCacheStats::default(),
        }
    }

    /// Current topology epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invalidate every stored plan by moving the epoch forward.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Look up the plan stored under `key`. Serves it only when the
    /// fingerprint matches *and* the entry was stored in the current
    /// epoch; anything else is a miss (stale entries are dropped and
    /// counted as invalidations).
    ///
    /// `started` is the caller's planning-phase start (taken before it
    /// computed the fingerprint): a hit closes the warm planning window
    /// right here, inside the same borrow — the warm path must not pay
    /// a second round trip just to record how fast it was.
    pub(crate) fn lookup(
        &mut self,
        key: &str,
        fingerprint: u64,
        started: Instant,
    ) -> Option<Rc<dyn Any>> {
        if !self.enabled {
            return None;
        }
        match self.entries.get(key) {
            Some(e) if e.epoch == self.epoch && e.fingerprint == fingerprint => {
                let plan = Rc::clone(&e.plan);
                self.stats.hits += 1;
                self.note_planning(started.elapsed().as_nanos() as u64, true);
                Some(plan)
            }
            Some(e) => {
                if e.epoch != self.epoch {
                    self.stats.invalidations += 1;
                    self.entries.remove(key);
                }
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store a freshly computed plan under `key` for the current epoch.
    /// `started` is the same planning-phase start the failed lookup saw;
    /// the cold planning window (fingerprint + miss + from-scratch plan)
    /// closes here.
    pub(crate) fn store(
        &mut self,
        key: &str,
        fingerprint: u64,
        plan: Rc<dyn Any>,
        started: Instant,
    ) {
        if !self.enabled {
            return;
        }
        self.note_planning(started.elapsed().as_nanos() as u64, false);
        self.entries.insert(
            key.to_string(),
            CacheEntry {
                fingerprint,
                epoch: self.epoch,
                plan,
            },
        );
    }

    /// Account one planning pass: `warm` plans were served from the
    /// cache, cold ones ran the full planner.
    fn note_planning(&mut self, ns: u64, warm: bool) {
        if warm {
            self.stats.warm_planning_ns += ns;
            self.stats.warm_plans += 1;
        } else {
            self.stats.cold_planning_ns += ns;
            self.stats.cold_plans += 1;
        }
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_key_fingerprint_and_epoch() {
        let t0 = Instant::now();
        let mut c = PlanCache::new(true);
        assert!(c.lookup("k", 7, t0).is_none()); // absent
        c.store("k", 7, Rc::new(42u32), t0);
        let hit = c.lookup("k", 7, t0).expect("stored plan");
        assert_eq!(*hit.downcast::<u32>().unwrap(), 42);
        assert!(c.lookup("k", 8, t0).is_none()); // fingerprint mismatch
        c.bump_epoch();
        assert!(c.lookup("k", 7, t0).is_none()); // stale epoch
        let st = c.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 3);
        assert_eq!(st.invalidations, 1);
        // Planning windows close on store (cold) and on hit (warm).
        assert_eq!(st.cold_plans, 1);
        assert_eq!(st.warm_plans, 1);
        // The stale entry was dropped: the next lookup is a plain miss,
        // not another invalidation.
        assert!(c.lookup("k", 7, t0).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn disabled_cache_serves_and_stores_nothing() {
        let t0 = Instant::now();
        let mut c = PlanCache::new(false);
        c.store("k", 7, Rc::new(1u32), t0);
        assert!(c.lookup("k", 7, t0).is_none());
        assert_eq!(c.stats(), PlanCacheStats::default());
    }

    #[test]
    fn planning_time_accounting() {
        let mut c = PlanCache::new(true);
        c.note_planning(1_000, false);
        c.note_planning(3_000, false);
        c.note_planning(100, true);
        let st = c.stats();
        assert_eq!(st.cold_ns_per_plan(), 2_000.0);
        assert_eq!(st.warm_ns_per_plan(), 100.0);
    }

    #[test]
    fn fnv_hasher_is_stable_and_spreads_keys() {
        let h = |s: &str| {
            let mut f = FnvHasher::default();
            f.write(s.as_bytes());
            f.finish()
        };
        assert_eq!(h("somier:forces:0"), h("somier:forces:0"));
        assert_ne!(h("somier:forces:0"), h("somier:forces:1"));
        assert_ne!(h("a"), h("b"));
    }
}
