//! The host array registry.
//!
//! Host arrays are owned by the runtime and addressed through cheap
//! [`HostArray`] handles (the reproduction's stand-in for C pointers in
//! `map` clauses). Storage is `Rc<RefCell<Vec<f64>>>` — the orchestration
//! layer is single-threaded (the DES), and transfer effects borrow
//! individual arrays for the duration of one memcpy.

use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

use crate::section::{ArrayId, Section};

/// Handle to a registered host array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HostArray {
    pub(crate) id: ArrayId,
    pub(crate) len: usize,
}

impl HostArray {
    /// The array's id.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A section of this array from an element range.
    pub fn section(&self, range: Range<usize>) -> Section {
        Section::from_range(self.id, range)
    }

    /// The whole array as a section.
    pub fn full(&self) -> Section {
        Section::new(self.id, 0, self.len)
    }
}

/// Owns every host array.
#[derive(Default)]
pub struct HostRegistry {
    arrays: Vec<Rc<RefCell<Vec<f64>>>>,
    names: Vec<String>,
}

impl HostRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a zero-initialized array.
    pub fn register(&mut self, name: impl Into<String>, len: usize) -> HostArray {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(Rc::new(RefCell::new(vec![0.0; len])));
        self.names.push(name.into());
        HostArray { id, len }
    }

    /// Name of an array.
    pub fn name(&self, id: ArrayId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Shared storage handle for one array (used by transfer effects).
    pub fn storage(&self, id: ArrayId) -> Rc<RefCell<Vec<f64>>> {
        Rc::clone(&self.arrays[id.0 as usize])
    }

    /// Read a copy of an array's contents.
    pub fn snapshot(&self, h: HostArray) -> Vec<f64> {
        self.arrays[h.id.0 as usize].borrow().clone()
    }

    /// Overwrite an array's contents via an index function.
    pub fn fill_with(&self, h: HostArray, f: impl Fn(usize) -> f64) {
        let mut a = self.arrays[h.id.0 as usize].borrow_mut();
        for (i, v) in a.iter_mut().enumerate() {
            *v = f(i);
        }
    }

    /// Run `f` with an immutable view of the array.
    pub fn with<R>(&self, h: HostArray, f: impl FnOnce(&[f64]) -> R) -> R {
        f(&self.arrays[h.id.0 as usize].borrow())
    }

    /// Run `f` with a mutable view of the array.
    pub fn with_mut<R>(&self, h: HostArray, f: impl FnOnce(&mut [f64]) -> R) -> R {
        f(&mut self.arrays[h.id.0 as usize].borrow_mut())
    }

    /// Number of registered arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True if no arrays are registered.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut reg = HostRegistry::new();
        let a = reg.register("A", 10);
        let b = reg.register("B", 5);
        assert_eq!(reg.len(), 2);
        assert_eq!(a.len(), 10);
        assert_eq!(reg.name(a.id()), "A");
        assert_eq!(reg.name(b.id()), "B");
        reg.fill_with(a, |i| i as f64);
        assert_eq!(reg.snapshot(a)[7], 7.0);
        assert!(reg.snapshot(b).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sections_from_handles() {
        let mut reg = HostRegistry::new();
        let a = reg.register("A", 10);
        assert_eq!(a.section(2..6), Section::new(a.id(), 2, 4));
        assert_eq!(a.full(), Section::new(a.id(), 0, 10));
    }

    #[test]
    fn storage_is_shared() {
        let mut reg = HostRegistry::new();
        let a = reg.register("A", 4);
        let s = reg.storage(a.id());
        s.borrow_mut()[2] = 9.0;
        assert_eq!(reg.snapshot(a)[2], 9.0);
    }

    #[test]
    fn with_accessors() {
        let mut reg = HostRegistry::new();
        let a = reg.register("A", 4);
        reg.with_mut(a, |s| s[0] = 3.0);
        let v = reg.with(a, |s| s[0]);
        assert_eq!(v, 3.0);
    }

    #[test]
    fn empty_array() {
        let mut reg = HostRegistry::new();
        let a = reg.register("empty", 0);
        assert!(a.is_empty());
        assert!(reg.snapshot(a).is_empty());
    }
}
