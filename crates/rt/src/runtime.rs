//! The [`Runtime`]: simulator + devices + presence tables + task graph,
//! and the [`Scope`] through which programs issue directives.
//!
//! ## Blocking constructs and "recursive draining"
//!
//! The host program runs on the DES thread. A blocking construct
//! (`taskgroup`, `taskwait`, a directive without `nowait`) simply *drains*
//! the simulator — pops and executes events — until its wait condition
//! holds. Because host-task bodies execute inside simulator events and
//! receive a [`Scope`] of their own, a blocking construct inside a task
//! drains recursively: exactly the behaviour of a suspended OpenMP task
//! whose thread keeps scheduling other tasks. Everything stays
//! single-threaded and deterministic.
//!
//! ## Error model
//!
//! Mapping errors surface when the failing task *starts* in virtual time
//! (a `nowait` directive cannot fail at its pragma). The first error
//! poisons the runtime; every subsequent drain returns it.

use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

use spread_devices::dma::{Direction, DmaOp};
use spread_devices::node::{DeviceHandle, Node};
use spread_devices::topology::Topology;
use spread_devices::{AllocId, DeviceMemory, FaultCtx};
use spread_sim::{
    FaultEventKind, FaultPlan, PlannedFault, RetryPolicy, SharedFlowNet, Simulator, TieBreak,
};
use spread_teams::TeamPool;
use spread_trace::{SimDuration, SimTime, Timeline, TraceRecorder};

use crate::error::RtError;
use crate::host::{HostArray, HostRegistry};
use crate::integrity::{IntegrityAction, IntegrityBoundary, IntegrityEvent, IntegrityMode};
use crate::kernel::{self, KernelSpec, ResolvedArg};
use crate::map::{MapClause, MapType};
use crate::mapping::{EnterDecision, EntryKey, ExitDecision, MapConflict, ShardedPresence};
use crate::section::Section;
use crate::task::{GroupId, RaceReport, TaskGraph, TaskId, TaskSpec};

/// Construction parameters for a [`Runtime`].
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Machine description.
    pub topology: Topology,
    /// Host threads that execute kernel bodies (the real parallelism of
    /// the `teams distribute parallel for` level).
    pub team_threads: usize,
    /// Default `num_teams` for kernels that don't specify one.
    pub default_num_teams: u32,
    /// Default threads per team.
    pub default_threads_per_team: u32,
    /// Record trace spans (disable for benchmark speed).
    pub trace: bool,
    /// Allocation backpressure: when true, an enter-mapping that cannot
    /// allocate device memory *waits* for the next release instead of
    /// failing (a pooled-allocator runtime). When false (default), it
    /// fails with [`RtError::OutOfMemory`] like a raw `cudaMalloc`.
    pub alloc_backpressure: bool,
    /// How the simulator orders events that share a timestamp. The
    /// default is FIFO; `spread-check` injects seeded policies to fuzz
    /// over legal schedules.
    pub tie_break: TieBreak,
    /// Injected faults (`None` = the machine never fails). The plan's
    /// seed also drives retry-backoff jitter, so a `(program, config)`
    /// pair replays byte-identically.
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy for transient copy errors.
    pub retry: RetryPolicy,
    /// Circuit breaker: this many *consecutive* transient faults on one
    /// device escalate to a permanent loss.
    pub breaker: u32,
    /// Watchdog on blocking drains: if a wait makes no progress past
    /// this much virtual time, it fails with [`RtError::Timeout`]
    /// instead of spinning (`None` = wait forever).
    pub watchdog: Option<SimDuration>,
    /// Size of the bounded host staging buffer used by the spill
    /// executor (the last rung of the memory-pressure ladder). A chunk
    /// whose device footprint exceeds this executes in multiple
    /// map→compute→unmap slices.
    pub spill_staging_bytes: u64,
    /// Damping factor α in `(0, 1]` for the `spread_schedule(auto)`
    /// weight update: `w' = (1 − α)·w + α·ideal`. Small values adapt
    /// slowly but smooth noisy observations; `1.0` jumps straight to the
    /// measured ideal split each launch.
    pub adaptive_damping: f64,
    /// Serve launch plans from the plan cache (see
    /// [`plan_cache`](crate::plan_cache)). On by default — inert unless
    /// a construct opts in with a plan key. Disable to force every
    /// launch through the full planner (the cache-parity suite's cold
    /// leg).
    pub plan_cache: bool,
}

impl RuntimeConfig {
    /// A config for the given topology with sensible defaults.
    pub fn new(topology: Topology) -> Self {
        RuntimeConfig {
            topology,
            team_threads: 4,
            default_num_teams: 80,
            default_threads_per_team: 64,
            trace: true,
            alloc_backpressure: false,
            tie_break: TieBreak::Fifo,
            fault_plan: None,
            retry: RetryPolicy::default(),
            breaker: 8,
            watchdog: None,
            spill_staging_bytes: 1 << 20,
            adaptive_damping: 0.5,
            plan_cache: true,
        }
    }

    /// Enable allocation backpressure (see the field docs).
    pub fn with_alloc_backpressure(mut self, on: bool) -> Self {
        self.alloc_backpressure = on;
        self
    }

    /// Set the host team size.
    pub fn with_team_threads(mut self, n: usize) -> Self {
        self.team_threads = n.max(1);
        self
    }

    /// Enable/disable trace recording.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Set the simulator's equal-time event ordering policy.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Inject a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the transient-copy retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the consecutive-fault circuit-breaker threshold.
    pub fn with_breaker(mut self, n: u32) -> Self {
        self.breaker = n.max(1);
        self
    }

    /// Arm the blocking-drain watchdog.
    pub fn with_watchdog(mut self, limit: SimDuration) -> Self {
        self.watchdog = Some(limit);
        self
    }

    /// Set the host spill staging-buffer size.
    pub fn with_spill_staging_bytes(mut self, bytes: u64) -> Self {
        self.spill_staging_bytes = bytes.max(8);
        self
    }

    /// Set the `spread_schedule(auto)` damping factor (clamped to
    /// `(0, 1]`).
    pub fn with_adaptive_damping(mut self, alpha: f64) -> Self {
        self.adaptive_damping = alpha.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Enable/disable the launch-plan cache.
    pub fn with_plan_cache(mut self, on: bool) -> Self {
        self.plan_cache = on;
        self
    }
}

/// Which rung of the memory-pressure degradation ladder fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradationKind {
    /// Admission control moved a chunk off its preferred device
    /// before launch (`admission_shrunk`).
    AdmissionShrunk,
    /// A chunk was split because no single device could hold it
    /// (`chunk_split`).
    ChunkSplit,
    /// A chunk (or piece) executed through the bounded host staging
    /// buffer (`spilled_bytes`).
    Spilled,
    /// A straggling piece was speculatively re-executed on a healthy
    /// sibling device (`spread_straggler(steal|replicate)`).
    StragglerRescued,
    /// A digest mismatch at a trust boundary was healed from the
    /// unharmed host image (`spread_integrity(heal)`): the tainted
    /// bytes were discarded and the piece re-executed or re-fetched.
    CorruptionHealed,
}

/// One degradation decision, recorded in program order. `spread-check`
/// compares the exact sequence against its oracle's prediction; the
/// events are deterministic because they are derived from admission
/// decisions taken at construct-launch time, never from event races.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Which rung fired.
    pub kind: DegradationKind,
    /// The device the piece landed on (`None` for a host spill).
    pub device: Option<u32>,
    /// First loop iteration of the affected piece.
    pub start: usize,
    /// Iteration count of the affected piece.
    pub len: usize,
    /// Device-footprint bytes of the piece.
    pub bytes: u64,
}

/// What an action reports back to the scheduler.
pub(crate) enum Completion {
    /// The task is done; complete it now.
    Done,
    /// The action arranged for [`complete_task`] to be called later.
    Async,
}

/// A task's action: runs when the task starts in virtual time.
pub(crate) type Action =
    Box<dyn FnOnce(&mut Simulator, &Rc<RefCell<Inner>>, TaskId) -> Result<Completion, RtError>>;

/// A fault handler shared by the tasks of one construct: fires at most
/// once (the `Option` is taken), receiving the faulted task and its
/// error in a fresh [`Scope`].
pub(crate) type RecoveryHandler =
    Rc<RefCell<Option<Box<dyn FnOnce(&mut Scope<'_>, TaskId, RtError)>>>>;

/// Registration of a recovery handler for one task.
pub(crate) struct Recoverer {
    /// The device whose permanent loss this handler covers. Errors on a
    /// task whose device is *not* lost still poison the runtime — the
    /// handler only routes around dead hardware, never around bugs.
    pub(crate) device: u32,
    /// When true, the handler additionally covers
    /// [`RtError::OutOfMemory`] on the registered tasks (the
    /// memory-pressure ladder: a persistent OOM after retries hands the
    /// chunk to the split/spill coordinator instead of poisoning the
    /// runtime). Unlike the loss arm, this does not require a fault
    /// context — fragmentation can exhaust a healthy device.
    pub(crate) on_oom: bool,
    /// When true, the handler additionally covers
    /// [`RtError::IntegrityViolation`] on the registered tasks
    /// (`spread_integrity(heal)`): a digest mismatch at a trust
    /// boundary hands the piece back for re-execution from the unharmed
    /// host image instead of poisoning the runtime. Like the OOM arm,
    /// this does not require the device to be lost — the whole point is
    /// that the device is still up and lying.
    pub(crate) on_integrity: bool,
    pub(crate) handler: RecoveryHandler,
}

/// Shared mutable state of the runtime.
pub(crate) struct Inner {
    pub(crate) host: HostRegistry,
    pub(crate) devices: Vec<DeviceHandle>,
    pub(crate) presence: ShardedPresence,
    pub(crate) graph: TaskGraph,
    pub(crate) actions: std::collections::HashMap<TaskId, Action>,
    pub(crate) current_parent: Option<TaskId>,
    pub(crate) current_group: Option<GroupId>,
    pub(crate) error: Option<RtError>,
    pub(crate) alloc_backpressure: bool,
    /// Enter tasks waiting for device memory: (device, task, maps).
    pub(crate) mem_waiters: Vec<(u32, TaskId, Vec<MapClause>)>,
    pub(crate) pool: Rc<TeamPool>,
    pub(crate) flownet: SharedFlowNet,
    pub(crate) trace: TraceRecorder,
    pub(crate) default_num_teams: u32,
    pub(crate) default_threads_per_team: u32,
    /// Shared fault arbitration (`None` = fault-free machine).
    pub(crate) fault: Option<FaultCtx>,
    /// Registered recovery handlers, keyed by task.
    pub(crate) recoverers: std::collections::HashMap<TaskId, Recoverer>,
    /// Watchdog limit for blocking drains.
    pub(crate) watchdog: Option<SimDuration>,
    /// Bytes currently held on each device by the fault injector's
    /// pressure allocations (OOM spikes and sustained windows). These
    /// bytes sit inside the pool's `used` figure, but
    /// [`FaultCtx::oom_outstanding`] already forecasts them — headroom
    /// queries subtract this to avoid double counting.
    pub(crate) injector_live: Vec<u64>,
    /// Degradation decisions in program order (see [`DegradationEvent`]).
    pub(crate) degradations: Vec<DegradationEvent>,
    /// Retry policy reused for pressure-managed enter backoff.
    pub(crate) retry: RetryPolicy,
    /// Host staging-buffer bound for the spill executor.
    pub(crate) spill_staging_bytes: u64,
    /// Keyed adaptive-schedule state (`spread_schedule(auto)`).
    pub(crate) profiles: crate::profile::ProfileStore,
    /// Every peer (device-to-device) copy planned so far, in plan
    /// order. `diverted` flips when the effect-time re-check routed the
    /// copy back through the host.
    pub(crate) peer_log: Vec<PeerCopyRecord>,
    /// Every straggler rescue launched so far, in launch order (see
    /// [`Runtime::rescues`]). `winner`/`commits` are filled in by the
    /// commit gate as the racing exits arrive.
    pub(crate) rescue_log: Vec<RescueRecord>,
    /// Every digest mismatch caught at a trust boundary, in detection
    /// order (see [`Runtime::integrity_events`]).
    pub(crate) integrity_log: Vec<IntegrityEvent>,
    /// Live staged-commit buffers, keyed by the construct's device: the
    /// at-rest corruption surface. A
    /// [`MemoryScribble`](PlannedFault::MemoryScribble) flips one bit in
    /// the first non-empty staged snapshot it finds here — the window
    /// between a D2H's eager device read and its commit into host
    /// memory. Dead weak handles are pruned on insert.
    pub(crate) staged_registry: Vec<(u32, std::rc::Weak<RefCell<Vec<StagedWrite>>>)>,
    /// Every pipelined (`spread_overlap`) construct completed so far, in
    /// completion order (see [`Runtime::overlap_records`]).
    pub(crate) overlap_log: Vec<crate::overlap::OverlapRecord>,
    /// Launch plans of keyed constructs, invalidated wholesale by the
    /// topology epoch (see [`plan_cache`](crate::plan_cache)).
    pub(crate) plan_cache: crate::plan_cache::PlanCache,
}

/// One straggler rescue: a lagging piece speculatively re-executed on a
/// healthy sibling device (see [`Runtime::rescues`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RescueRecord {
    /// First loop iteration of the rescued piece.
    pub start: usize,
    /// Iteration count of the rescued piece.
    pub len: usize,
    /// The straggling device the piece was originally placed on.
    pub from: u32,
    /// The healthy sibling the speculative copy ran on.
    pub to: u32,
    /// Which copy's staged writes landed: `Some(0)` = the original
    /// straggler still won, `Some(1)` = the rescue won, `None` = neither
    /// exit has committed yet.
    pub winner: Option<u32>,
    /// Staged-write sets drained to host memory for this piece. Exactly
    /// 1 in any correct completed run.
    pub commits: u32,
    /// True when the straggler's in-flight kernel was cancelled
    /// (`spread_straggler(steal)`); false when both copies ran to
    /// completion (`replicate`, or a steal whose cancel arrived too
    /// late).
    pub stolen: bool,
}

/// One planned device-to-device copy (see [`Runtime::peer_copies`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerCopyRecord {
    /// Source device the destination pulled from.
    pub src: u32,
    /// Destination device.
    pub dst: u32,
    /// The host-array section transferred.
    pub section: Section,
    /// Payload size in bytes.
    pub bytes: u64,
    /// True when the effect-time re-verification found the source
    /// gone or stale and the copy was replayed over the host path
    /// instead.
    pub diverted: bool,
}

impl Inner {
    /// Validate a device id: it must exist and still be alive. The
    /// liveness check is the central fail-stop interception point —
    /// every planner (`plan_enter`, `plan_exit`, `plan_update`,
    /// `run_kernel`) goes through here, so a directive issued against a
    /// dead device fails with [`RtError::DeviceLost`] at task start.
    pub(crate) fn check_device(&self, device: u32) -> Result<(), RtError> {
        if (device as usize) >= self.devices.len() {
            return Err(RtError::InvalidDirective(format!(
                "device {device} does not exist (node has {})",
                self.devices.len()
            )));
        }
        if let Some(ctx) = &self.fault {
            if ctx.is_lost(device) {
                return Err(RtError::DeviceLost {
                    device,
                    what: "a directive targeting it".into(),
                });
            }
        }
        Ok(())
    }
}

/// One planned copy between host and a device buffer.
pub(crate) struct CopyPlanItem {
    pub section: Section,
    pub alloc: AllocId,
    /// Element offset of `section.start` within the device buffer.
    pub offset: usize,
    pub label: String,
}

/// Result of planning an enter-mapping set.
pub(crate) struct EnterPlan {
    pub copies: Vec<CopyPlanItem>,
}

/// Result of planning an exit-mapping set.
pub(crate) struct ExitPlan {
    pub copies: Vec<CopyPlanItem>,
    pub to_free: Vec<EntryKey>,
}

impl Inner {
    fn conflict_to_error(&self, device: u32, requested: Section, c: MapConflict) -> RtError {
        match c {
            MapConflict::Extension { present } => RtError::OverlapExtension {
                device,
                requested,
                present,
            },
            MapConflict::NotMapped => RtError::NotMapped { device, requested },
        }
    }

    /// Apply the enter half of a map set: presence bookkeeping +
    /// allocation, returning the copies to perform.
    ///
    /// Transactional: on any error, bookkeeping performed for earlier
    /// map items is rolled back, so a failed plan can be retried (the
    /// allocation-backpressure path re-runs it after a release).
    pub(crate) fn plan_enter(
        &mut self,
        device: u32,
        maps: &[MapClause],
    ) -> Result<EnterPlan, RtError> {
        self.check_device(device)?;
        let d = device as usize;
        let mut copies = Vec::new();
        // Undo log: reused entries (refcount to drop) and fresh inserts.
        let mut reused: Vec<Section> = Vec::new();
        let mut fresh: Vec<crate::mapping::EntryKey> = Vec::new();
        for m in maps {
            if !m.map_type.valid_on_enter() && m.map_type != MapType::From {
                self.rollback_enter(d, reused, fresh);
                return Err(RtError::InvalidDirective(format!(
                    "map type {:?} is not valid when entering a mapping",
                    m.map_type
                )));
            }
            if m.section.is_empty() {
                continue;
            }
            let enter = self.presence.write(d).begin_enter(m.section);
            let decision = match enter {
                Ok(dec) => dec,
                Err(c) => {
                    let err = self.conflict_to_error(device, m.section, c);
                    self.rollback_enter(d, reused, fresh);
                    return Err(err);
                }
            };
            match decision {
                EnterDecision::Reuse(_) => reused.push(m.section),
                EnterDecision::Fresh => {
                    let alloc_result = self.devices[d].mem.borrow_mut().alloc_elems(m.section.len);
                    let alloc = match alloc_result {
                        Ok(a) => a,
                        Err(oom) => {
                            let err = RtError::OutOfMemory {
                                device,
                                requested: m.section,
                                bytes: oom.requested,
                                free: oom.free,
                            };
                            self.rollback_enter(d, reused, fresh);
                            return Err(err);
                        }
                    };
                    let key = self.presence.write(d).insert_fresh(m.section, alloc);
                    fresh.push(key);
                    if m.map_type.copies_in() {
                        copies.push(CopyPlanItem {
                            section: m.section,
                            alloc,
                            offset: 0,
                            label: format!("{} H2D {}", self.host.name(m.section.array), m.section),
                        });
                    }
                }
            }
        }
        Ok(EnterPlan { copies })
    }

    /// Undo the bookkeeping of a partially applied enter-plan.
    fn rollback_enter(
        &mut self,
        d: usize,
        reused: Vec<Section>,
        fresh: Vec<crate::mapping::EntryKey>,
    ) {
        for s in reused {
            // Drop the extra reference we took. The scrutinee is hoisted
            // into a `let` so the shard's write guard is released before
            // the `LastRef` arm relocks it (a guard in a `match` head
            // lives for the whole match).
            let undone = self.presence.write(d).begin_exit(&s, false);
            match undone {
                Ok(ExitDecision::Keep(_)) => {}
                Ok(ExitDecision::LastRef(key)) => {
                    if let Some(alloc) = self.presence.write(d).finish_exit(key) {
                        self.devices[d].mem.borrow_mut().dealloc(alloc);
                    }
                }
                Err(_) => unreachable!("undoing a reuse we just made"),
            }
        }
        for key in fresh {
            let sec = self
                .presence
                .read(d)
                .entry(key)
                .expect("fresh entry still present")
                .section;
            let undone = self.presence.write(d).begin_exit(&sec, true);
            match undone {
                Ok(ExitDecision::LastRef(k)) => {
                    if let Some(a) = self.presence.write(d).finish_exit(k) {
                        self.devices[d].mem.borrow_mut().dealloc(a);
                    }
                }
                _ => unreachable!("undoing a fresh insert we just made"),
            }
        }
    }

    /// Apply the exit half of a map set.
    pub(crate) fn plan_exit(
        &mut self,
        device: u32,
        maps: &[MapClause],
    ) -> Result<ExitPlan, RtError> {
        self.check_device(device)?;
        let mut copies = Vec::new();
        let mut to_free = Vec::new();
        for m in maps {
            if !m.map_type.valid_on_exit() {
                return Err(RtError::InvalidDirective(format!(
                    "map type {:?} is not valid when exiting a mapping",
                    m.map_type
                )));
            }
            if m.section.is_empty() {
                continue;
            }
            let d = device as usize;
            let decision = self
                .presence
                .write(d)
                .begin_exit(&m.section, m.map_type == MapType::Delete)
                .map_err(|c| self.conflict_to_error(device, m.section, c))?;
            match decision {
                ExitDecision::Keep(_) => {}
                ExitDecision::LastRef(key) => {
                    if m.map_type.copies_out() {
                        let table = self.presence.read(d);
                        let entry = table.entry(key).expect("dying entry");
                        copies.push(CopyPlanItem {
                            section: m.section,
                            alloc: entry.alloc,
                            offset: m.section.start - entry.section.start,
                            label: format!("{} D2H {}", self.host.name(m.section.array), m.section),
                        });
                    }
                    to_free.push(key);
                }
            }
        }
        Ok(ExitPlan { copies, to_free })
    }

    /// Plan a `target update` copy set: sections must be present.
    pub(crate) fn plan_update(
        &mut self,
        device: u32,
        to_items: &[Section],
        from_items: &[Section],
    ) -> Result<(Vec<CopyPlanItem>, Vec<CopyPlanItem>), RtError> {
        self.check_device(device)?;
        let d = device as usize;
        let plan = |items: &[Section], dir: &str| -> Result<Vec<CopyPlanItem>, RtError> {
            let mut out = Vec::new();
            for &s in items {
                if s.is_empty() {
                    continue;
                }
                let table = self.presence.read(d);
                let Some((_, entry)) = table.lookup_containing(&s) else {
                    return Err(RtError::NotMapped {
                        device,
                        requested: s,
                    });
                };
                out.push(CopyPlanItem {
                    section: s,
                    alloc: entry.alloc,
                    offset: s.start - entry.section.start,
                    label: format!("{} upd-{dir} {}", self.host.name(s.array), s),
                });
            }
            Ok(out)
        };
        Ok((plan(to_items, "to")?, plan(from_items, "from")?))
    }

    /// The eligible peer source for a to-copy of `sec` onto `device`:
    /// the lowest-numbered sibling that is alive, holds a presence
    /// entry containing `sec`, and whose device bytes over `sec` are
    /// bit-equal to the host image. Bit-equality is what makes a peer
    /// pull observationally identical to the host copy it replaces —
    /// and what lets the conformance oracle replicate this rule
    /// exactly (ascending scan, first match wins).
    pub(crate) fn peer_source_for(&self, device: u32, sec: &Section) -> Option<u32> {
        let host = self.host.storage(sec.array);
        let host = host.borrow();
        for sd in 0..self.presence.num_shards() {
            let src = sd as u32;
            if src == device || self.fault.as_ref().is_some_and(|ctx| ctx.is_lost(src)) {
                continue;
            }
            let table = self.presence.read(sd);
            let Some((_, entry)) = table.lookup_containing(sec) else {
                continue;
            };
            let off = sec.start - entry.section.start;
            let smem = self.devices[sd].mem.borrow();
            let sbuf = &smem.buffer(entry.alloc)[off..off + sec.len];
            if sbuf
                .iter()
                .zip(&host[sec.range()])
                .all(|(a, b)| a.to_bits() == b.to_bits())
            {
                return Some(src);
            }
        }
        None
    }

    /// Resolve an `exchange(…)` clause into a per-to-copy route:
    /// `Some(src)` pulls device-to-device, `None` goes over the host
    /// bus. `exchange(peer)` demands a source for every copy and
    /// rejects the directive otherwise.
    pub(crate) fn plan_peer_routes(
        &self,
        device: u32,
        mode: crate::directives::ExchangeMode,
        to_copies: &[CopyPlanItem],
    ) -> Result<Vec<Option<u32>>, RtError> {
        use crate::directives::ExchangeMode;
        match mode {
            ExchangeMode::Host => Ok(vec![None; to_copies.len()]),
            ExchangeMode::Auto => Ok(to_copies
                .iter()
                .map(|c| self.peer_source_for(device, &c.section))
                .collect()),
            ExchangeMode::Peer => {
                if self.devices.len() < 2 {
                    return Err(RtError::InvalidDirective(
                        "exchange(peer) requires at least two devices".into(),
                    ));
                }
                to_copies
                    .iter()
                    .map(|c| {
                        self.peer_source_for(device, &c.section)
                            .map(Some)
                            .ok_or_else(|| {
                                RtError::InvalidDirective(format!(
                                    "exchange(peer): no eligible peer source for {} on device {device}",
                                    c.section
                                ))
                            })
                    })
                    .collect()
            }
        }
    }
}

/// Run an enter-mapping task's work: plan (with rollback), then either
/// stream the copies or — with allocation backpressure on — park the
/// task until a release frees device memory.
pub(crate) fn enter_with_backpressure(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    id: TaskId,
    device: u32,
    maps: Vec<MapClause>,
) -> Result<(), RtError> {
    let planned = {
        let mut inner = inner_rc.borrow_mut();
        match inner.plan_enter(device, &maps) {
            Ok(plan) => Some(plan),
            Err(e @ RtError::OutOfMemory { .. }) if inner.alloc_backpressure => {
                inner.mem_waiters.push((device, id, maps));
                let _ = e;
                None
            }
            Err(e) => return Err(e),
        }
    };
    if let Some(plan) = planned {
        run_transfers(
            sim,
            inner_rc,
            id,
            device,
            plan.copies,
            Vec::new(),
            Vec::new(),
        );
    }
    Ok(())
}

/// After device memory was released on `device`, retry parked enter
/// tasks (FIFO; stops at the first that still does not fit).
pub(crate) fn retry_mem_waiters(sim: &mut Simulator, inner_rc: &Rc<RefCell<Inner>>, device: u32) {
    loop {
        let next = {
            let mut inner = inner_rc.borrow_mut();
            let pos = inner.mem_waiters.iter().position(|(d, _, _)| *d == device);
            pos.map(|p| inner.mem_waiters.remove(p))
        };
        let Some((d, id, maps)) = next else { return };
        let before = inner_rc.borrow().mem_waiters.len();
        if let Err(e) = enter_with_backpressure(sim, inner_rc, id, d, maps) {
            inner_rc.borrow_mut().error.get_or_insert(e);
            return;
        }
        // If it re-parked itself, memory is still too tight: stop (FIFO
        // fairness; the next release will retry again).
        if inner_rc.borrow().mem_waiters.len() > before {
            return;
        }
    }
}

/// Run a pressure-managed enter-mapping task: like
/// [`enter_with_backpressure`], but an [`RtError::OutOfMemory`] is
/// retried a bounded number of times (sim-scheduled backoff, so an
/// expiring OOM spike can clear) instead of parking indefinitely on
/// `mem_waiters`. When retries are exhausted the task *fails* with the
/// OOM, which routes it to the construct's registered pressure
/// recoverer (split or spill). Never returns an error: every outcome is
/// delivered through the task graph.
pub(crate) fn pressure_enter(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    id: TaskId,
    device: u32,
    maps: Vec<MapClause>,
    attempt: u32,
) {
    if inner_rc.borrow().error.is_some() {
        return;
    }
    let planned = inner_rc.borrow_mut().plan_enter(device, &maps);
    match planned {
        Ok(plan) => run_transfers(
            sim,
            inner_rc,
            id,
            device,
            plan.copies,
            Vec::new(),
            Vec::new(),
        ),
        Err(e @ RtError::OutOfMemory { .. }) => {
            let (max_retries, backoff) = {
                let inner = inner_rc.borrow();
                let retry = inner.retry;
                let backoff = match &inner.fault {
                    // With a fault context, draw from the run's single
                    // seeded PRNG (same stream as transient-copy
                    // backoff) so replays stay byte-identical.
                    Some(ctx) => ctx.backoff(attempt),
                    // Without one there is nothing to race against:
                    // a jitter-free exponential is fully deterministic.
                    None => retry.backoff_unjittered(attempt),
                };
                (retry.max_retries, backoff)
            };
            if attempt >= max_retries {
                task_failed(sim, inner_rc, id, e);
                return;
            }
            let weak = Rc::downgrade(inner_rc);
            let at = sim.now() + backoff;
            sim.schedule_at(
                at,
                Box::new(move |sim| {
                    if let Some(rc) = weak.upgrade() {
                        pressure_enter(sim, &rc, id, device, maps, attempt + 1);
                    }
                }),
            );
        }
        Err(e) => task_failed(sim, inner_rc, id, e),
    }
}

/// Schedule a task's start event at the current instant.
pub(crate) fn schedule_start(sim: &mut Simulator, inner_rc: &Rc<RefCell<Inner>>, id: TaskId) {
    let rc = Rc::clone(inner_rc);
    sim.schedule_now(Box::new(move |sim| start_task(sim, &rc, id)));
}

/// Fire a task: mark running, run its action, handle the outcome.
pub(crate) fn start_task(sim: &mut Simulator, inner_rc: &Rc<RefCell<Inner>>, id: TaskId) {
    let action = {
        let mut inner = inner_rc.borrow_mut();
        if inner.error.is_some() {
            return;
        }
        inner.graph.start(id);
        inner.actions.remove(&id)
    };
    match action {
        None => complete_task(sim, inner_rc, id),
        Some(action) => match action(sim, inner_rc, id) {
            Ok(Completion::Done) => complete_task(sim, inner_rc, id),
            Ok(Completion::Async) => {}
            Err(e) => task_failed(sim, inner_rc, id, e),
        },
    }
}

/// Route a task failure: if the task has a registered recovery handler
/// *and* either the handler's device really is lost or the handler
/// opted into out-of-memory recovery and the error is an OOM, the
/// handler runs (once) with a fresh [`Scope`] — it is responsible for
/// eventually completing the faulted task. Every other failure poisons
/// the runtime (fail-stop, the default).
pub(crate) fn task_failed(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    id: TaskId,
    err: RtError,
) {
    let handler = {
        let inner = inner_rc.borrow();
        match inner.recoverers.get(&id) {
            Some(r) => {
                let lost = inner
                    .fault
                    .as_ref()
                    .is_some_and(|ctx| ctx.is_lost(r.device));
                // The OOM arm deliberately does not require a fault
                // context: a healthy device can still run out of
                // contiguous memory (fragmentation).
                let oom = r.on_oom && matches!(err, RtError::OutOfMemory { .. });
                // The integrity arm does not require the device to be
                // lost either: a healing construct re-executes on a
                // device that is alive but produced rotten bytes.
                let corrupt = r.on_integrity && matches!(err, RtError::IntegrityViolation { .. });
                if lost || oom || corrupt {
                    r.handler.borrow_mut().take()
                } else {
                    None
                }
            }
            None => None,
        }
    };
    match handler {
        Some(h) => {
            let mut scope = Scope {
                sim,
                inner: inner_rc,
            };
            h(&mut scope, id, err);
        }
        None => {
            inner_rc.borrow_mut().error.get_or_insert(err);
        }
    }
}

/// Cleanup after a permanent device loss (runs as a [`FaultCtx`] hook):
/// the device's memory contents are gone, so every mapping on it is
/// wiped and its allocator reset; enter tasks parked on its memory can
/// never be satisfied and fail with [`RtError::DeviceLost`].
pub(crate) fn device_lost_cleanup(sim: &mut Simulator, inner_rc: &Rc<RefCell<Inner>>, device: u32) {
    let stranded = {
        let mut inner = inner_rc.borrow_mut();
        let d = device as usize;
        inner.presence.write(d).clear();
        // The topology changed: any cached launch plan placing work on
        // this device is now wrong. Covers integrity-breaker quarantine
        // too — quarantine routes through `mark_lost` into this hook.
        inner.plan_cache.bump_epoch();
        let capacity = inner.devices[d].mem.borrow().pool().capacity();
        *inner.devices[d].mem.borrow_mut() = DeviceMemory::new(capacity);
        let mut stranded = Vec::new();
        inner.mem_waiters.retain(|(dd, id, _)| {
            let mine = *dd == device;
            if mine {
                stranded.push(*id);
            }
            !mine
        });
        stranded
    };
    for id in stranded {
        task_failed(
            sim,
            inner_rc,
            id,
            RtError::DeviceLost {
                device,
                what: "a mapping parked for device memory".into(),
            },
        );
    }
}

/// Mark a task finished; schedule newly ready successors.
pub(crate) fn complete_task(sim: &mut Simulator, inner_rc: &Rc<RefCell<Inner>>, id: TaskId) {
    let ready = inner_rc.borrow_mut().graph.finish(id);
    for t in ready {
        schedule_start(sim, inner_rc, t);
    }
}

/// A device→host copy captured at its virtual start, committed to host
/// memory only when the whole transfer set succeeds. The final field is
/// the source-side CRC32C of the snapshot (computed over the bytes the
/// DMA engine actually read, before anything can rot in flight or at
/// rest), `None` under `spread_integrity(off)`.
pub(crate) type StagedWrite = (Rc<RefCell<Vec<f64>>>, Section, Vec<f64>, Option<u32>);

/// Flip the lowest mantissa bit of `data[0]` — the canonical injected
/// single-bit corruption. Chosen so the damage is value-visible but
/// tiny: exactly what end-to-end checksums exist to catch and what
/// value-level sanity checks miss.
/// Flip the top exponent bit of the payload's first element. A single
/// low-mantissa flip of a near-zero value washes out as a sub-ulp
/// wobble the next accumulation absorbs; rescaling the exponent makes
/// the rot orders of magnitude wrong (even 0.0 becomes 2.0), so
/// unchecked corruption stays visible all the way to a reduced result —
/// the worst case an end-to-end checksum has to catch.
pub(crate) fn flip_one_bit(data: &mut [f64]) {
    if let Some(v) = data.first_mut() {
        *v = f64::from_bits(v.to_bits() ^ (1u64 << 62));
    }
}

/// Append an integrity event and mirror it as a zero-length `Verify`
/// marker span on the offending device's compute lane (like fault and
/// degradation markers).
fn record_integrity_inner(now: SimTime, inner: &mut Inner, ev: IntegrityEvent) {
    let label = format!(
        "{:?} {:?} {} dev{}",
        ev.action, ev.boundary, ev.section, ev.device
    );
    inner.trace.record(
        spread_trace::Lane::compute(ev.device),
        spread_trace::SpanKind::Verify,
        label,
        now,
        now,
        0,
    );
    inner.integrity_log.push(ev);
}

/// Apply a planned [`MemoryScribble`](PlannedFault::MemoryScribble):
/// flip one bit in the first non-empty staged D2H snapshot currently
/// pending commit for `device`. Inert when nothing is staged at the
/// planned instant — at-rest corruption needs bytes at rest.
pub(crate) fn scribble_staged(inner_rc: &Rc<RefCell<Inner>>, device: u32) {
    let inner = inner_rc.borrow();
    for (d, weak) in &inner.staged_registry {
        if *d != device {
            continue;
        }
        let Some(staged) = weak.upgrade() else {
            continue;
        };
        let mut staged = staged.borrow_mut();
        if let Some((_, _, data, _)) = staged.iter_mut().find(|(_, _, data, _)| !data.is_empty()) {
            flip_one_bit(data);
            return;
        }
    }
}

/// Enqueue a set of planned copies as DMA operations; when all complete,
/// run the cleanup (presence removal + dealloc for exits) and complete
/// the task.
///
/// D2H copies are *staged*: their effect snapshots the device buffer at
/// the copy's virtual start, but host memory is only written when every
/// copy of the set has succeeded. If any copy faults (a device dying
/// mid-exit), the host keeps its old data wholesale — a recovery
/// handler can then replay the construct from an unharmed host image
/// instead of one with a half-written mix. For race-free programs this
/// is observationally equivalent to eager host writes, because
/// dependent tasks only start after the transfer task completes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_transfers(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    task: TaskId,
    device: u32,
    in_copies: Vec<CopyPlanItem>,
    out_copies: Vec<CopyPlanItem>,
    to_free: Vec<EntryKey>,
) {
    run_transfers_ex(
        sim,
        inner_rc,
        task,
        device,
        in_copies,
        Vec::new(),
        out_copies,
        to_free,
        IntegrityMode::Off,
        None,
    );
}

/// A one-shot transfer-set finalizer, shared by every op's completion
/// and fault paths.
type FinishSlot = Rc<RefCell<Option<Box<dyn FnOnce(&mut Simulator)>>>>;

/// Count one op as done; the last one runs the set's finalizer.
fn finish_one(sim: &mut Simulator, remaining: &Rc<std::cell::Cell<usize>>, finish: &FinishSlot) {
    remaining.set(remaining.get() - 1);
    if remaining.get() == 0 {
        let f = finish.borrow_mut().take().expect("finish once");
        f(sim);
    }
}

/// The shared fault handler of a transfer set: record the first error,
/// count the op as done.
fn transfer_fault(
    what: String,
    failed: Rc<RefCell<Option<RtError>>>,
    remaining: Rc<std::cell::Cell<usize>>,
    finish: FinishSlot,
) -> spread_devices::health::OnFault {
    Box::new(move |sim, ev| {
        let err = match ev.kind {
            FaultEventKind::TransientExhausted { attempts } => RtError::TransientCopy {
                device: ev.device,
                what,
                attempts,
            },
            FaultEventKind::DeviceLost => RtError::DeviceLost {
                device: ev.device,
                what,
            },
        };
        failed.borrow_mut().get_or_insert(err);
        finish_one(sim, &remaining, &finish);
    })
}

/// The whole-piece commit point shared by the classic exit path
/// ([`run_transfers_ex`]) and the pipelined overlap exit
/// ([`crate::overlap`]): verify every staged snapshot's source CRC,
/// arbitrate the commit gate, drain (or discard) the staged writes
/// all-or-nothing, release the dying presence entries, and complete or
/// fail the task. Returns the number of staged snapshots actually
/// written to host memory.
#[allow(clippy::too_many_arguments)]
pub(crate) fn staged_commit_finish(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    task: TaskId,
    device: u32,
    staged: &Rc<RefCell<Vec<StagedWrite>>>,
    failed: &Rc<RefCell<Option<RtError>>>,
    to_free: &[EntryKey],
    integrity: IntegrityMode,
    gate: &Option<(crate::commit::CommitGate, u32)>,
) -> usize {
    if let Some(err) = failed.borrow_mut().take() {
        // No host writes, no presence cleanup: the dying entries
        // (if any) were wiped by the device-loss hook, and a
        // poisoned runtime never reuses them.
        task_failed(sim, inner_rc, task, err);
        return 0;
    }
    // Trust boundary 1 — staged-commit drain: re-digest every
    // snapshot that carries a source CRC before it may touch
    // host memory. The digest was taken over the device bytes
    // at the copy's virtual start; anything that rotted since —
    // in flight (SilentFlip) or at rest (MemoryScribble) — shows
    // up here.
    let tainted: Vec<Section> = staged
        .borrow()
        .iter()
        .filter_map(|(_, sec, data, crc)| {
            crc.and_then(|c| (spread_devices::digest_f64(data) != c).then_some(*sec))
        })
        .collect();
    if !tainted.is_empty() {
        if let Some((g, copy)) = gate {
            // Never arbitrate with rotten bytes: a clean racing
            // sibling (if any) takes the win.
            g.disqualify(*copy);
        }
        staged.borrow_mut().clear();
        let now = sim.now();
        let quarantined = {
            let inner = inner_rc.borrow();
            integrity == IntegrityMode::Heal
                && inner
                    .fault
                    .as_ref()
                    .is_some_and(|ctx| ctx.record_integrity_mismatch(device))
        };
        let action = match (integrity, quarantined) {
            (_, true) => IntegrityAction::Quarantined,
            (IntegrityMode::Heal, _) => IntegrityAction::Healed,
            _ => IntegrityAction::Failed,
        };
        {
            let mut inner = inner_rc.borrow_mut();
            for &sec in &tainted {
                record_integrity_inner(
                    now,
                    &mut inner,
                    IntegrityEvent {
                        device,
                        section: sec,
                        at: now,
                        boundary: IntegrityBoundary::Commit,
                        action,
                    },
                );
                if action == IntegrityAction::Healed {
                    record_degradation_inner(
                        now,
                        &mut inner,
                        DegradationEvent {
                            kind: DegradationKind::CorruptionHealed,
                            device: Some(device),
                            start: sec.start,
                            len: sec.len,
                            bytes: sec.len as u64 * 8,
                        },
                    );
                }
            }
        }
        let err = RtError::IntegrityViolation {
            device,
            section: tainted[0],
        };
        if quarantined {
            // Streak tripped the breaker: the device's data path
            // cannot be trusted at all — treat it as lost. The
            // loss hook wipes its presence table and allocator,
            // so the dying entries need no cleanup here.
            let ctx = inner_rc.borrow().fault.clone();
            if let Some(ctx) = ctx {
                ctx.mark_lost(sim, device);
            }
            task_failed(sim, inner_rc, task, err);
            return 0;
        }
        if integrity == IntegrityMode::Heal {
            // The device is alive: release its mapping normally
            // so the recoverer's fresh enter→kernel→exit starts
            // from a clean table.
            let freed = {
                let inner = inner_rc.borrow();
                let d = device as usize;
                for key in to_free {
                    if let Some(alloc) = inner.presence.write(d).finish_exit(*key) {
                        inner.devices[d].mem.borrow_mut().dealloc(alloc);
                    }
                }
                !to_free.is_empty()
            };
            if freed {
                retry_mem_waiters(sim, inner_rc, device);
            }
        }
        task_failed(sim, inner_rc, task, err);
        return 0;
    }
    if integrity.checks() && staged.borrow().iter().any(|(_, _, _, crc)| crc.is_some()) {
        // A fully clean checked drain resets the mismatch
        // streak: the breaker counts *consecutive* offences.
        if let Some(ctx) = &inner_rc.borrow().fault {
            ctx.record_integrity_ok(device);
        }
    }
    let committed = match gate {
        None => true,
        Some((g, copy)) => g.try_commit(sim.now(), *copy),
    };
    let mut drained = 0usize;
    if committed {
        for (store, sec, data, _) in staged.borrow_mut().drain(..) {
            store.borrow_mut()[sec.range()].copy_from_slice(&data);
            drained += 1;
        }
    } else if gate.as_ref().is_some_and(|(g, _)| g.duplicates_forced()) {
        // Canary path: the losing copy commits anyway, with its
        // first staged element perturbed so the double commit is
        // value-visible to a differential harness.
        let mut perturb = true;
        for (store, sec, mut data, _) in staged.borrow_mut().drain(..) {
            if perturb && !data.is_empty() {
                data[0] += 1.0;
                perturb = false;
            }
            store.borrow_mut()[sec.range()].copy_from_slice(&data);
            drained += 1;
        }
        if let Some((g, _)) = gate {
            g.count_forced_commit();
        }
    } else {
        staged.borrow_mut().clear();
    }
    if let Some((g, _)) = gate {
        if let Some(ix) = g.log_idx() {
            let mut inner = inner_rc.borrow_mut();
            if let Some(rec) = inner.rescue_log.get_mut(ix) {
                rec.winner = g.winner();
                rec.commits = g.commits();
            }
        }
    }
    let freed = {
        let inner = inner_rc.borrow();
        let d = device as usize;
        for key in to_free {
            if let Some(alloc) = inner.presence.write(d).finish_exit(*key) {
                inner.devices[d].mem.borrow_mut().dealloc(alloc);
            }
        }
        !to_free.is_empty()
    };
    if freed {
        retry_mem_waiters(sim, inner_rc, device);
    }
    complete_task(sim, inner_rc, task);
    drained
}

/// [`run_transfers`] with peer routing: `peer_routes` (when non-empty)
/// is index-aligned with `in_copies`; a `Some(src)` entry pulls that
/// copy device-to-device from `src` instead of over the host bus.
///
/// `integrity` is the `spread_integrity(…)` policy: under `verify` or
/// `heal`, every staged D2H snapshot and every peer payload carries a
/// source-side CRC32C that is re-checked at the trust boundary (the
/// staged-commit drain here, the peer receive in
/// [`enqueue_peer_copy`]). A mismatch fails the task with
/// [`RtError::IntegrityViolation`] — under `heal` the construct's
/// registered integrity recoverer then re-executes the piece from the
/// unharmed host image; repeat offenders are quarantined through the
/// circuit breaker.
///
/// `gate` is the speculative-execution hook: `Some((gate, copy))` makes
/// the staged D2H drain conditional on winning the gate's
/// first-commit-wins arbitration as copy index `copy`. A losing copy
/// discards its staged snapshot but still runs presence cleanup and
/// completes its task — only host memory is arbitrated. A copy whose
/// digests fail is disqualified before arbitration, so a clean racing
/// sibling can still win.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_transfers_ex(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    task: TaskId,
    device: u32,
    in_copies: Vec<CopyPlanItem>,
    peer_routes: Vec<Option<u32>>,
    out_copies: Vec<CopyPlanItem>,
    to_free: Vec<EntryKey>,
    integrity: IntegrityMode,
    gate: Option<(crate::commit::CommitGate, u32)>,
) {
    let total = in_copies.len() + out_copies.len();
    let staged: Rc<RefCell<Vec<StagedWrite>>> = Rc::new(RefCell::new(Vec::new()));
    if !out_copies.is_empty() {
        // Expose the staging buffer to the at-rest corruption surface
        // (MemoryScribble) for as long as it is live.
        let mut inner = inner_rc.borrow_mut();
        inner.staged_registry.retain(|(_, w)| w.strong_count() > 0);
        inner.staged_registry.push((device, Rc::downgrade(&staged)));
    }
    let failed: Rc<RefCell<Option<RtError>>> = Rc::new(RefCell::new(None));
    let finish = {
        let inner_rc = Rc::clone(inner_rc);
        let staged = Rc::clone(&staged);
        let failed = Rc::clone(&failed);
        move |sim: &mut Simulator| {
            staged_commit_finish(
                sim, &inner_rc, task, device, &staged, &failed, &to_free, integrity, &gate,
            );
        }
    };
    if total == 0 {
        finish(sim);
        return;
    }
    let remaining = Rc::new(std::cell::Cell::new(total));
    let finish: FinishSlot = Rc::new(RefCell::new(Some(
        Box::new(finish) as Box<dyn FnOnce(&mut Simulator)>
    )));
    let dev = inner_rc.borrow().devices[device as usize].clone();
    let routes = if peer_routes.is_empty() {
        vec![None; in_copies.len()]
    } else {
        debug_assert_eq!(peer_routes.len(), in_copies.len());
        peer_routes
    };
    let items = in_copies
        .into_iter()
        .zip(routes)
        .map(|(c, r)| (c, Direction::In, r))
        .chain(out_copies.into_iter().map(|c| (c, Direction::Out, None)));
    for (c, dir, route) in items {
        let remaining = Rc::clone(&remaining);
        let finish = Rc::clone(&finish);
        let failed = Rc::clone(&failed);
        if let Some(src) = route {
            enqueue_peer_copy(
                sim, inner_rc, &dev, device, src, c, integrity, remaining, finish, failed,
            );
            continue;
        }
        let host_store = inner_rc.borrow().host.storage(c.section.array);
        let elem_bytes = 8u64;
        let mem = dev.mem.clone();
        let (sec, alloc, off) = (c.section, c.alloc, c.offset);
        let effect: Box<dyn FnOnce()> = match dir {
            Direction::In => Box::new(move || {
                let host = host_store.borrow();
                let mut mem = mem.borrow_mut();
                let buf = mem.buffer_mut(alloc);
                buf[off..off + sec.len].copy_from_slice(&host[sec.range()]);
            }),
            _ => {
                let staged = Rc::clone(&staged);
                Box::new(move || {
                    let mem = mem.borrow();
                    let buf = mem.buffer(alloc);
                    let data = buf[off..off + sec.len].to_vec();
                    // Source-side digest: over the bytes the DMA engine
                    // actually read, before the payload can rot.
                    let crc = integrity
                        .checks()
                        .then(|| spread_devices::digest_f64(&data));
                    staged.borrow_mut().push((host_store, sec, data, crc));
                })
            }
        };
        let what = c.label.clone();
        let engine = match dir {
            Direction::In => dev.dma_in.clone(),
            _ => dev.dma_out.clone(),
        };
        engine.enqueue(
            sim,
            DmaOp {
                bytes: c.section.len as u64 * elem_bytes,
                label: c.label,
                effect: Some(effect),
                on_complete: match dir {
                    Direction::In => {
                        let remaining = Rc::clone(&remaining);
                        let finish = Rc::clone(&finish);
                        Box::new(move |sim| finish_one(sim, &remaining, &finish))
                    }
                    _ => {
                        // In-flight silent corruption: a SilentFlip
                        // token flips one bit in the staged payload
                        // *after* the source digest was taken, raising
                        // no fault. Applied regardless of the integrity
                        // mode — under `off` the rot flows through to
                        // host memory exactly as it would on a real
                        // machine without end-to-end checksums.
                        let remaining = Rc::clone(&remaining);
                        let finish = Rc::clone(&finish);
                        let staged = Rc::clone(&staged);
                        let weak = Rc::downgrade(inner_rc);
                        Box::new(move |sim| {
                            let flip = weak.upgrade().is_some_and(|rc| {
                                rc.borrow()
                                    .fault
                                    .as_ref()
                                    .is_some_and(|ctx| ctx.take_flip(device, sim.now()))
                            });
                            if flip {
                                let mut st = staged.borrow_mut();
                                if let Some((_, _, data, _)) =
                                    st.iter_mut().find(|(_, s, _, _)| *s == sec)
                                {
                                    flip_one_bit(data);
                                }
                            }
                            finish_one(sim, &remaining, &finish)
                        })
                    }
                },
                on_fault: Some(transfer_fault(what, failed, remaining, finish)),
                extra_caps: Vec::new(),
                streamed: false,
            },
        );
    }
}

/// Enqueue one device-to-device pull on the destination's peer engine.
///
/// The effect re-verifies eligibility at copy start (the engine's FIFO
/// may reach the op long after it was planned): if the source died,
/// lost its mapping, or its bytes diverged from the host image, the op
/// copies nothing and flags itself *diverted*; completion then replays
/// the section from the host over the ordinary H2D engine, inheriting
/// this op's slot in the completion set. Either way the destination
/// ends bit-identical to the host path.
///
/// This is trust boundary 2 of `spread_integrity`: the effect digests
/// the payload at its source, and completion (the receive instant)
/// re-digests the destination bytes. A mismatch — a `SilentFlip` token
/// consumed on this pull — fails the task under `verify`, or under
/// `heal` discards the tainted bytes and re-fetches the section from
/// the unharmed host image over the same fallback path a divert uses.
#[allow(clippy::too_many_arguments)]
fn enqueue_peer_copy(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    dev: &DeviceHandle,
    device: u32,
    src: u32,
    c: CopyPlanItem,
    integrity: IntegrityMode,
    remaining: Rc<std::cell::Cell<usize>>,
    finish: FinishSlot,
    failed: Rc<RefCell<Option<RtError>>>,
) {
    let (host_store, src_dev) = {
        let inner = inner_rc.borrow();
        (
            inner.host.storage(c.section.array),
            inner.devices[src as usize].clone(),
        )
    };
    let (sec, alloc, off) = (c.section, c.alloc, c.offset);
    let bytes = sec.len as u64 * 8;
    let idx = {
        let mut inner = inner_rc.borrow_mut();
        inner.peer_log.push(PeerCopyRecord {
            src,
            dst: device,
            section: sec,
            bytes,
            diverted: false,
        });
        inner.peer_log.len() - 1
    };
    let diverted = Rc::new(std::cell::Cell::new(false));
    // Source-side digest of the payload, set by the effect when the
    // pull goes ahead under verify/heal; the receive re-checks it.
    let src_crc: Rc<std::cell::Cell<Option<u32>>> = Rc::new(std::cell::Cell::new(None));
    let label = format!("p2p[{src}->{device}] {}", c.label);
    let what = label.clone();
    let effect: Box<dyn FnOnce()> = {
        let diverted = Rc::clone(&diverted);
        let src_crc = Rc::clone(&src_crc);
        let weak = Rc::downgrade(inner_rc);
        let host_store = host_store.clone();
        let mem = dev.mem.clone();
        Box::new(move || {
            let Some(rc) = weak.upgrade() else { return };
            let data: Option<Vec<f64>> = {
                let inner = rc.borrow();
                if inner.fault.as_ref().is_some_and(|ctx| ctx.is_lost(src)) {
                    None
                } else {
                    inner
                        .presence
                        .read(src as usize)
                        .lookup_containing(&sec)
                        .and_then(|(_, entry)| {
                            let off_s = sec.start - entry.section.start;
                            let smem = inner.devices[src as usize].mem.borrow();
                            let sbuf = &smem.buffer(entry.alloc)[off_s..off_s + sec.len];
                            let host = host_store.borrow();
                            sbuf.iter()
                                .zip(&host[sec.range()])
                                .all(|(a, b)| a.to_bits() == b.to_bits())
                                .then(|| sbuf.to_vec())
                        })
                }
            };
            match data {
                None => {
                    diverted.set(true);
                    rc.borrow_mut().peer_log[idx].diverted = true;
                }
                Some(data) => {
                    if integrity.checks() {
                        src_crc.set(Some(spread_devices::digest_f64(&data)));
                    }
                    let mut m = mem.borrow_mut();
                    let buf = m.buffer_mut(alloc);
                    buf[off..off + sec.len].copy_from_slice(&data);
                }
            }
        })
    };
    let on_complete: Box<dyn FnOnce(&mut Simulator)> = {
        let diverted = Rc::clone(&diverted);
        let src_crc = Rc::clone(&src_crc);
        let remaining = Rc::clone(&remaining);
        let finish = Rc::clone(&finish);
        let failed = Rc::clone(&failed);
        let mem = dev.mem.clone();
        let dma_in = dev.dma_in.clone();
        let weak = Rc::downgrade(inner_rc);
        let fb_label = format!("{} (host fallback)", c.label);
        Box::new(move |sim| {
            let mut refetch = diverted.get();
            if !refetch {
                if let Some(rc) = weak.upgrade() {
                    // In-flight silent corruption: a SilentFlip token
                    // consumed on this pull flips one bit in the
                    // received payload, raising no fault (mode-blind —
                    // under `off` the rot stays).
                    let flip = rc
                        .borrow()
                        .fault
                        .as_ref()
                        .is_some_and(|ctx| ctx.take_flip(device, sim.now()));
                    if flip {
                        let mut m = mem.borrow_mut();
                        flip_one_bit(&mut m.buffer_mut(alloc)[off..off + sec.len]);
                    }
                    // Trust boundary 2 — peer receive: re-digest the
                    // destination bytes against the source digest.
                    if let Some(want) = src_crc.get() {
                        let got = {
                            let m = mem.borrow();
                            spread_devices::digest_f64(&m.buffer(alloc)[off..off + sec.len])
                        };
                        if got == want {
                            if let Some(ctx) = &rc.borrow().fault {
                                ctx.record_integrity_ok(device);
                            }
                        } else {
                            let now = sim.now();
                            let quarantined = integrity == IntegrityMode::Heal
                                && rc
                                    .borrow()
                                    .fault
                                    .as_ref()
                                    .is_some_and(|ctx| ctx.record_integrity_mismatch(device));
                            let action = match (integrity, quarantined) {
                                (_, true) => IntegrityAction::Quarantined,
                                (IntegrityMode::Heal, _) => IntegrityAction::Healed,
                                _ => IntegrityAction::Failed,
                            };
                            {
                                let mut inner = rc.borrow_mut();
                                record_integrity_inner(
                                    now,
                                    &mut inner,
                                    IntegrityEvent {
                                        device,
                                        section: sec,
                                        at: now,
                                        boundary: IntegrityBoundary::Peer,
                                        action,
                                    },
                                );
                                if action == IntegrityAction::Healed {
                                    record_degradation_inner(
                                        now,
                                        &mut inner,
                                        DegradationEvent {
                                            kind: DegradationKind::CorruptionHealed,
                                            device: Some(device),
                                            start: sec.start,
                                            len: sec.len,
                                            bytes,
                                        },
                                    );
                                    // The heal *is* a divert: the tainted
                                    // bytes are discarded and the section
                                    // replayed from the host image.
                                    inner.peer_log[idx].diverted = true;
                                }
                            }
                            match action {
                                IntegrityAction::Healed => refetch = true,
                                _ => {
                                    if quarantined {
                                        let ctx = rc.borrow().fault.clone();
                                        if let Some(ctx) = ctx {
                                            ctx.mark_lost(sim, device);
                                        }
                                    }
                                    failed.borrow_mut().get_or_insert(
                                        RtError::IntegrityViolation {
                                            device,
                                            section: sec,
                                        },
                                    );
                                    finish_one(sim, &remaining, &finish);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
            if !refetch {
                finish_one(sim, &remaining, &finish);
                return;
            }
            let what = fb_label.clone();
            let rem2 = Rc::clone(&remaining);
            let fin2 = Rc::clone(&finish);
            dma_in.enqueue(
                sim,
                DmaOp {
                    bytes,
                    label: fb_label,
                    effect: Some(Box::new(move || {
                        let host = host_store.borrow();
                        let mut m = mem.borrow_mut();
                        let buf = m.buffer_mut(alloc);
                        buf[off..off + sec.len].copy_from_slice(&host[sec.range()]);
                    })),
                    on_complete: Box::new(move |sim| finish_one(sim, &rem2, &fin2)),
                    on_fault: Some(transfer_fault(what, failed, remaining, finish)),
                    extra_caps: Vec::new(),
                    streamed: false,
                },
            );
        })
    };
    dev.dma_peer.enqueue(
        sim,
        DmaOp {
            bytes,
            label,
            effect: Some(effect),
            on_complete,
            on_fault: Some(transfer_fault(what, failed, remaining, finish)),
            extra_caps: dev.peer_route_caps(&src_dev),
            streamed: false,
        },
    );
}

/// Resolve a kernel's arguments and enqueue it on the device's compute
/// engine; completes the task when the modeled execution finishes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_kernel(
    sim: &mut Simulator,
    inner_rc: &Rc<RefCell<Inner>>,
    task: TaskId,
    device: u32,
    range: Range<usize>,
    spec: &KernelSpec,
    teams: u32,
    threads_per_team: u32,
) -> Result<(), RtError> {
    let (dev, pool, resolved) = {
        let inner = inner_rc.borrow();
        inner.check_device(device)?;
        let d = device as usize;
        let mut resolved = Vec::with_capacity(spec.args.len());
        let table = inner.presence.read(d);
        for arg in &spec.args {
            let rng = (arg.section_of)(range.clone());
            let sec = Section::from_range(arg.array.id(), rng);
            let Some((_, entry)) = table.lookup_containing(&sec) else {
                return Err(RtError::KernelSectionMissing {
                    device,
                    kernel: spec.name.clone(),
                    requested: sec,
                });
            };
            resolved.push(ResolvedArg {
                alloc: entry.alloc,
                entry_start: entry.section.start,
                entry_len: entry.section.len,
                access: arg.access,
                section_of: std::sync::Arc::clone(&arg.section_of),
            });
        }
        drop(table);
        (inner.devices[d].clone(), Rc::clone(&inner.pool), resolved)
    };
    let mem = dev.mem.clone();
    let body = std::sync::Arc::clone(&spec.body);
    let schedule = spec.schedule;
    let exec_range = range.clone();
    let exec: Box<dyn FnOnce()> = Box::new(move || {
        let mut mem = mem.borrow_mut();
        kernel::execute_on_device(&mut mem, &pool, schedule, exec_range, &body, &resolved);
    });
    let inner_rc2 = Rc::clone(inner_rc);
    let inner_rc3 = Rc::clone(inner_rc);
    let kname = spec.name.clone();
    dev.compute.enqueue(
        sim,
        spread_devices::compute::KernelOp {
            tag: task.0,
            name: spec.name.clone(),
            iters: range.len() as u64,
            work_per_iter_ns: spec.work_per_iter_ns,
            teams,
            threads_per_team,
            body: Some(exec),
            on_complete: Box::new(move |sim| complete_task(sim, &inner_rc2, task)),
            on_fault: Some(Box::new(move |sim, ev| {
                task_failed(
                    sim,
                    &inner_rc3,
                    task,
                    RtError::DeviceLost {
                        device: ev.device,
                        what: format!("kernel `{kname}`"),
                    },
                );
            })),
            streamed: false,
        },
    );
    Ok(())
}

/// The offloading runtime.
pub struct Runtime {
    sim: Simulator,
    inner: Rc<RefCell<Inner>>,
}

impl Runtime {
    /// Build a runtime over the configured machine.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let trace = if cfg.trace {
            TraceRecorder::new()
        } else {
            TraceRecorder::disabled()
        };
        let mut sim = Simulator::with_tie_break(trace.clone(), cfg.tie_break);
        if let Err(e) = cfg.topology.validate() {
            panic!("invalid topology: {e}");
        }
        let node = Node::new(&cfg.topology, &trace);
        let n = node.n_devices();
        if let Some(plan) = &cfg.fault_plan {
            // Malformed plans are construction bugs, not runtime faults:
            // reject them here like an invalid topology.
            if let Err(e) = plan.validate(n) {
                panic!("invalid fault plan: {e}");
            }
        }
        let flownet = node.flownet().clone();
        let fault = cfg.fault_plan.as_ref().map(|plan| {
            let ctx = FaultCtx::new(plan, n, cfg.retry, cfg.breaker, trace.clone());
            node.attach_fault_ctx(&ctx);
            ctx
        });
        // Determinism guard: every engine must consult the ONE run-scoped
        // context — backoff jitter and fault sampling draw from its
        // single seeded PRNG, never from a second stream.
        #[cfg(debug_assertions)]
        if let Some(ctx) = &fault {
            for d in node.devices() {
                debug_assert_eq!(d.dma_in.fault_ctx_ptr(), Some(ctx.ptr_id()));
                debug_assert_eq!(d.dma_out.fault_ctx_ptr(), Some(ctx.ptr_id()));
                debug_assert_eq!(d.dma_peer.fault_ctx_ptr(), Some(ctx.ptr_id()));
                debug_assert_eq!(d.compute.fault_ctx_ptr(), Some(ctx.ptr_id()));
            }
        }
        let inner = Inner {
            host: HostRegistry::new(),
            devices: node.devices().to_vec(),
            presence: ShardedPresence::new(n),
            graph: TaskGraph::new(),
            actions: std::collections::HashMap::new(),
            current_parent: None,
            current_group: None,
            error: None,
            alloc_backpressure: cfg.alloc_backpressure,
            mem_waiters: Vec::new(),
            pool: Rc::new(TeamPool::new(cfg.team_threads)),
            flownet,
            trace,
            default_num_teams: cfg.default_num_teams,
            default_threads_per_team: cfg.default_threads_per_team,
            fault: fault.clone(),
            recoverers: std::collections::HashMap::new(),
            watchdog: cfg.watchdog,
            injector_live: vec![0; n],
            degradations: Vec::new(),
            retry: cfg.retry,
            spill_staging_bytes: cfg.spill_staging_bytes,
            profiles: crate::profile::ProfileStore::new(cfg.adaptive_damping),
            peer_log: Vec::new(),
            rescue_log: Vec::new(),
            integrity_log: Vec::new(),
            staged_registry: Vec::new(),
            overlap_log: Vec::new(),
            plan_cache: crate::plan_cache::PlanCache::new(cfg.plan_cache),
        };
        // A fresh runtime starts its peak-memory statistics from zero:
        // `device_mem_peak` must describe *this* instance, even if the
        // underlying pools were ever handed over pre-warmed.
        for d in &inner.devices {
            d.mem.borrow_mut().pool_mut().reset_high_watermark();
        }
        let inner = Rc::new(RefCell::new(inner));
        if let (Some(ctx), Some(plan)) = (&fault, cfg.fault_plan.as_ref()) {
            // The loss hook closes over a Weak handle: the context lives
            // inside `inner` (via the engines), so a strong Rc here would
            // leak the whole runtime — device buffers included — every
            // time the fuzzer builds one.
            let weak = Rc::downgrade(&inner);
            ctx.on_device_lost(Rc::new(move |sim, d| {
                if let Some(rc) = weak.upgrade() {
                    device_lost_cleanup(sim, &rc, d);
                }
            }));
            for (d, at) in plan.losses() {
                if (d as usize) < n {
                    let ctx = ctx.clone();
                    sim.schedule_at(at, Box::new(move |sim| ctx.mark_lost(sim, d)));
                }
            }
            for (device, at) in plan.scribbles() {
                if (device as usize) >= n {
                    continue;
                }
                let weak = Rc::downgrade(&inner);
                sim.schedule_at(
                    at,
                    Box::new(move |_| {
                        if let Some(rc) = weak.upgrade() {
                            scribble_staged(&rc, device);
                        }
                    }),
                );
            }
            for f in &plan.faults {
                let (device, at, bytes, release) = match *f {
                    PlannedFault::OomSpike {
                        device,
                        at,
                        bytes,
                        duration,
                    } => (device, at, bytes, Some(at + duration)),
                    PlannedFault::OomSustained { device, at, bytes } => (device, at, bytes, None),
                    _ => continue,
                };
                if device as usize >= n {
                    continue;
                }
                let mem = inner.borrow().devices[device as usize].mem.clone();
                let held: Rc<std::cell::Cell<Option<AllocId>>> =
                    Rc::new(std::cell::Cell::new(None));
                let grab = {
                    let (mem, held) = (mem.clone(), Rc::clone(&held));
                    let weak = Rc::downgrade(&inner);
                    move || {
                        let elems = (bytes as usize).div_ceil(8).max(1);
                        let got = mem.borrow_mut().alloc_elems(elems).ok();
                        if got.is_some() {
                            if let Some(rc) = weak.upgrade() {
                                rc.borrow_mut().injector_live[device as usize] += elems as u64 * 8;
                            }
                        }
                        held.set(got);
                    }
                };
                if at == SimTime::ZERO {
                    // Time-zero pressure exists *before* the program
                    // starts: grab the block now, while the pool is
                    // empty, so it sits at the base of the address
                    // space under every same-instant tie-break. Racing
                    // it against the first construct's enter would let
                    // the block land mid-pool and fragment the free
                    // hole, turning advisory headroom into a lie.
                    grab();
                } else {
                    sim.schedule_at(at, Box::new(move |_| grab()));
                }
                let Some(until) = release else {
                    // Sustained pressure: the bytes never come back.
                    continue;
                };
                let weak = Rc::downgrade(&inner);
                sim.schedule_at(
                    until,
                    Box::new(move |sim| {
                        if let Some(id) = held.take() {
                            let elems = (bytes as usize).div_ceil(8).max(1);
                            mem.borrow_mut().dealloc(id);
                            if let Some(rc) = weak.upgrade() {
                                {
                                    let mut inner = rc.borrow_mut();
                                    let live = &mut inner.injector_live[device as usize];
                                    *live = live.saturating_sub(elems as u64 * 8);
                                }
                                retry_mem_waiters(sim, &rc, device);
                            }
                        }
                    }),
                );
            }
        }
        Runtime { sim, inner }
    }

    /// Open a scope for issuing directives.
    pub fn scope(&mut self) -> Scope<'_> {
        Scope {
            sim: &mut self.sim,
            inner: &self.inner,
        }
    }

    /// Run a program against this runtime and drain everything it left
    /// pending. The usual entry point:
    ///
    /// ```
    /// use spread_rt::prelude::*;
    /// use spread_rt::kernel::KernelArg;
    /// use spread_devices::Topology;
    ///
    /// let mut rt = Runtime::new(RuntimeConfig::new(Topology::ctepower(1)));
    /// let a = rt.host_array("A", 8);
    /// rt.fill_host(a, |i| i as f64);
    /// rt.run(|s| {
    ///     Target::device(0)
    ///         .map(tofrom(a, 0..8))
    ///         .parallel_for(s, 0..8, KernelSpec::new("dbl", 1.0, |chunk, v| {
    ///             for i in chunk {
    ///                 let x = v.get(0, i);
    ///                 v.set(0, i, 2.0 * x);
    ///             }
    ///         })
    ///         .arg(KernelArg::read_write(a, |r| r)))?;
    ///     Ok(())
    /// })
    /// .unwrap();
    /// assert_eq!(rt.snapshot_host(a)[3], 6.0);
    /// ```
    pub fn run<R>(
        &mut self,
        f: impl FnOnce(&mut Scope<'_>) -> Result<R, RtError>,
    ) -> Result<R, RtError> {
        let mut scope = self.scope();
        let r = f(&mut scope)?;
        scope.drain_all()?;
        Ok(r)
    }

    /// Register a host array.
    pub fn host_array(&mut self, name: impl Into<String>, len: usize) -> HostArray {
        self.inner.borrow_mut().host.register(name, len)
    }

    /// Fill a host array by index.
    pub fn fill_host(&self, h: HostArray, f: impl Fn(usize) -> f64) {
        self.inner.borrow().host.fill_with(h, f);
    }

    /// Copy out a host array's contents.
    pub fn snapshot_host(&self, h: HostArray) -> Vec<f64> {
        self.inner.borrow().host.snapshot(h)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Virtual time elapsed since construction — the "execution time" the
    /// paper's tables report.
    pub fn elapsed(&self) -> SimDuration {
        self.sim.now() - SimTime::ZERO
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.inner.borrow().devices.len()
    }

    /// Snapshot the trace.
    pub fn timeline(&self) -> Timeline {
        Timeline::from_recorder(&self.inner.borrow().trace)
    }

    /// The recorder itself.
    pub fn trace(&self) -> TraceRecorder {
        self.inner.borrow().trace.clone()
    }

    /// Footprint races observed so far.
    pub fn races(&self) -> Vec<RaceReport> {
        self.inner.borrow().graph.races().to_vec()
    }

    /// Bytes currently allocated on a device.
    pub fn device_mem_used(&self, device: u32) -> u64 {
        self.inner.borrow().devices[device as usize]
            .mem
            .borrow()
            .pool()
            .used()
    }

    /// Peak bytes allocated on a device.
    pub fn device_mem_peak(&self, device: u32) -> u64 {
        self.inner.borrow().devices[device as usize]
            .mem
            .borrow()
            .pool()
            .high_watermark()
    }

    /// The degradation decisions taken so far, in program order.
    pub fn degradations(&self) -> Vec<DegradationEvent> {
        self.inner.borrow().degradations.clone()
    }

    /// Every `spread_schedule(auto)` launch recorded so far, in
    /// completion order: the per-construct/per-device metrics layer.
    /// Empty if no construct used `auto`.
    pub fn profiles(&self) -> Vec<spread_trace::ConstructProfile> {
        self.inner.borrow().profiles.history().to_vec()
    }

    /// The current adaptive weights for a construct key (normalized to
    /// sum to the device count), or `None` before its first completed
    /// launch.
    pub fn adaptive_weights(&self, key: &str) -> Option<Vec<f64>> {
        self.inner
            .borrow()
            .profiles
            .current(key)
            .map(<[f64]>::to_vec)
    }

    /// Largest contiguous free block on a device (fragmentation probe).
    pub fn device_mem_largest_free(&self, device: u32) -> u64 {
        self.inner.borrow().devices[device as usize]
            .mem
            .borrow()
            .pool()
            .largest_free_block()
    }

    /// The interconnect model (capacity utilization queries for
    /// instrumentation and ablations).
    pub fn flownet(&self) -> SharedFlowNet {
        self.inner.borrow().flownet.clone()
    }

    /// The sections currently mapped on a device (diagnostics): section,
    /// reference count, dying flag.
    pub fn mapped_sections(&self, device: u32) -> Vec<(Section, u32, bool)> {
        self.inner
            .borrow()
            .presence
            .read(device as usize)
            .iter()
            .map(|(_, e)| (e.section, e.refcount, e.dying))
            .collect()
    }

    /// A canonical snapshot of every device's mapping table: per device,
    /// the live `(section, refcount)` pairs sorted by `(array, start)`.
    /// Dying entries are excluded — they are already released from the
    /// program's point of view. `spread-check` compares this against the
    /// oracle's presence model after every program.
    pub fn mapping_snapshot(&self) -> Vec<Vec<(Section, u32)>> {
        let inner = self.inner.borrow();
        (0..inner.presence.num_shards())
            .map(|d| {
                let mut v: Vec<(Section, u32)> = inner
                    .presence
                    .read(d)
                    .iter()
                    .filter(|(_, e)| !e.dying)
                    .map(|(_, e)| (e.section, e.refcount))
                    .collect();
                v.sort_by_key(|(s, _)| (s.array.0, s.start, s.len));
                v
            })
            .collect()
    }

    /// Every device-to-device copy planned so far, in plan order.
    /// `spread-check --peer` compares this against its closed-form
    /// prediction of which sections *must* go peer; diverted entries
    /// were replayed over the host path at copy time.
    pub fn peer_copies(&self) -> Vec<PeerCopyRecord> {
        self.inner.borrow().peer_log.clone()
    }

    /// Every straggler rescue launched so far, in launch order. In a
    /// completed run each record has `commits == 1` and a recorded
    /// winner — the first-commit-wins gate guarantees exactly one of
    /// the racing exits wrote host memory.
    pub fn rescues(&self) -> Vec<RescueRecord> {
        self.inner.borrow().rescue_log.clone()
    }

    /// Every digest mismatch caught at a trust boundary so far, in
    /// detection order. Empty under `spread_integrity(off)` — with no
    /// digests there is nothing to catch, which is the point of the
    /// conformance canary that runs a flip under `off` and watches the
    /// corruption reach host memory.
    pub fn integrity_events(&self) -> Vec<IntegrityEvent> {
        self.inner.borrow().integrity_log.clone()
    }

    /// Every pipelined (`spread_overlap`) construct completed so far,
    /// in completion order. `spread-check --overlap` asserts the
    /// whole-piece commit contract on each record (`staged ==
    /// committed` on every clean winning exit) and that pipelining
    /// really happened (`depth >= 2` with split descriptors).
    pub fn overlap_records(&self) -> Vec<crate::overlap::OverlapRecord> {
        self.inner.borrow().overlap_log.clone()
    }

    /// Devices permanently lost so far — by a planned loss, an
    /// escalated transient streak, or an integrity-mismatch quarantine.
    /// Empty without a fault plan.
    pub fn lost_devices(&self) -> Vec<u32> {
        self.inner
            .borrow()
            .fault
            .as_ref()
            .map(|c| c.lost_devices())
            .unwrap_or_default()
    }

    /// Launch-plan cache statistics: hits, misses, invalidations and
    /// the planning-time accounting the hot-path benchmark reports.
    pub fn plan_stats(&self) -> crate::plan_cache::PlanCacheStats {
        self.inner.borrow().plan_cache.stats()
    }

    /// The current topology epoch — bumped by device loss (including
    /// quarantine) and by every adaptive-state update, invalidating all
    /// cached launch plans.
    pub fn topology_epoch(&self) -> u64 {
        self.inner.borrow().plan_cache.epoch()
    }
}

/// The directive-issuing handle. Obtained from [`Runtime::scope`] or
/// received by host-task bodies.
pub struct Scope<'a> {
    pub(crate) sim: &'a mut Simulator,
    pub(crate) inner: &'a Rc<RefCell<Inner>>,
}

impl Scope<'_> {
    /// Register a host array.
    pub fn host_array(&mut self, name: impl Into<String>, len: usize) -> HostArray {
        self.inner.borrow_mut().host.register(name, len)
    }

    /// Fill a host array by index.
    pub fn fill_host(&mut self, h: HostArray, f: impl Fn(usize) -> f64) {
        self.inner.borrow().host.fill_with(h, f);
    }

    /// Copy out a host array.
    pub fn snapshot_host(&self, h: HostArray) -> Vec<f64> {
        self.inner.borrow().host.snapshot(h)
    }

    /// Run `f` with an immutable view of a host array.
    pub fn with_host<R>(&self, h: HostArray, f: impl FnOnce(&[f64]) -> R) -> R {
        self.inner.borrow().host.with(h, f)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.inner.borrow().devices.len()
    }

    /// Submit a task in the current context. Used by the directive
    /// builders; `spec.parent`/`spec.group` are overridden from context.
    pub(crate) fn submit(&mut self, mut spec: TaskSpec, action: Action) -> TaskId {
        let (id, ready) = {
            let mut inner = self.inner.borrow_mut();
            spec.parent = inner.current_parent;
            if spec.group.is_none() {
                spec.group = inner.current_group;
            }
            let (id, ready) = inner.graph.create(spec);
            inner.actions.insert(id, action);
            (id, ready)
        };
        if ready {
            schedule_start(self.sim, self.inner, id);
        }
        id
    }

    /// Drain until `cond` holds on the runtime state. Fails with
    /// [`RtError::Deadlock`] if the simulator goes idle first, or with
    /// [`RtError::Timeout`] if a configured watchdog expires in virtual
    /// time before the condition holds.
    ///
    /// The watchdog is *progress-aware*: its window measures time since
    /// the last task completion, not since the drain began. A run that
    /// is slow but still finishing tasks (a straggling device, a long
    /// retry ladder) never trips it; a wedged run — nothing completing
    /// for a full window — still does.
    pub(crate) fn drain_until(
        &mut self,
        cond: impl Fn(&Inner) -> bool,
        what: &str,
    ) -> Result<(), RtError> {
        let mut window_start = self.sim.now();
        let (watchdog, mut last_finished) = {
            let inner = self.inner.borrow();
            (inner.watchdog, inner.graph.finished_total())
        };
        loop {
            {
                let inner = self.inner.borrow();
                if let Some(e) = &inner.error {
                    return Err(e.clone());
                }
                if cond(&inner) {
                    // Quiescence reached: validate every device's live
                    // mapping state against its `spread-semantics`
                    // mirror (no-op in release builds).
                    inner.presence.debug_validate_all();
                    return Ok(());
                }
                let finished = inner.graph.finished_total();
                if finished != last_finished {
                    last_finished = finished;
                    window_start = self.sim.now();
                }
            }
            if let Some(limit) = watchdog {
                let waited = self.sim.now() - window_start;
                if waited > limit {
                    let err = RtError::Timeout {
                        waiting_for: what.to_string(),
                        waited,
                    };
                    self.inner.borrow_mut().error.get_or_insert(err.clone());
                    return Err(err);
                }
            }
            if !self.sim.step() {
                let err = RtError::Deadlock {
                    waiting_for: what.to_string(),
                };
                self.inner.borrow_mut().error.get_or_insert(err.clone());
                return Err(err);
            }
        }
    }

    /// Block until a specific task finishes.
    pub fn drain_task(&mut self, id: TaskId) -> Result<(), RtError> {
        self.drain_until(|inner| inner.graph.is_finished(id), "task completion")
    }

    /// Block until every task has finished.
    pub fn drain_all(&mut self) -> Result<(), RtError> {
        self.drain_until(|inner| inner.graph.unfinished() == 0, "all tasks")
    }

    /// `#pragma omp taskgroup { f }` — tasks created by `f` (and their
    /// descendants) complete before this returns.
    pub fn taskgroup<R>(&mut self, f: impl FnOnce(&mut Scope<'_>) -> R) -> Result<R, RtError> {
        let (g, saved) = {
            let mut inner = self.inner.borrow_mut();
            let g = inner.graph.group_create();
            let saved = inner.current_group.replace(g);
            (g, saved)
        };
        let r = f(self);
        self.inner.borrow_mut().current_group = saved;
        self.drain_until(|inner| inner.graph.group_is_empty(g), "taskgroup")?;
        Ok(r)
    }

    /// `#pragma omp taskwait` — wait for the current context's child
    /// tasks.
    pub fn taskwait(&mut self) -> Result<(), RtError> {
        let parent = self.inner.borrow().current_parent;
        self.drain_until(
            move |inner| inner.graph.unfinished_children(parent) == 0,
            "taskwait",
        )
    }

    /// Create a taskgroup *without* waiting on it — the building block
    /// of asynchronous (continuation-style) pipelines. Populate it with
    /// [`Scope::with_group`]; gate continuations on it with
    /// [`Scope::task_chained`].
    pub fn group_create(&mut self) -> GroupId {
        self.inner.borrow_mut().graph.group_create()
    }

    /// Run `f` with `g` as the current taskgroup: tasks created inside
    /// join `g`. Does **not** wait (unlike [`Scope::taskgroup`]).
    pub fn with_group<R>(&mut self, g: GroupId, f: impl FnOnce(&mut Scope<'_>) -> R) -> R {
        let saved = self.inner.borrow_mut().current_group.replace(g);
        let r = f(self);
        self.inner.borrow_mut().current_group = saved;
        r
    }

    /// A host task that starts only after every task in `preds` has
    /// finished *and* (if given) `gate` is empty — the asynchronous
    /// alternative to blocking on a taskgroup from inside a task.
    pub fn task_chained(
        &mut self,
        label: impl Into<String>,
        preds: Vec<TaskId>,
        gate: Option<GroupId>,
        f: impl FnOnce(&mut Scope<'_>) + 'static,
    ) -> TaskId {
        let mut spec = TaskSpec::new(label.into());
        spec.extra_preds = preds;
        spec.gate_group = gate;
        self.submit(spec, host_task_action(f))
    }

    /// `#pragma omp task` — an asynchronous host task. The body receives
    /// its own [`Scope`] and may issue any directive (including blocking
    /// ones).
    pub fn task(
        &mut self,
        label: impl Into<String>,
        f: impl FnOnce(&mut Scope<'_>) + 'static,
    ) -> TaskId {
        self.task_chained(label, Vec::new(), None, f)
    }

    /// `#pragma omp task depend(…)` — a host task ordered against its
    /// siblings through array-section dependences, like the device
    /// tasks. `ins`/`outs` are the `depend(in: …)`/`depend(out: …)`
    /// items.
    pub fn task_depend(
        &mut self,
        label: impl Into<String>,
        ins: Vec<Section>,
        outs: Vec<Section>,
        f: impl FnOnce(&mut Scope<'_>) + 'static,
    ) -> TaskId {
        let mut spec = TaskSpec::new(label.into());
        spec.wait_on = ins
            .iter()
            .map(|&s| (s, false))
            .chain(outs.iter().map(|&s| (s, true)))
            .collect();
        spec.publish = spec.wait_on.clone();
        spec.fp_reads = ins.into_iter().map(crate::task::FpAccess::host).collect();
        spec.fp_writes = outs.into_iter().map(crate::task::FpAccess::host).collect();
        self.submit(spec, host_task_action(f))
    }

    /// `#pragma omp taskloop num_tasks(n)` — split `range` into `n`
    /// contiguous blocks, one host task each, and (implicit taskgroup)
    /// wait for all of them.
    pub fn taskloop(
        &mut self,
        label: &str,
        range: Range<usize>,
        num_tasks: usize,
        body: impl Fn(&mut Scope<'_>, usize) + 'static,
    ) -> Result<(), RtError> {
        let body = Rc::new(body);
        self.taskgroup(|scope| {
            let n = range.len();
            if n == 0 {
                return;
            }
            let nt = num_tasks.clamp(1, n);
            for t in 0..nt {
                let lo = range.start + t * n / nt;
                let hi = range.start + (t + 1) * n / nt;
                let body = Rc::clone(&body);
                scope.task(format!("{label}[{t}]"), move |s| {
                    for i in lo..hi {
                        body(s, i);
                    }
                });
            }
        })
    }

    /// Footprint races observed so far.
    pub fn races(&self) -> Vec<RaceReport> {
        self.inner.borrow().graph.races().to_vec()
    }

    /// Poison the runtime with an error discovered outside an action
    /// (e.g. by a directive layer running inside a host task, where the
    /// error cannot propagate through a `Result`). The first recorded
    /// error wins; subsequent drains return it.
    pub fn fail(&mut self, err: RtError) {
        self.inner.borrow_mut().error.get_or_insert(err);
    }

    /// Devices permanently lost so far (empty without a fault plan).
    pub fn lost_devices(&self) -> Vec<u32> {
        self.inner
            .borrow()
            .fault
            .as_ref()
            .map(|c| c.lost_devices())
            .unwrap_or_default()
    }

    /// True if `device` is permanently lost.
    pub fn is_device_lost(&self, device: u32) -> bool {
        self.inner
            .borrow()
            .fault
            .as_ref()
            .is_some_and(|c| c.is_lost(device))
    }

    /// The trace recorder (recovery layers record redistribution spans).
    pub fn trace(&self) -> TraceRecorder {
        self.inner.borrow().trace.clone()
    }

    /// Bytes of device memory an admission planner may count on for
    /// `device` *now*: capacity, minus live program allocations, minus
    /// every OOM-pressure window that is still outstanding (active or
    /// forecast). Injector-held bytes inside the pool's `used` figure
    /// are subtracted back out so active windows are not counted twice.
    /// Returns 0 for a lost device.
    pub fn device_headroom(&self, device: u32) -> u64 {
        let now = self.sim.now();
        let inner = self.inner.borrow();
        let d = device as usize;
        if d >= inner.devices.len() {
            return 0;
        }
        if let Some(ctx) = &inner.fault {
            if ctx.is_lost(device) {
                return 0;
            }
        }
        let pool = inner.devices[d].mem.borrow();
        let capacity = pool.pool().capacity();
        let used = pool.pool().used();
        let program_used = used.saturating_sub(inner.injector_live[d]);
        let outstanding = inner
            .fault
            .as_ref()
            .map_or(0, |ctx| ctx.oom_outstanding(device, now));
        capacity
            .saturating_sub(program_used)
            .saturating_sub(outstanding)
    }

    /// The configured spill staging-buffer size.
    pub fn spill_staging_bytes(&self) -> u64 {
        self.inner.borrow().spill_staging_bytes
    }

    /// Record a degradation decision: appended to the runtime's event
    /// log and mirrored as a zero-length marker span on the trace (the
    /// device's compute lane, or the host lane for a spill).
    pub fn record_degradation(&mut self, ev: DegradationEvent) {
        record_degradation_inner(self.sim.now(), &mut self.inner.borrow_mut(), ev);
    }

    /// The degradation decisions taken so far, in program order.
    pub fn degradations(&self) -> Vec<DegradationEvent> {
        self.inner.borrow().degradations.clone()
    }

    /// The weights a `spread_schedule(auto)` construct keyed `key`
    /// should use for its next launch over `k` devices: the adapted
    /// vector when one exists for this key and device count, an equal
    /// split otherwise.
    pub fn adaptive_weights(&self, key: &str, k: usize) -> Vec<f64> {
        self.inner.borrow().profiles.weights(key, k)
    }

    /// The pipeline depth a `spread_overlap(auto)` construct keyed
    /// `key` should use for its next launch: unexplored candidate
    /// depths first, then the learned (EWMA argmin) best depth.
    pub fn adaptive_depth(&self, key: &str) -> u32 {
        self.inner.borrow().profiles.next_depth(key)
    }

    /// Feed one completed `spread_overlap(auto)` launch back into the
    /// per-key depth model: the construct keyed `key` ran with pipeline
    /// `depth` from `t0` to now.
    pub fn record_overlap_depth(&mut self, key: &str, depth: u32, t0: SimTime) {
        let dur = (self.sim.now() - t0).as_nanos() as f64;
        let mut inner = self.inner.borrow_mut();
        inner.profiles.record_depth(key, depth, dur);
        // Adaptive state moved: cached plans may embed the old depth.
        inner.plan_cache.bump_epoch();
    }

    /// Aggregate the trace window `[t0, now)` into a
    /// [`ConstructProfile`](spread_trace::ConstructProfile) for a
    /// completed `spread_schedule(auto)` launch and feed it to the
    /// damped weight update. With tracing disabled the profile is still
    /// recorded (all-zero breakdowns) but the weights stay unchanged —
    /// `auto` degrades to a plain equal `static` split.
    pub fn record_construct_profile(
        &mut self,
        key: &str,
        devices: &[u32],
        weights: &[f64],
        round: usize,
        t0: SimTime,
    ) {
        let t1 = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        let spans = inner.trace.snapshot();
        let device_profiles = spread_trace::profile_window(&spans, devices, t0, t1);
        let launch = inner.profiles.next_launch(key);
        inner.profiles.record(spread_trace::ConstructProfile {
            key: key.to_string(),
            launch,
            start: t0,
            end: t1,
            devices: device_profiles,
            weights: weights.to_vec(),
            round,
        });
        // The weight update may change the next launch's split: cached
        // plans for auto-scheduled constructs must never be served.
        inner.plan_cache.bump_epoch();
    }

    /// Look up a cached launch plan for the construct keyed `key`.
    /// Serves only a plan stored under the same fingerprint in the
    /// current topology epoch; returns `None` (and counts a miss) when
    /// the cache is disabled, empty, stale, or shape-mismatched.
    ///
    /// `started` is the caller's planning-phase start (taken before the
    /// fingerprint was computed); a hit closes the warm planning window
    /// inside the cache's own borrow.
    pub fn plan_cache_lookup(
        &self,
        key: &str,
        fingerprint: u64,
        started: std::time::Instant,
    ) -> Option<Rc<dyn std::any::Any>> {
        self.inner
            .borrow_mut()
            .plan_cache
            .lookup(key, fingerprint, started)
    }

    /// Store a freshly computed launch plan under `key` for the current
    /// topology epoch, closing the cold planning window opened at
    /// `started`. No-op when the cache is disabled.
    pub fn plan_cache_store(
        &self,
        key: &str,
        fingerprint: u64,
        plan: Rc<dyn std::any::Any>,
        started: std::time::Instant,
    ) {
        self.inner
            .borrow_mut()
            .plan_cache
            .store(key, fingerprint, plan, started);
    }

    /// The current topology epoch (see [`plan_cache`](crate::plan_cache)).
    pub fn topology_epoch(&self) -> u64 {
        self.inner.borrow().plan_cache.epoch()
    }

    /// Register `handler` as the recovery handler of every task in
    /// `ids` (the phases of one construct). If any of them fails while
    /// `device` is permanently lost, the handler runs once with a fresh
    /// scope, the faulted task id, and the error; the other registered
    /// tasks are left to the handler (typically
    /// [`Scope::neutralize_task`]). The handler — or a completion chain
    /// it builds — must eventually [`Scope::force_complete`] the
    /// faulted task, or the program deadlocks.
    ///
    /// Failures unrelated to the registered device loss still poison
    /// the runtime: resilience routes around dead hardware, not bugs.
    pub fn on_task_fault(
        &mut self,
        ids: &[TaskId],
        device: u32,
        handler: impl FnOnce(&mut Scope<'_>, TaskId, RtError) + 'static,
    ) {
        let handler: RecoveryHandler = Rc::new(RefCell::new(Some(Box::new(handler))));
        let mut inner = self.inner.borrow_mut();
        for &id in ids {
            inner.recoverers.insert(
                id,
                Recoverer {
                    device,
                    on_oom: false,
                    on_integrity: false,
                    handler: Rc::clone(&handler),
                },
            );
        }
    }

    /// Like [`Scope::on_task_fault`], but the handler additionally
    /// fires if a registered task fails with [`RtError::OutOfMemory`]
    /// — the hook of the memory-pressure ladder: after the pressure
    /// enter path exhausts its retries, the chunk is handed to the
    /// split/spill coordinator instead of poisoning the runtime.
    pub fn on_task_oom(
        &mut self,
        ids: &[TaskId],
        device: u32,
        handler: impl FnOnce(&mut Scope<'_>, TaskId, RtError) + 'static,
    ) {
        let handler: RecoveryHandler = Rc::new(RefCell::new(Some(Box::new(handler))));
        let mut inner = self.inner.borrow_mut();
        for &id in ids {
            inner.recoverers.insert(
                id,
                Recoverer {
                    device,
                    on_oom: true,
                    on_integrity: false,
                    handler: Rc::clone(&handler),
                },
            );
        }
    }

    /// Like [`Scope::on_task_fault`], but the handler additionally
    /// fires if a registered task fails with
    /// [`RtError::IntegrityViolation`] — the hook of
    /// `spread_integrity(heal)`: a digest mismatch at a trust boundary
    /// hands the chunk back for re-execution from the unharmed host
    /// image instead of poisoning the runtime. (The loss arm stays
    /// active too, so a quarantined device — its mismatch streak
    /// tripped the circuit breaker — routes through the same handler.)
    pub fn on_task_integrity(
        &mut self,
        ids: &[TaskId],
        device: u32,
        handler: impl FnOnce(&mut Scope<'_>, TaskId, RtError) + 'static,
    ) {
        let handler: RecoveryHandler = Rc::new(RefCell::new(Some(Box::new(handler))));
        let mut inner = self.inner.borrow_mut();
        for &id in ids {
            inner.recoverers.insert(
                id,
                Recoverer {
                    device,
                    on_oom: false,
                    on_integrity: true,
                    handler: Rc::clone(&handler),
                },
            );
        }
    }

    /// Every digest mismatch caught at a trust boundary so far, in
    /// detection order (see [`Runtime::integrity_events`]).
    pub fn integrity_events(&self) -> Vec<IntegrityEvent> {
        self.inner.borrow().integrity_log.clone()
    }

    /// Turn a not-yet-started task into a no-op: its action is replaced
    /// (it will touch nothing when its turn comes) and its footprints
    /// are erased so replacement work does not race against it. Its
    /// dependence edges survive, so the construct's completion still
    /// cascades in order.
    pub fn neutralize_task(&mut self, id: TaskId) {
        let mut inner = self.inner.borrow_mut();
        if inner.graph.is_finished(id) {
            return;
        }
        inner
            .actions
            .insert(id, Box::new(|_, _, _| Ok(Completion::Done)));
        inner.graph.clear_footprints(id);
    }

    /// Erase a faulted *running* task's footprints: its operation was
    /// aborted by the fault, so replacement work covering the same
    /// sections is not a race.
    pub fn forgive_task_footprints(&mut self, id: TaskId) {
        self.inner.borrow_mut().graph.clear_footprints(id);
    }

    /// Complete a faulted task from a recovery handler, releasing its
    /// successors. Only valid for a task that is running and will never
    /// complete on its own (its device died under it).
    pub fn force_complete(&mut self, id: TaskId) {
        complete_task(self.sim, self.inner, id);
    }

    /// Whether a task has finished.
    pub fn is_task_finished(&self, id: TaskId) -> bool {
        self.inner.borrow().graph.is_finished(id)
    }

    /// Schedule `f` to run with a fresh [`Scope`] at virtual time `at`
    /// (clamped to now). The straggler monitor uses this for its
    /// progress deadline; the callback is skipped if the runtime was
    /// dropped or poisoned in the meantime.
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut Scope<'_>) + 'static) {
        let weak = Rc::downgrade(self.inner);
        let at = at.max(self.sim.now());
        self.sim.schedule_at(
            at,
            Box::new(move |sim| {
                if let Some(rc) = weak.upgrade() {
                    if rc.borrow().error.is_some() {
                        return;
                    }
                    let mut scope = Scope { sim, inner: &rc };
                    f(&mut scope);
                }
            }),
        );
    }

    /// Try to cancel the kernel of `task` while it is *running* on
    /// `device`'s compute engine. Returns true on a hit: the engine slot
    /// is freed and the op's completion callback will never fire — the
    /// caller owns finishing the task (the kernel body's device-side
    /// effects already ran at op start, so the device bytes are whole).
    /// Queued or already-completed kernels are not touched (false).
    pub fn cancel_kernel(&mut self, device: u32, task: TaskId) -> bool {
        let d = device as usize;
        let engine = {
            let inner = self.inner.borrow();
            if d >= inner.devices.len() {
                return false;
            }
            inner.devices[d].compute.clone()
        };
        engine.cancel_running(self.sim, task.0)
    }

    /// Append a rescue record (and its `StragglerRescued` degradation
    /// marker), returning the record's index in the rescue log so the
    /// commit gate can fill in `winner`/`commits` later.
    pub fn record_rescue(&mut self, rec: RescueRecord) -> usize {
        let ev = DegradationEvent {
            kind: DegradationKind::StragglerRescued,
            device: Some(rec.to),
            start: rec.start,
            len: rec.len,
            bytes: 0,
        };
        let idx = {
            let mut inner = self.inner.borrow_mut();
            inner.rescue_log.push(rec);
            inner.rescue_log.len() - 1
        };
        record_degradation_inner(self.sim.now(), &mut self.inner.borrow_mut(), ev);
        idx
    }

    /// Every straggler rescue launched so far, in launch order.
    pub fn rescues(&self) -> Vec<RescueRecord> {
        self.inner.borrow().rescue_log.clone()
    }
}

/// Append a degradation event and mirror it as a zero-length marker
/// span (like fault markers): split/shrink on the device's compute
/// lane, spill on the host lane with the spilled byte count.
pub(crate) fn record_degradation_inner(now: SimTime, inner: &mut Inner, ev: DegradationEvent) {
    let (lane, kind, bytes) = match ev.kind {
        DegradationKind::AdmissionShrunk => (
            ev.device
                .map_or(spread_trace::Lane::Host, spread_trace::Lane::compute),
            spread_trace::SpanKind::AdmissionShrink,
            0,
        ),
        DegradationKind::ChunkSplit => (
            ev.device
                .map_or(spread_trace::Lane::Host, spread_trace::Lane::compute),
            spread_trace::SpanKind::ChunkSplit,
            0,
        ),
        DegradationKind::Spilled => (
            spread_trace::Lane::Host,
            spread_trace::SpanKind::Spill,
            ev.bytes,
        ),
        DegradationKind::StragglerRescued => (
            ev.device
                .map_or(spread_trace::Lane::Host, spread_trace::Lane::compute),
            spread_trace::SpanKind::Rescue,
            0,
        ),
        DegradationKind::CorruptionHealed => (
            ev.device
                .map_or(spread_trace::Lane::Host, spread_trace::Lane::compute),
            spread_trace::SpanKind::Heal,
            ev.bytes,
        ),
    };
    let label = format!("{:?} [{}..{})", ev.kind, ev.start, ev.start + ev.len);
    inner.trace.record(lane, kind, label, now, now, bytes);
    inner.degradations.push(ev);
}

/// Build the action of a host task: swaps the parent/group context, runs
/// the body with a fresh [`Scope`], restores.
fn host_task_action(f: impl FnOnce(&mut Scope<'_>) + 'static) -> Action {
    Box::new(move |sim, inner_rc, id| {
        let saved = {
            let mut inner = inner_rc.borrow_mut();
            let my_group = inner.graph.group_of(id);
            let sp = inner.current_parent.replace(id);
            let sg = std::mem::replace(&mut inner.current_group, my_group);
            (sp, sg)
        };
        {
            let mut scope = Scope {
                sim,
                inner: inner_rc,
            };
            f(&mut scope);
        }
        {
            let mut inner = inner_rc.borrow_mut();
            inner.current_parent = saved.0;
            inner.current_group = saved.1;
        }
        Ok(Completion::Done)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_devices::DeviceSpec;

    fn small_rt() -> Runtime {
        let topo = Topology::uniform(2, DeviceSpec::v100().with_mem_bytes(1 << 20), 1e9, 1.5e9);
        Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
    }

    #[test]
    fn host_tasks_run_and_finish() {
        let mut rt = small_rt();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let mut s = rt.scope();
        let l1 = log.clone();
        s.task("a", move |_| l1.borrow_mut().push("a"));
        let l2 = log.clone();
        s.task("b", move |_| l2.borrow_mut().push("b"));
        s.drain_all().unwrap();
        assert_eq!(*log.borrow(), vec!["a", "b"]);
    }

    #[test]
    fn taskgroup_waits_for_descendants() {
        let mut rt = small_rt();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let mut s = rt.scope();
        let l = log.clone();
        s.taskgroup(move |scope| {
            let l2 = l.clone();
            scope.task("outer", move |inner_scope| {
                let l3 = l2.clone();
                // A bare child task: the group must wait for it too.
                inner_scope.task("nested", move |_| l3.borrow_mut().push(2));
                l2.borrow_mut().push(1);
            });
        })
        .unwrap();
        log.borrow_mut().push(3);
        rt.scope().drain_all().unwrap();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn taskwait_inside_task() {
        let mut rt = small_rt();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let mut s = rt.scope();
        let l = log.clone();
        s.task("parent", move |scope| {
            let l2 = l.clone();
            scope.task("child", move |_| l2.borrow_mut().push(1));
            scope.taskwait().unwrap();
            l.borrow_mut().push(2);
        });
        s.drain_all().unwrap();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn taskloop_blocks_and_covers() {
        let mut rt = small_rt();
        let hits: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let mut s = rt.scope();
        let h = hits.clone();
        s.taskloop("tl", 0..10, 3, move |_, i| h.borrow_mut().push(i))
            .unwrap();
        // Blocking: all iterations done on return.
        let mut got = hits.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn taskloop_empty_range() {
        let mut rt = small_rt();
        let mut s = rt.scope();
        s.taskloop("tl", 5..5, 4, move |_, _| panic!("no iterations"))
            .unwrap();
    }

    #[test]
    fn recursive_tasks() {
        // The Double Buffering pattern: a task spawning its successor.
        let mut rt = small_rt();
        let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        fn recurse(scope: &mut Scope<'_>, i: usize, log: Rc<RefCell<Vec<usize>>>) {
            if i >= 5 {
                return;
            }
            log.borrow_mut().push(i);
            let l = log.clone();
            scope.task(format!("r{i}"), move |s| recurse(s, i + 1, l));
        }
        let mut s = rt.scope();
        let l = log.clone();
        s.task("r0", move |scope| recurse(scope, 0, l));
        s.drain_all().unwrap();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deadlock_reported() {
        let mut rt = small_rt();
        let mut s = rt.scope();
        // A task gated on a group that never empties (group of itself
        // cannot — simulate by waiting on a task that never finishes:
        // a task whose action is Async but never completes).
        let spec = TaskSpec::new("never");
        let action: Action = Box::new(|_, _, _| Ok(Completion::Async));
        let id = s.submit(spec, action);
        let err = s.drain_task(id).unwrap_err();
        assert!(matches!(err, RtError::Deadlock { .. }));
        // Poisoned thereafter.
        assert!(matches!(s.drain_all(), Err(RtError::Deadlock { .. })));
    }

    #[test]
    fn elapsed_starts_at_zero() {
        let rt = small_rt();
        assert_eq!(rt.elapsed(), SimDuration::ZERO);
    }
}
