//! Per-device presence tables.
//!
//! The presence table tracks which host array sections are mapped on a
//! device, with OpenMP reference-count semantics:
//!
//! * Mapping a section already **contained** in a present entry reuses it
//!   (reference count + 1, *no* copy — OpenMP only copies on the
//!   transition from absent to present).
//! * Mapping a section that **overlaps** a present entry without being
//!   contained in it is an error: "the runtime will detect it as an
//!   explicit extension of an array, which is forbidden in OpenMP"
//!   (paper §V-B). This rule is why the Two Buffers and Double Buffering
//!   Somier versions need at least two GPUs: the round-robin spread
//!   schedule "makes sure there is always a gap between the array
//!   sections mapped to a particular device".
//! * Releasing the last reference starts the *dying* phase: the entry is
//!   unavailable for new mappings but its storage survives until the
//!   release transfer completes, when [`PresenceTable::finish_exit`]
//!   frees it.
//!
//! Under `debug_assertions` every table carries a **spec mirror**: a
//! `spread_semantics::DeviceMap` stepped through the same micro-rules
//! (`M-Reuse`/`M-Extend`/`M-Fresh`/`M-Keep`/`M-Dying`/`M-Free`/`M-Wipe`)
//! on every mutation, with the decisions asserted identical, plus a
//! [`PresenceTable::debug_validate`] full-state comparison the runtime
//! runs at every quiescence point. Release builds compile all of it
//! out.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use spread_devices::AllocId;

use crate::section::Section;

/// The spec's view of a runtime section.
#[cfg(debug_assertions)]
fn abs(s: &Section) -> spread_semantics::AbsSection {
    spread_semantics::AbsSection::new(s.array.0, s.start, s.len)
}

/// Stable key of a presence entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntryKey(u64);

/// One mapped section on one device.
#[derive(Clone, Debug)]
pub struct MappedEntry {
    /// The mapped host section.
    pub section: Section,
    /// Backing device allocation.
    pub alloc: AllocId,
    /// Active references.
    pub refcount: u32,
    /// Release in flight: unavailable for reuse, storage still live.
    pub dying: bool,
}

/// Result of starting an enter-mapping.
#[derive(Debug, PartialEq, Eq)]
pub enum EnterDecision {
    /// The section is already present; reference count was incremented.
    /// No copy is performed.
    Reuse(EntryKey),
    /// The section is absent: the caller must allocate device storage and
    /// call [`PresenceTable::insert_fresh`], then copy if the map type
    /// requires it.
    Fresh,
}

/// Result of starting an exit-mapping.
#[derive(Debug, PartialEq, Eq)]
pub enum ExitDecision {
    /// References remain; nothing to do.
    Keep(EntryKey),
    /// Last reference released: the entry is now dying. The caller
    /// performs the `from` copy (if any) and then
    /// [`PresenceTable::finish_exit`].
    LastRef(EntryKey),
}

/// A mapping conflict discovered by the table (converted by the runtime
/// into an [`crate::RtError`] carrying the device id).
#[derive(Debug, PartialEq, Eq)]
pub enum MapConflict {
    /// Overlap-without-containment (array extension).
    Extension {
        /// The conflicting present section.
        present: Section,
    },
    /// Exit/update of something that isn't mapped.
    NotMapped,
}

/// The presence table of one device.
#[derive(Default)]
pub struct PresenceTable {
    entries: BTreeMap<EntryKey, MappedEntry>,
    next_key: u64,
    /// The `spread-semantics` twin of this table, mutated in lockstep.
    #[cfg(debug_assertions)]
    spec: spread_semantics::DeviceMap,
    /// Runtime entry key → spec entry id.
    #[cfg(debug_assertions)]
    spec_ids: std::collections::HashMap<EntryKey, u64>,
}

impl PresenceTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (including dying) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = (&EntryKey, &MappedEntry)> {
        self.entries.iter()
    }

    /// Access an entry by key.
    pub fn entry(&self, key: EntryKey) -> Option<&MappedEntry> {
        self.entries.get(&key)
    }

    /// Find the live (non-dying) entry containing `s`.
    pub fn lookup_containing(&self, s: &Section) -> Option<(EntryKey, &MappedEntry)> {
        self.entries
            .iter()
            .find(|(_, e)| !e.dying && e.section.contains(s))
            .map(|(&k, e)| (k, e))
    }

    /// Begin mapping `s` on enter. See [`EnterDecision`].
    pub fn begin_enter(&mut self, s: Section) -> Result<EnterDecision, MapConflict> {
        let decision = self.enter_impl(s);
        #[cfg(debug_assertions)]
        {
            use spread_semantics::{Conflict, EnterOutcome};
            match (&decision, self.spec.begin_enter(&abs(&s))) {
                (Ok(EnterDecision::Reuse(key)), Ok(EnterOutcome::Reuse(id))) => debug_assert_eq!(
                    self.spec_ids.get(key),
                    Some(&id),
                    "spec mirror: reuse of a different entry for {s}"
                ),
                (Ok(EnterDecision::Fresh), Ok(EnterOutcome::Fresh)) => {}
                (
                    Err(MapConflict::Extension { present }),
                    Err(Conflict::Extension { present: sp }),
                ) => debug_assert_eq!(
                    abs(present),
                    sp,
                    "spec mirror: extension blamed a different entry for {s}"
                ),
                (got, spec) => panic!("enter of {s} diverges from the spec: {got:?} vs {spec:?}"),
            }
        }
        decision
    }

    fn enter_impl(&mut self, s: Section) -> Result<EnterDecision, MapConflict> {
        if let Some((key, _)) = self.lookup_containing(&s) {
            let e = self.entries.get_mut(&key).expect("just found");
            e.refcount += 1;
            return Ok(EnterDecision::Reuse(key));
        }
        if let Some((_, e)) = self.entries.iter().find(|(_, e)| e.section.overlaps(&s)) {
            return Err(MapConflict::Extension { present: e.section });
        }
        Ok(EnterDecision::Fresh)
    }

    /// Insert a fresh entry (refcount 1) after a [`EnterDecision::Fresh`].
    pub fn insert_fresh(&mut self, section: Section, alloc: AllocId) -> EntryKey {
        debug_assert!(
            !self.entries.values().any(|e| e.section.overlaps(&section)),
            "insert_fresh would overlap an existing entry"
        );
        let key = EntryKey(self.next_key);
        self.next_key += 1;
        self.entries.insert(
            key,
            MappedEntry {
                section,
                alloc,
                refcount: 1,
                dying: false,
            },
        );
        #[cfg(debug_assertions)]
        {
            let id = self.spec.insert_fresh(abs(&section), None);
            self.spec_ids.insert(key, id);
        }
        key
    }

    /// Begin releasing `s`. `force_delete` implements `map(delete: …)`.
    pub fn begin_exit(
        &mut self,
        s: &Section,
        force_delete: bool,
    ) -> Result<ExitDecision, MapConflict> {
        let decision = self.exit_impl(s, force_delete);
        #[cfg(debug_assertions)]
        {
            use spread_semantics::{Conflict, ExitOutcome};
            match (&decision, self.spec.begin_exit(&abs(s), force_delete)) {
                (Ok(ExitDecision::Keep(key)), Ok(ExitOutcome::Keep(id)))
                | (Ok(ExitDecision::LastRef(key)), Ok(ExitOutcome::LastRef(id))) => {
                    debug_assert_eq!(
                        self.spec_ids.get(key),
                        Some(&id),
                        "spec mirror: exit of a different entry for {s}"
                    )
                }
                (Err(MapConflict::NotMapped), Err(Conflict::NotMapped)) => {}
                (got, spec) => panic!("exit of {s} diverges from the spec: {got:?} vs {spec:?}"),
            }
        }
        decision
    }

    fn exit_impl(&mut self, s: &Section, force_delete: bool) -> Result<ExitDecision, MapConflict> {
        let Some((key, _)) = self.lookup_containing(s) else {
            return Err(MapConflict::NotMapped);
        };
        let e = self.entries.get_mut(&key).expect("just found");
        if force_delete {
            e.refcount = 0;
        } else {
            e.refcount -= 1;
        }
        if e.refcount == 0 {
            e.dying = true;
            Ok(ExitDecision::LastRef(key))
        } else {
            Ok(ExitDecision::Keep(key))
        }
    }

    /// Remove a dying entry, returning its allocation for deallocation.
    /// Returns `None` when the entry is already gone — a device-loss
    /// wipe may race with an in-flight release transfer, and the late
    /// completion must not be fatal.
    pub fn finish_exit(&mut self, key: EntryKey) -> Option<AllocId> {
        let Some(e) = self.entries.remove(&key) else {
            #[cfg(debug_assertions)]
            debug_assert!(
                !self.spec_ids.contains_key(&key),
                "spec mirror: runtime entry gone but spec entry survives"
            );
            return None;
        };
        debug_assert!(e.dying, "finish_exit of a live entry");
        #[cfg(debug_assertions)]
        {
            let id = self.spec_ids.remove(&key).expect("spec id for every entry");
            let se = self.spec.commit_exit(id);
            debug_assert!(se.is_some(), "spec mirror: free of an absent spec entry");
        }
        Some(e.alloc)
    }

    /// Drop every entry (live and dying) without returning allocations —
    /// the wipe after a permanent device loss, where the backing memory
    /// is gone wholesale anyway.
    pub fn clear(&mut self) {
        self.entries.clear();
        #[cfg(debug_assertions)]
        {
            self.spec.clear();
            self.spec_ids.clear();
        }
    }

    /// Total elements currently mapped (incl. dying).
    pub fn mapped_elems(&self) -> usize {
        self.entries.values().map(|e| e.section.len).sum()
    }

    /// Assert the whole table equals its `spread-semantics` mirror —
    /// every entry's section, reference count and dying phase. The
    /// runtime calls this at every quiescence point, so every test run
    /// validates the live mapping state against the spec; release
    /// builds compile it to a no-op.
    pub fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.entries.len(),
                self.spec.iter().count(),
                "spec mirror: entry count diverges"
            );
            for (key, e) in &self.entries {
                let id = self
                    .spec_ids
                    .get(key)
                    .unwrap_or_else(|| panic!("spec mirror: no spec id for {key:?}"));
                let se = self
                    .spec
                    .entry(*id)
                    .unwrap_or_else(|| panic!("spec mirror: no spec entry for {key:?}"));
                assert_eq!(abs(&e.section), se.section, "spec mirror: section diverges");
                assert_eq!(
                    e.refcount, se.refcount,
                    "spec mirror: refcount diverges for {}",
                    e.section
                );
                assert_eq!(
                    e.dying, se.dying,
                    "spec mirror: dying phase diverges for {}",
                    e.section
                );
            }
        }
    }
}

/// Per-device **sharded** presence tables.
///
/// One shard — one independently locked [`PresenceTable`] — per device.
/// Enter/exit/update on device *d* takes only shard *d*'s lock, so
/// constructs touching disjoint devices never contend, and the
/// read-mostly paths (kernel argument resolution, update planning, peer
/// source scans) take a shared read lock that excludes nothing but a
/// concurrent mutation of the *same* device's table. The
/// `#[cfg(debug_assertions)]` spec-mirror `DeviceMap` lives inside each
/// [`PresenceTable`], so it moves into the shard wholesale and the
/// semantics cross-check survives sharding unchanged.
///
/// Shards are `Arc`ed so property tests can hand individual shards to
/// OS threads (`tests/races.rs`); the deterministic simulator itself
/// drives them single-threaded, where every lock acquisition is
/// uncontended.
pub struct ShardedPresence {
    shards: Vec<Arc<RwLock<PresenceTable>>>,
}

impl ShardedPresence {
    /// One empty shard per device.
    pub fn new(n_devices: usize) -> Self {
        ShardedPresence {
            shards: (0..n_devices)
                .map(|_| Arc::new(RwLock::new(PresenceTable::new())))
                .collect(),
        }
    }

    /// Number of device shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shared (read-mostly) access to device `d`'s table.
    pub fn read(&self, d: usize) -> RwLockReadGuard<'_, PresenceTable> {
        self.shards[d].read().unwrap()
    }

    /// Exclusive access to device `d`'s table. Takes no lock on any
    /// other device's shard.
    pub fn write(&self, d: usize) -> RwLockWriteGuard<'_, PresenceTable> {
        self.shards[d].write().unwrap()
    }

    /// The shard itself, for handing to another thread.
    pub fn shard(&self, d: usize) -> Arc<RwLock<PresenceTable>> {
        Arc::clone(&self.shards[d])
    }

    /// Validate every shard against its `spread-semantics` mirror
    /// (no-op in release builds).
    pub fn debug_validate_all(&self) {
        for shard in &self.shards {
            shard.read().unwrap().debug_validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::ArrayId;
    use spread_devices::MemoryPool;

    /// Shards must be shareable across OS threads (`tests/races.rs`).
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedPresence>();
    };

    const A: ArrayId = ArrayId(0);

    fn s(start: usize, len: usize) -> Section {
        Section::new(A, start, len)
    }

    fn alloc_for(pool: &mut MemoryPool, sec: &Section) -> AllocId {
        pool.alloc(sec.len as u64 * 8).unwrap()
    }

    #[test]
    fn fresh_then_reuse_then_exit() {
        let mut t = PresenceTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        let sec = s(0, 100);
        assert_eq!(t.begin_enter(sec), Ok(EnterDecision::Fresh));
        let a = alloc_for(&mut pool, &sec);
        let key = t.insert_fresh(sec, a);
        // Re-entering the same (or a contained) section reuses.
        assert_eq!(t.begin_enter(sec), Ok(EnterDecision::Reuse(key)));
        assert_eq!(t.begin_enter(s(10, 20)), Ok(EnterDecision::Reuse(key)));
        assert_eq!(t.entry(key).unwrap().refcount, 3);
        // Three exits: two keeps, then last-ref.
        assert_eq!(t.begin_exit(&sec, false), Ok(ExitDecision::Keep(key)));
        assert_eq!(t.begin_exit(&s(10, 20), false), Ok(ExitDecision::Keep(key)));
        assert_eq!(t.begin_exit(&sec, false), Ok(ExitDecision::LastRef(key)));
        assert!(t.entry(key).unwrap().dying);
        let freed = t.finish_exit(key);
        assert_eq!(freed, Some(a));
        assert!(t.is_empty());
        // A second finish (post-wipe race) reports the entry gone.
        assert_eq!(t.finish_exit(key), None);
    }

    #[test]
    fn clear_wipes_live_and_dying_entries() {
        let mut t = PresenceTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        for sec in [s(0, 10), s(20, 5)] {
            t.begin_enter(sec).unwrap();
            let a = alloc_for(&mut pool, &sec);
            t.insert_fresh(sec, a);
        }
        t.begin_exit(&s(0, 10), false).unwrap(); // one dying
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.mapped_elems(), 0);
        // Freed space is mappable again.
        assert_eq!(t.begin_enter(s(5, 20)), Ok(EnterDecision::Fresh));
    }

    #[test]
    fn extension_is_forbidden() {
        let mut t = PresenceTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        let sec = s(10, 10);
        t.begin_enter(sec).unwrap();
        let a = alloc_for(&mut pool, &sec);
        t.insert_fresh(sec, a);
        // Overlapping-but-not-contained requests fail in every direction.
        for bad in [
            s(5, 10),
            s(15, 10),
            s(5, 20),
            s(19, 1).intersection(&s(0, 100)).unwrap(),
        ] {
            if sec.contains(&bad) {
                continue;
            }
            let err = t.begin_enter(bad).unwrap_err();
            assert_eq!(err, MapConflict::Extension { present: sec }, "{bad}");
        }
        // A superset of the present section is also an extension.
        assert!(t.begin_enter(s(0, 100)).is_err());
        // Disjoint is fine.
        assert_eq!(t.begin_enter(s(30, 5)), Ok(EnterDecision::Fresh));
    }

    #[test]
    fn halo_gap_rule() {
        // The paper's round-robin argument: chunks with ±1 halos on the
        // same device are legal iff a gap remains between them.
        let mut t = PresenceTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        // Device gets chunk [0,4) with halo → [0,5) (clamped at 0), and
        // chunk [8,12) with halo → [7,13): gap [5,7) ⇒ both map fine.
        for sec in [s(0, 5), s(7, 6)] {
            assert_eq!(t.begin_enter(sec), Ok(EnterDecision::Fresh));
            let a = alloc_for(&mut pool, &sec);
            t.insert_fresh(sec, a);
        }
        // One device only (chunks adjacent): [0,5) then halo'd [3,7)
        // overlaps ⇒ the 1-GPU Two Buffers failure.
        assert!(matches!(
            t.begin_enter(s(3, 4)),
            Err(MapConflict::Extension { .. })
        ));
    }

    #[test]
    fn dying_entries_block_reuse_and_extension() {
        let mut t = PresenceTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        let sec = s(0, 10);
        t.begin_enter(sec).unwrap();
        let a = alloc_for(&mut pool, &sec);
        let key = t.insert_fresh(sec, a);
        assert_eq!(t.begin_exit(&sec, false), Ok(ExitDecision::LastRef(key)));
        // While dying: not reusable…
        assert!(t.lookup_containing(&sec).is_none());
        // …and overlapping it is still an extension error.
        assert!(t.begin_enter(s(5, 10)).is_err());
        // Exit of a dying entry is NotMapped.
        assert_eq!(t.begin_exit(&sec, false), Err(MapConflict::NotMapped));
        t.finish_exit(key);
        // After completion the space is free again.
        assert_eq!(t.begin_enter(s(5, 10)), Ok(EnterDecision::Fresh));
    }

    #[test]
    fn delete_forces_last_ref() {
        let mut t = PresenceTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        let sec = s(0, 10);
        t.begin_enter(sec).unwrap();
        let a = alloc_for(&mut pool, &sec);
        let key = t.insert_fresh(sec, a);
        t.begin_enter(sec).unwrap(); // refcount 2
        assert_eq!(t.begin_exit(&sec, true), Ok(ExitDecision::LastRef(key)));
    }

    #[test]
    fn exit_of_unmapped_fails() {
        let mut t = PresenceTable::new();
        assert_eq!(t.begin_exit(&s(0, 10), false), Err(MapConflict::NotMapped));
    }

    #[test]
    fn mapped_elems_accounting() {
        let mut t = PresenceTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        for sec in [s(0, 10), s(20, 5)] {
            t.begin_enter(sec).unwrap();
            let a = alloc_for(&mut pool, &sec);
            t.insert_fresh(sec, a);
        }
        assert_eq!(t.mapped_elems(), 15);
        assert_eq!(t.len(), 2);
    }
}
