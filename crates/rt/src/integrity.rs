//! The `spread_integrity(off|verify|heal)` policy and its telemetry.
//!
//! Every staged D2H snapshot and every peer-copy payload is digested
//! with CRC32C at its *source* ([`spread_devices::integrity`]); the
//! runtime re-digests at the two trust boundaries where device bytes
//! become authoritative:
//!
//! 1. **Staged-commit drain** — the instant a construct's exit drains
//!    its staged writes into host memory (arbitrated by
//!    [`CommitGate`](crate::commit::CommitGate)).
//! 2. **Peer-copy receive** — the instant a device-to-device pull lands
//!    in the destination buffer.
//!
//! What a mismatch does is policy, not mechanism:
//!
//! * [`IntegrityMode::Off`] — no digests, no verification; corruption
//!   flows through silently (the baseline every real system without
//!   end-to-end checksums lives with).
//! * [`IntegrityMode::Verify`] — the construct fails with
//!   [`RtError::IntegrityViolation`](crate::RtError::IntegrityViolation).
//! * [`IntegrityMode::Heal`] — the affected piece is re-executed from
//!   the unharmed host image (a fresh enter→kernel→exit on the rescue
//!   machinery) or, for a peer copy, re-fetched over the host path; a
//!   per-device mismatch streak escalates through the `health.rs`
//!   circuit breaker into quarantine.
//!
//! Every detection is recorded as an [`IntegrityEvent`], exposed via
//! [`Runtime::integrity_events`](crate::runtime::Runtime::integrity_events).

use spread_trace::SimTime;

use crate::section::Section;

/// The `spread_integrity(…)` clause: what the runtime does about a
/// digest mismatch at a trust boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntegrityMode {
    /// Default: no digests are computed and nothing is verified.
    #[default]
    Off,
    /// Verify digests; a mismatch fails the construct with
    /// [`RtError::IntegrityViolation`](crate::RtError::IntegrityViolation).
    Verify,
    /// Verify digests; a mismatch discards the tainted bytes and heals
    /// from the unharmed host image (construct re-execution or host
    /// re-fetch), escalating repeat offenders into quarantine.
    Heal,
}

impl IntegrityMode {
    /// True when digests must be computed and checked (verify or heal).
    pub fn checks(self) -> bool {
        self != IntegrityMode::Off
    }
}

/// Which trust boundary caught (or healed) a corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityBoundary {
    /// The staged-D2H commit drain.
    Commit,
    /// A peer-copy receive.
    Peer,
}

/// What the runtime did about a caught corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityAction {
    /// `verify`: the construct was failed with an
    /// [`IntegrityViolation`](crate::RtError::IntegrityViolation).
    Failed,
    /// `heal`: the tainted bytes were discarded and the piece was
    /// re-executed from the host image (or re-fetched over the host
    /// path, for a peer copy).
    Healed,
    /// `heal`: the mismatch streak reached the circuit breaker — the
    /// device was quarantined (treated as lost from here on).
    Quarantined,
}

/// One caught corruption: a digest mismatch at a trust boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct IntegrityEvent {
    /// Device whose data path produced the tainted payload.
    pub device: u32,
    /// The section whose bytes failed verification.
    pub section: Section,
    /// Virtual instant of the detection.
    pub at: SimTime,
    /// Trust boundary that caught it.
    pub boundary: IntegrityBoundary,
    /// What the policy did about it.
    pub action: IntegrityAction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_only_off_skips_checks() {
        assert_eq!(IntegrityMode::default(), IntegrityMode::Off);
        assert!(!IntegrityMode::Off.checks());
        assert!(IntegrityMode::Verify.checks());
        assert!(IntegrityMode::Heal.checks());
    }
}
