//! End-to-end tests of the pipelined overlap engine behind
//! `Target::overlap(depth)`: results must be bit-identical to the
//! classic three-phase path, sub-slice traffic must actually happen, and
//! everything stays whole-piece at the commit boundary.

// Sequential reference loops mirror the offloaded kernels index-for-index.
#![allow(clippy::needless_range_loop)]

use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_rt::OverlapRecord;

fn runtime() -> Runtime {
    runtime_mem(1 << 22)
}

fn runtime_mem(mem_bytes: u64) -> Runtime {
    let topo = Topology::uniform(2, DeviceSpec::v100().with_mem_bytes(mem_bytes), 1e9, 1.5e9);
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
}

/// 3-point stencil: B[i] = A[i-1] + A[i] + A[i+1].
fn stencil_kernel(a: HostArray, b: HostArray) -> KernelSpec {
    KernelSpec::new("stencil", 2.0, |chunk, v| {
        for i in chunk {
            let s = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
            v.set(1, i, s);
        }
    })
    .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
    .arg(KernelArg::write(b, |r| r))
}

fn run_stencil(depth: u32) -> (Vec<f64>, Vec<OverlapRecord>, u64) {
    let mut rt = runtime();
    let n = 1000;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| (i % 97) as f64);
    rt.run(|s| {
        let mut t = Target::device(0)
            .num_teams(2)
            .map(to(a, 0..n))
            .map(from(b, 1..n - 1));
        if depth > 1 {
            t = t.overlap(depth);
        }
        t.parallel_for(s, 1..n - 1, stencil_kernel(a, b))?;
        Ok(())
    })
    .unwrap();
    assert!(rt.races().is_empty());
    assert_eq!(rt.device_mem_used(0), 0, "all mappings released");
    let elapsed = rt.elapsed().as_nanos();
    (rt.snapshot_host(b), rt.overlap_records(), elapsed)
}

#[test]
fn pipelined_stencil_is_bit_identical_to_classic() {
    let (classic, recs, _) = run_stencil(1);
    assert!(recs.is_empty(), "depth 1 must not engage the pipeline");
    for depth in [2, 3, 4, 8] {
        let (piped, recs, _) = run_stencil(depth);
        assert_eq!(piped, classic, "depth {depth} diverged");
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.depth, depth);
        assert!(!r.bypassed && !r.leaked);
        assert!(
            r.h2d_ops >= depth,
            "expected ≥{depth} sub-H2D copies, got {}",
            r.h2d_ops
        );
        assert!(
            r.d2h_ops >= depth,
            "expected ≥{depth} staged sub-D2H copies, got {}",
            r.d2h_ops
        );
        assert_eq!(
            r.staged, r.committed,
            "every staged sub-slice must commit exactly at the whole-piece boundary"
        );
    }
}

#[test]
fn pipelining_shortens_the_construct() {
    // Pipelining pays a 10 µs DMA launch latency per extra sub-copy, so
    // it only wins when streaming time dwarfs launch overhead — use a
    // large array (8 MB ≈ 8 ms H2D at 1 GB/s vs 80 µs of added launch
    // latency at depth 4).
    let run = |depth: u32| -> u64 {
        let mut rt = runtime_mem(1 << 28);
        let n = 1 << 20;
        let a = rt.host_array("A", n);
        let b = rt.host_array("B", n);
        rt.fill_host(a, |i| (i % 97) as f64);
        rt.run(|s| {
            let mut t = Target::device(0)
                .num_teams(2)
                .map(to(a, 0..n))
                .map(from(b, 1..n - 1));
            if depth > 1 {
                t = t.overlap(depth);
            }
            t.parallel_for(s, 1..n - 1, stencil_kernel(a, b))?;
            Ok(())
        })
        .unwrap();
        rt.elapsed().as_nanos()
    };
    let serial = run(1);
    let piped = run(4);
    assert!(
        (piped as f64) < 0.85 * serial as f64,
        "depth 4 ({piped} ns) should be ≥15% faster than serial ({serial} ns)"
    );
}

#[test]
fn tofrom_roundtrip_pipelined() {
    for depth in [2, 4] {
        let mut rt = runtime();
        let n = 512;
        let a = rt.host_array("A", n);
        rt.fill_host(a, |i| i as f64);
        rt.run(|s| {
            Target::device(1)
                .overlap(depth)
                .map(tofrom(a, 0..n))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("scale", 1.0, |chunk, v| {
                        for i in chunk {
                            let x = v.get(0, i);
                            v.set(0, i, 3.0 * x + 1.0);
                        }
                    })
                    .arg(KernelArg::read_write(a, |r| r)),
                )?;
            Ok(())
        })
        .unwrap();
        let out = rt.snapshot_host(a);
        for i in 0..n {
            assert_eq!(out[i], 3.0 * i as f64 + 1.0, "A[{i}] depth {depth}");
        }
        assert_eq!(rt.device_mem_used(1), 0);
    }
}

#[test]
fn depth_clamps_to_iteration_count() {
    // depth 64 over 8 iterations: the pipeline clamps to 8 stages.
    let mut rt = runtime();
    let n = 8;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        Target::device(0)
            .overlap(64)
            .map(tofrom(a, 0..n))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("inc", 1.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(0, i, x + 1.0);
                    }
                })
                .arg(KernelArg::read_write(a, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], i as f64 + 1.0);
    }
    let recs = rt.overlap_records();
    assert_eq!(recs.len(), 1);
    assert!(recs[0].h2d_ops <= n as u32, "stages clamp to iterations");
}

#[test]
fn already_present_data_skips_transfers() {
    // Data staged by enter-data: the pipelined construct finds nothing
    // to copy, runs sub-kernels, and defers D2H to the explicit exit.
    let mut rt = runtime();
    let n = 256;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| (i * i) as f64);
    rt.run(|s| {
        TargetEnterData::device(1).map(to(a, 0..n)).launch(s)?;
        Target::device(1).overlap(4).map(to(a, 0..n)).parallel_for(
            s,
            0..n,
            KernelSpec::new("inc", 1.0, |chunk, v| {
                for i in chunk {
                    let x = v.get(0, i);
                    v.set(0, i, x + 1.0);
                }
            })
            .arg(KernelArg::read_write(a, |r| r)),
        )?;
        TargetExitData::device(1).map(from(a, 0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], (i * i) as f64 + 1.0, "A[{i}]");
    }
    let recs = rt.overlap_records();
    assert_eq!(recs.len(), 1);
    let r = &recs[0];
    assert_eq!(r.h2d_ops, 0, "data already present: no H2D sub-copies");
    assert_eq!(
        r.d2h_ops, 0,
        "refcount > 1 at kernel time: D2H belongs to the exit-data construct"
    );
    assert_eq!(rt.device_mem_used(1), 0);
}

#[test]
fn two_devices_pipeline_concurrently() {
    let mut rt = runtime();
    let n = 800;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        let half = n / 2;
        Target::device(0)
            .nowait()
            .overlap(4)
            .map(to(a, 0..half))
            .map(from(b, 0..half))
            .parallel_for(
                s,
                0..half,
                KernelSpec::new("dbl", 1.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(1, i, 2.0 * x);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Target::device(1)
            .nowait()
            .overlap(4)
            .map(to(a, half..n))
            .map(from(b, half..n))
            .parallel_for(
                s,
                half..n,
                KernelSpec::new("dbl", 1.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(1, i, 2.0 * x);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 0..n {
        assert_eq!(out[i], 2.0 * i as f64, "B[{i}]");
    }
    let recs = rt.overlap_records();
    assert_eq!(recs.len(), 2);
    assert!(recs.iter().all(|r| r.staged == r.committed && !r.leaked));
    assert!(rt.races().is_empty());
}
