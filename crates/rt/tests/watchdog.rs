//! Regression tests for the progress-aware blocking-drain watchdog.
//!
//! The watchdog window measures virtual time since the *last task
//! completion*, not since the drain began: a run that is slow but still
//! finishing tasks must never trip it, while a wedged run — events
//! still firing, nothing completing — must still fail with
//! [`RtError::Timeout`].

use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_trace::{SimDuration, SimTime};

fn inc_kernel(a: HostArray) -> KernelSpec {
    KernelSpec::new("inc", 1.0, |chunk, v| {
        for i in chunk {
            let x = v.get(0, i);
            v.set(0, i, x + 1.0);
        }
    })
    .arg(KernelArg::read_write(a, |r| r))
}

/// Run `rounds` serialized constructs under one blocking drain; return
/// the drain result, the final host image, and total elapsed time.
fn chained_run(
    rounds: usize,
    watchdog: Option<SimDuration>,
) -> (Result<(), RtError>, Vec<f64>, SimDuration) {
    let topo = Topology::uniform(1, DeviceSpec::v100().with_mem_bytes(1 << 22), 1e9, 1.5e9);
    let mut cfg = RuntimeConfig::new(topo).with_team_threads(2);
    if let Some(w) = watchdog {
        cfg = cfg.with_watchdog(w);
    }
    let mut rt = Runtime::new(cfg);
    let n = 1 << 14;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |_| 0.0);
    let res = rt.run(|s| {
        // nowait + depend(out) chaining: the constructs serialize among
        // themselves and a single drain at scope end waits for all of
        // them — one watchdog window spans the whole chain.
        for _ in 0..rounds {
            Target::device(0)
                .nowait()
                .depend_out(a.section(0..n))
                .map(tofrom(a, 0..n))
                .parallel_for(s, 0..n, inc_kernel(a))?;
        }
        Ok(())
    });
    let out = rt.snapshot_host(a);
    (res, out, rt.elapsed())
}

#[test]
fn slow_but_progressing_drain_survives_the_watchdog() {
    let rounds = 8;
    // Calibrate against the fault-free run: the whole chain takes
    // `total`; each construct therefore finishes tasks every ~total/8.
    let (res, out, total) = chained_run(rounds, None);
    res.unwrap();
    assert!(out.iter().all(|&x| x == rounds as f64));
    assert!(total > SimDuration::ZERO);

    // A window of total/2 is far longer than the gap between
    // consecutive task completions but much shorter than the drain as
    // a whole: only a progress-aware watchdog lets this run finish.
    let window = SimDuration::from_nanos(total.as_nanos() / 2);
    let (res, out, elapsed) = chained_run(rounds, Some(window));
    res.unwrap();
    assert!(out.iter().all(|&x| x == rounds as f64));
    assert!(
        elapsed > window,
        "the drain outlived one watchdog window ({elapsed:?} <= {window:?})"
    );
}

/// Keep the simulator's event queue non-empty without ever finishing a
/// task, so a wedged drain cannot hide behind [`RtError::Deadlock`].
fn tick(s: &mut Scope<'_>, step: SimDuration, until: SimTime) {
    if s.now() >= until {
        return;
    }
    let at = s.now() + step;
    s.at(at, move |s| tick(s, step, until));
}

#[test]
fn wedged_drain_still_times_out() {
    let topo = Topology::uniform(1, DeviceSpec::v100().with_mem_bytes(1 << 12), 1e9, 1.5e9);
    let cfg = RuntimeConfig::new(topo)
        .with_team_threads(2)
        .with_alloc_backpressure(true)
        .with_watchdog(SimDuration::from_micros(500));
    let mut rt = Runtime::new(cfg);
    let n = 1 << 12; // 32 KiB of f64 — never fits a 4 KiB device.
    let a = rt.host_array("A", n);
    let res = rt.run(|s| {
        // Background ticks every 100 µs: the sim always has a next
        // event, but none of them completes a task.
        tick(
            s,
            SimDuration::from_micros(100),
            SimTime::from_nanos(50_000_000),
        );
        // The enter phase parks on backpressure forever: the map can
        // never fit and nothing ever releases memory.
        Target::device(0)
            .map(tofrom(a, 0..n))
            .parallel_for(s, 0..n, inc_kernel(a))?;
        Ok(())
    });
    match res {
        Err(RtError::Timeout { waited, .. }) => {
            assert!(waited > SimDuration::from_micros(500));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}
