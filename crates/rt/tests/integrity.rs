//! End-to-end data integrity at the runtime layer: silent in-flight
//! flips and at-rest scribbles versus `spread_integrity(off|verify|heal)`
//! — detection at the two trust boundaries (staged-commit drain, peer
//! receive), healing from the unharmed host image, and quarantine of
//! repeat offenders.

use spread_devices::{DeviceSpec, Topology};
use spread_rt::directives::Target;
use spread_rt::prelude::*;
use spread_rt::{
    ConstructIds, DegradationKind, ExchangeMode, IntegrityAction, IntegrityBoundary, IntegrityMode,
};
use spread_sim::FaultPlan;
use spread_trace::{SimTime, SpanKind};

fn runtime_n(n_devices: usize, plan: Option<FaultPlan>) -> Runtime {
    let topo = Topology::uniform(n_devices, DeviceSpec::v100(), 1e9, 1.5e9);
    let mut cfg = RuntimeConfig::new(topo).with_team_threads(2);
    if let Some(plan) = plan {
        cfg = cfg.with_fault_plan(plan);
    }
    Runtime::new(cfg)
}

fn bump_kernel(a: HostArray) -> KernelSpec {
    KernelSpec::new("bump", 1.0, |chunk, v| {
        for i in chunk {
            let x = v.get(0, i);
            v.set(0, i, x + 1.0);
        }
    })
    .arg(KernelArg::read_write(a, |r| r))
}

/// One offloaded `x += 1` over the whole array under the given policy.
fn run_bump(rt: &mut Runtime, a: HostArray, n: usize, mode: IntegrityMode) -> Result<(), RtError> {
    rt.run(|s| {
        Target::device(0)
            .map(tofrom(a, 0..n))
            .integrity(mode)
            .parallel_for(s, 0..n, bump_kernel(a))?;
        Ok(())
    })
}

#[test]
fn silent_flip_under_off_reaches_host_memory_unnoticed() {
    let n = 512;
    let plan = FaultPlan::new(11).silent_flips(0, SimTime::ZERO, 1);
    let mut rt = runtime_n(1, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    run_bump(&mut rt, a, n, IntegrityMode::Off).unwrap();
    let got = rt.snapshot_host(a);
    let expected: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
    // Exactly one element rotted — and nothing noticed.
    let wrong: Vec<usize> = (0..n)
        .filter(|&i| got[i].to_bits() != expected[i].to_bits())
        .collect();
    assert_eq!(wrong.len(), 1, "one flipped element reached host memory");
    assert!(rt.integrity_events().is_empty(), "off computes no digests");
}

#[test]
fn silent_flip_under_verify_fails_the_construct_at_the_commit_drain() {
    let n = 512;
    let plan = FaultPlan::new(11).silent_flips(0, SimTime::ZERO, 1);
    let mut rt = runtime_n(1, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    let reference = rt.snapshot_host(a);
    let err = run_bump(&mut rt, a, n, IntegrityMode::Verify).unwrap_err();
    assert!(
        matches!(err, RtError::IntegrityViolation { device: 0, .. }),
        "{err:?}"
    );
    // The tainted staged set never touched host memory.
    assert_eq!(rt.snapshot_host(a), reference);
    let events = rt.integrity_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].device, 0);
    assert_eq!(events[0].boundary, IntegrityBoundary::Commit);
    assert_eq!(events[0].action, IntegrityAction::Failed);
    assert_eq!(events[0].section, a.section(0..n));
    assert!(
        rt.timeline()
            .spans()
            .iter()
            .any(|s| s.kind == SpanKind::Verify),
        "the detection left a Verify marker"
    );
}

/// Register the canonical heal recoverer over a construct's phases:
/// forgive the faulted footprints and re-execute the whole construct
/// fresh from the unharmed host image, then complete the faulted task.
fn arm_heal(scope: &mut Scope<'_>, a: HostArray, n: usize, ids: ConstructIds) {
    scope.on_task_integrity(&ids.all(), 0, move |s, faulted, err| {
        assert!(matches!(err, RtError::IntegrityViolation { .. }), "{err:?}");
        for id in ids.all() {
            s.forgive_task_footprints(id);
        }
        let redo = Target::device(0)
            .map(tofrom(a, 0..n))
            .integrity(IntegrityMode::Heal)
            .parallel_for_phases(s, 0..n, bump_kernel(a))
            .expect("heal re-execution launches");
        s.task_chained("heal-complete", vec![redo.exit], None, move |s2| {
            s2.force_complete(faulted);
        });
    });
}

#[test]
fn silent_flip_under_heal_re_executes_and_lands_bit_identical() {
    let n = 512;
    let plan = FaultPlan::new(11).silent_flips(0, SimTime::ZERO, 1);
    let mut rt = runtime_n(1, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        let ids = Target::device(0)
            .map(tofrom(a, 0..n))
            .integrity(IntegrityMode::Heal)
            .parallel_for_phases(s, 0..n, bump_kernel(a))?;
        arm_heal(s, a, n, ids);
        Ok(())
    })
    .unwrap();
    let expected: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
    assert_eq!(rt.snapshot_host(a), expected, "healed run is bit-identical");
    let events = rt.integrity_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].action, IntegrityAction::Healed);
    assert_eq!(events[0].boundary, IntegrityBoundary::Commit);
    assert!(rt
        .degradations()
        .iter()
        .any(|d| d.kind == DegradationKind::CorruptionHealed && d.device == Some(0)));
    assert!(rt
        .timeline()
        .spans()
        .iter()
        .any(|s| s.kind == SpanKind::Heal));
}

/// Find the mid-point of the first D2H transfer span of a clean run of
/// `run_bump` — the window where a staged snapshot sits at rest.
fn staged_window_midpoint(n: usize) -> SimTime {
    let mut rt = runtime_n(1, None);
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    run_bump(&mut rt, a, n, IntegrityMode::Off).unwrap();
    let tl = rt.timeline();
    let d2h = tl
        .spans()
        .iter()
        .find(|s| s.kind == SpanKind::TransferOut)
        .expect("the exit ran a D2H transfer");
    d2h.start + (d2h.end - d2h.start) / 2
}

#[test]
fn memory_scribble_at_rest_is_caught_at_the_commit_drain() {
    let n = 4096;
    let mid = staged_window_midpoint(n);
    let plan = FaultPlan::new(3).scribble(0, mid);
    let mut rt = runtime_n(1, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    let err = run_bump(&mut rt, a, n, IntegrityMode::Verify).unwrap_err();
    assert!(matches!(err, RtError::IntegrityViolation { .. }), "{err:?}");
    let events = rt.integrity_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].boundary, IntegrityBoundary::Commit);
}

#[test]
fn memory_scribble_under_off_corrupts_the_host_image() {
    let n = 4096;
    let mid = staged_window_midpoint(n);
    let plan = FaultPlan::new(3).scribble(0, mid);
    let mut rt = runtime_n(1, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    run_bump(&mut rt, a, n, IntegrityMode::Off).unwrap();
    let got = rt.snapshot_host(a);
    let expected: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
    let wrong = (0..n)
        .filter(|&i| got[i].to_bits() != expected[i].to_bits())
        .count();
    assert_eq!(wrong, 1, "the scribbled bit flowed through to the host");
}

#[test]
fn a_scribble_with_nothing_staged_is_inert() {
    // Planned before any D2H snapshot exists: at-rest corruption needs
    // bytes at rest.
    let n = 256;
    let plan = FaultPlan::new(3).scribble(0, SimTime::ZERO);
    let mut rt = runtime_n(1, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    run_bump(&mut rt, a, n, IntegrityMode::Verify).unwrap();
    let expected: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
    assert_eq!(rt.snapshot_host(a), expected);
    assert!(rt.integrity_events().is_empty());
}

/// Stage device 1 for a peer pull of `a` from device 0.
fn peer_setup(s: &mut Scope<'_>, a: HostArray, n: usize) -> Result<(), RtError> {
    TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
    TargetEnterData::device(1).map(alloc(a, 0..n)).launch(s)?;
    Ok(())
}

#[test]
fn peer_flip_under_verify_fails_at_the_receive() {
    let n = 1024;
    let plan = FaultPlan::new(5).silent_flips(1, SimTime::ZERO, 1);
    let mut rt = runtime_n(2, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| (i as f64).cos());
    let err = rt
        .run(|s| {
            peer_setup(s, a, n)?;
            TargetUpdate::device(1)
                .to(a.section(0..n))
                .exchange(ExchangeMode::Auto)
                .integrity(IntegrityMode::Verify)
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, RtError::IntegrityViolation { device: 1, .. }),
        "{err:?}"
    );
    let events = rt.integrity_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].boundary, IntegrityBoundary::Peer);
    assert_eq!(events[0].action, IntegrityAction::Failed);
}

#[test]
fn peer_flip_under_heal_refetches_from_the_host_image() {
    let n = 1024;
    let plan = FaultPlan::new(5).silent_flips(1, SimTime::ZERO, 1);
    let mut rt = runtime_n(2, Some(plan));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| (i as f64).cos());
    let reference = rt.snapshot_host(a);
    rt.run(|s| {
        peer_setup(s, a, n)?;
        TargetUpdate::device(1)
            .to(a.section(0..n))
            .exchange(ExchangeMode::Auto)
            .integrity(IntegrityMode::Heal)
            .launch(s)?;
        TargetUpdate::device(1).from(a.section(0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.snapshot_host(a), reference, "healed pull is bit-exact");
    let records = rt.peer_copies();
    assert_eq!(records.len(), 1);
    assert!(records[1 - 1].diverted, "the heal replayed the host path");
    let events = rt.integrity_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].boundary, IntegrityBoundary::Peer);
    assert_eq!(events[0].action, IntegrityAction::Healed);
    assert!(rt
        .timeline()
        .spans()
        .iter()
        .any(|s| s.label.ends_with("(host fallback)")));
    assert!(rt
        .degradations()
        .iter()
        .any(|d| d.kind == DegradationKind::CorruptionHealed && d.device == Some(1)));
}

#[test]
fn a_mismatch_streak_quarantines_the_device() {
    let n = 256;
    let topo = Topology::uniform(2, DeviceSpec::v100(), 1e9, 1.5e9);
    let mut rt = Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_breaker(2)
            .with_fault_plan(FaultPlan::new(5).silent_flips(1, SimTime::ZERO, 10)),
    );
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64 * 0.5);
    let err = rt
        .run(|s| {
            peer_setup(s, a, n)?;
            for _ in 0..2 {
                TargetUpdate::device(1)
                    .to(a.section(0..n))
                    .exchange(ExchangeMode::Auto)
                    .integrity(IntegrityMode::Heal)
                    .launch(s)?;
            }
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, RtError::IntegrityViolation { device: 1, .. }),
        "{err:?}"
    );
    let events = rt.integrity_events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].action, IntegrityAction::Healed);
    assert_eq!(events[1].action, IntegrityAction::Quarantined);
    assert_eq!(rt.lost_devices(), vec![1], "quarantine = permanent loss");
}

#[test]
fn a_clean_checked_transfer_resets_the_streak() {
    // Three flips, breaker 2 — but a clean verified pull between bursts
    // keeps the streak below the breaker, so every mismatch heals.
    let n = 256;
    let topo = Topology::uniform(2, DeviceSpec::v100(), 1e9, 1.5e9);
    let mut rt = Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_breaker(2)
            .with_fault_plan(FaultPlan::new(5).silent_flips(1, SimTime::ZERO, 1)),
    );
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64 * 0.5);
    let reference = rt.snapshot_host(a);
    rt.run(|s| {
        peer_setup(s, a, n)?;
        for _ in 0..3 {
            TargetUpdate::device(1)
                .to(a.section(0..n))
                .exchange(ExchangeMode::Auto)
                .integrity(IntegrityMode::Heal)
                .launch(s)?;
        }
        TargetUpdate::device(1).from(a.section(0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.snapshot_host(a), reference);
    let events = rt.integrity_events();
    assert_eq!(events.len(), 1, "only the first pull had a token to burn");
    assert_eq!(events[0].action, IntegrityAction::Healed);
    assert!(rt.lost_devices().is_empty());
}

#[test]
#[should_panic(expected = "invalid fault plan")]
fn malformed_fault_plans_are_rejected_at_construction() {
    let topo = Topology::uniform(1, DeviceSpec::v100(), 1e9, 1.5e9);
    let plan = FaultPlan::new(1).silent_flips(0, SimTime::ZERO, 0);
    Runtime::new(RuntimeConfig::new(topo).with_fault_plan(plan));
}
