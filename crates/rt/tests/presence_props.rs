//! Property tests for the sharded presence tables: random
//! enter/exit/finish/clear sequences driven in lockstep against a naive
//! reference model of the pre-shard table's observable behaviour. In
//! debug builds every [`PresenceTable`] mutation is *also* cross-checked
//! against its `spread-semantics` spec mirror internally, so each
//! random step is validated twice — once against the reference model
//! here, once against the operational semantics inside the table.

use spread_devices::MemoryPool;
use spread_prng::Prng;
use spread_rt::mapping::{
    EnterDecision, EntryKey, ExitDecision, MapConflict, PresenceTable, ShardedPresence,
};
use spread_rt::{ArrayId, Section};

/// The pre-shard table's observable state, re-implemented as naively as
/// possible: a flat vector and linear scans.
#[derive(Default, Clone)]
struct RefModel {
    entries: Vec<RefEntry>,
}

#[derive(Clone, Debug, PartialEq)]
struct RefEntry {
    section: Section,
    refcount: u32,
    dying: bool,
}

#[derive(Debug, PartialEq)]
enum RefDecision {
    Reuse,
    Fresh,
    Keep,
    LastRef,
    Extension(Section),
    NotMapped,
}

impl RefModel {
    fn enter(&mut self, s: Section) -> RefDecision {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| !e.dying && e.section.contains(&s))
        {
            e.refcount += 1;
            return RefDecision::Reuse;
        }
        if let Some(e) = self.entries.iter().find(|e| e.section.overlaps(&s)) {
            return RefDecision::Extension(e.section);
        }
        self.entries.push(RefEntry {
            section: s,
            refcount: 1,
            dying: false,
        });
        RefDecision::Fresh
    }

    fn exit(&mut self, s: &Section, force_delete: bool) -> RefDecision {
        let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| !e.dying && e.section.contains(s))
        else {
            return RefDecision::NotMapped;
        };
        if force_delete {
            e.refcount = 0;
        } else {
            e.refcount -= 1;
        }
        if e.refcount == 0 {
            e.dying = true;
            RefDecision::LastRef
        } else {
            RefDecision::Keep
        }
    }

    /// Finish the dying entry covering `s` (if it survived a clear).
    fn finish(&mut self, s: &Section) -> bool {
        let Some(i) = self.entries.iter().position(|e| e.dying && e.section == *s) else {
            return false;
        };
        self.entries.remove(i);
        true
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    /// Canonical fingerprint for whole-state comparison.
    fn snapshot(&self) -> Vec<(u32, usize, usize, u32, bool)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .map(|e| {
                (
                    e.section.array.0,
                    e.section.start,
                    e.section.len,
                    e.refcount,
                    e.dying,
                )
            })
            .collect();
        v.sort();
        v
    }
}

fn table_snapshot(t: &PresenceTable) -> Vec<(u32, usize, usize, u32, bool)> {
    let mut v: Vec<_> = t
        .iter()
        .map(|(_, e)| {
            (
                e.section.array.0,
                e.section.start,
                e.section.len,
                e.refcount,
                e.dying,
            )
        })
        .collect();
    v.sort();
    v
}

fn random_section(rng: &mut Prng) -> Section {
    let array = ArrayId(rng.below(2) as u32);
    let start = rng.range(0, 40);
    let len = rng.range(1, 12);
    Section::new(array, start, len)
}

/// A dying entry whose release transfer is still "in flight". `wiped`
/// marks entries destroyed by a device-loss [`PresenceTable::clear`]
/// before the transfer landed — their late completion must be a no-op.
struct Pending {
    key: EntryKey,
    section: Section,
    wiped: bool,
}

/// One random op against one (table, model) pair.
fn step(
    rng: &mut Prng,
    t: &mut PresenceTable,
    m: &mut RefModel,
    pool: &mut MemoryPool,
    pending: &mut Vec<Pending>,
) {
    match rng.below(10) {
        // Enter: the commonest op.
        0..=4 => {
            let s = random_section(rng);
            let got = t.begin_enter(s);
            let want = m.enter(s);
            match (got, want) {
                (Ok(EnterDecision::Reuse(_)), RefDecision::Reuse) => {}
                (Ok(EnterDecision::Fresh), RefDecision::Fresh) => {
                    let a = pool.alloc(s.len as u64 * 8).unwrap();
                    t.insert_fresh(s, a);
                }
                (Err(MapConflict::Extension { present }), RefDecision::Extension(p)) => {
                    assert_eq!(present, p, "extension blamed a different entry for {s}");
                }
                (got, want) => panic!("enter {s}: table {got:?} vs reference {want:?}"),
            }
        }
        // Exit, sometimes with delete semantics.
        5..=7 => {
            let s = random_section(rng);
            let force = rng.chance(0.2);
            let got = t.begin_exit(&s, force);
            let want = m.exit(&s, force);
            match (got, want) {
                (Ok(ExitDecision::Keep(_)), RefDecision::Keep) => {}
                (Ok(ExitDecision::LastRef(key)), RefDecision::LastRef) => {
                    pending.push(Pending {
                        key,
                        section: t.entry(key).unwrap().section,
                        wiped: false,
                    });
                }
                (Err(MapConflict::NotMapped), RefDecision::NotMapped) => {}
                (got, want) => panic!("exit {s}: table {got:?} vs reference {want:?}"),
            }
        }
        // A release transfer completes.
        8 => {
            if !pending.is_empty() {
                let i = rng.range(0, pending.len());
                let p = pending.swap_remove(i);
                finish_one(t, m, p);
            }
        }
        // Device-loss wipe (rare). In-flight releases stay pending and
        // must later finish as harmless no-ops on both sides.
        _ => {
            if rng.chance(0.15) {
                t.clear();
                m.clear();
                for p in pending.iter_mut() {
                    p.wiped = true;
                }
            }
        }
    }
    assert_eq!(
        table_snapshot(t),
        m.snapshot(),
        "table state diverged from the reference model"
    );
}

/// Complete one in-flight release on both sides and check they agree.
fn finish_one(t: &mut PresenceTable, m: &mut RefModel, p: Pending) {
    let freed = t.finish_exit(p.key);
    if p.wiped {
        assert!(
            freed.is_none(),
            "finish_exit of {} after a wipe must be a no-op",
            p.section
        );
    } else {
        assert!(
            freed.is_some(),
            "finish_exit of {} lost a live dying entry",
            p.section
        );
        assert!(m.finish(&p.section), "reference lost {}", p.section);
    }
}

#[test]
fn random_sequences_match_the_reference_model() {
    for seed in 0..200u64 {
        let mut rng = Prng::new(0xbeef ^ seed);
        let mut t = PresenceTable::new();
        let mut m = RefModel::default();
        let mut pool = MemoryPool::new(1 << 24);
        let mut pending = Vec::new();
        for _ in 0..300 {
            step(&mut rng, &mut t, &mut m, &mut pool, &mut pending);
        }
        // Drain what's still in flight; the two sides must agree on
        // which entries survived to be freed.
        for p in pending.drain(..) {
            finish_one(&mut t, &mut m, p);
        }
        t.debug_validate();
    }
}

/// The same random traffic routed through [`ShardedPresence`]: each op
/// picks a device, and only that device's reference model may change —
/// proving shard isolation op by op.
#[test]
fn sharded_traffic_stays_isolated_per_device() {
    const DEVICES: usize = 4;
    for seed in 0..60u64 {
        let mut rng = Prng::new(0xfeed ^ seed);
        let sharded = ShardedPresence::new(DEVICES);
        let mut models: Vec<RefModel> = vec![RefModel::default(); DEVICES];
        let mut pools: Vec<MemoryPool> = (0..DEVICES).map(|_| MemoryPool::new(1 << 24)).collect();
        let mut pendings: Vec<Vec<Pending>> = (0..DEVICES).map(|_| Vec::new()).collect();
        for _ in 0..250 {
            let d = rng.range(0, DEVICES);
            let before: Vec<_> = (0..DEVICES)
                .filter(|&o| o != d)
                .map(|o| table_snapshot(&sharded.read(o)))
                .collect();
            step(
                &mut rng,
                &mut sharded.write(d),
                &mut models[d],
                &mut pools[d],
                &mut pendings[d],
            );
            let after: Vec<_> = (0..DEVICES)
                .filter(|&o| o != d)
                .map(|o| table_snapshot(&sharded.read(o)))
                .collect();
            assert_eq!(
                before, after,
                "an op on device {d}'s shard mutated another device's table"
            );
        }
        for (d, model) in models.iter().enumerate() {
            assert_eq!(table_snapshot(&sharded.read(d)), model.snapshot());
        }
        sharded.debug_validate_all();
    }
}
