//! The peer-to-peer `exchange(…)` path of `target update`: device-to-device
//! pulls, eligibility, effect-time divert-to-host, and the profile
//! accounting identities.

use spread_devices::{DeviceSpec, Topology};
use spread_prng::Prng;
use spread_rt::prelude::*;
use spread_rt::{ExchangeMode, PeerCopyRecord};
use spread_sim::FaultPlan;
use spread_trace::{profile_window, EngineKind, SimTime, SpanKind};

fn runtime_n(n_devices: usize) -> Runtime {
    let topo = Topology::uniform(n_devices, DeviceSpec::v100(), 1e9, 1.5e9);
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
}

#[test]
fn auto_routes_peer_and_stays_bit_identical() {
    let mut rt = runtime_n(2);
    let n = 4096;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| (i as f64).sin());
    let reference = rt.snapshot_host(a);
    rt.run(|s| {
        TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
        TargetEnterData::device(1).map(alloc(a, 0..n)).launch(s)?;
        TargetUpdate::device(1)
            .to(a.section(0..n))
            .exchange(ExchangeMode::Auto)
            .launch(s)?;
        // Writing the host back from device 1 proves the peer pull
        // delivered the exact bytes.
        TargetUpdate::device(1).from(a.section(0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.snapshot_host(a), reference);
    assert_eq!(
        rt.peer_copies(),
        vec![PeerCopyRecord {
            src: 0,
            dst: 1,
            section: a.section(0..n),
            bytes: n as u64 * 8,
            diverted: false,
        }]
    );
    let tl = rt.timeline();
    let peer: Vec<_> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::PeerCopy)
        .collect();
    assert_eq!(peer.len(), 1);
    assert!(peer[0].label.starts_with("p2p[0->1]"), "{}", peer[0].label);
    assert_eq!(peer[0].bytes, n as u64 * 8);
}

#[test]
fn host_mode_is_the_default_and_never_routes_peer() {
    let mut rt = runtime_n(2);
    let n = 1024;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
        TargetEnterData::device(1).map(alloc(a, 0..n)).launch(s)?;
        TargetUpdate::device(1).to(a.section(0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    assert!(rt.peer_copies().is_empty());
    assert!(rt
        .timeline()
        .spans()
        .iter()
        .all(|s| s.kind != SpanKind::PeerCopy));
}

#[test]
fn auto_falls_back_to_host_when_no_sibling_has_the_bytes() {
    let mut rt = runtime_n(2);
    let n = 1024;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64 + 0.5);
    let reference = rt.snapshot_host(a);
    rt.run(|s| {
        TargetEnterData::device(1).map(alloc(a, 0..n)).launch(s)?;
        TargetUpdate::device(1)
            .to(a.section(0..n))
            .exchange(ExchangeMode::Auto)
            .launch(s)?;
        TargetUpdate::device(1).from(a.section(0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.snapshot_host(a), reference);
    assert!(rt.peer_copies().is_empty());
}

#[test]
fn stale_sibling_bytes_are_not_eligible() {
    // Device 0 holds A but a kernel bumped its image away from the host
    // copy — bit-equality fails, so `auto` must take the host path.
    let mut rt = runtime_n(2);
    let n = 256;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    let reference = rt.snapshot_host(a);
    rt.run(|s| {
        TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
        Target::device(0).map(to(a, 0..n)).parallel_for(
            s,
            0..n,
            KernelSpec::new("bump", 1.0, |chunk, v| {
                for i in chunk {
                    let x = v.get(0, i);
                    v.set(0, i, x + 1.0);
                }
            })
            .arg(KernelArg::read_write(a, |r| r)),
        )?;
        TargetEnterData::device(1).map(alloc(a, 0..n)).launch(s)?;
        TargetUpdate::device(1)
            .to(a.section(0..n))
            .exchange(ExchangeMode::Auto)
            .launch(s)?;
        TargetUpdate::device(1).from(a.section(0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.snapshot_host(a), reference);
    assert!(rt.peer_copies().is_empty());
}

#[test]
fn forced_peer_without_an_eligible_source_is_invalid() {
    let mut rt = runtime_n(2);
    let n = 128;
    let a = rt.host_array("A", n);
    let err = rt
        .run(|s| {
            TargetEnterData::device(1).map(alloc(a, 0..n)).launch(s)?;
            TargetUpdate::device(1)
                .to(a.section(0..n))
                .exchange(ExchangeMode::Peer)
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
}

#[test]
fn forced_peer_without_to_items_is_invalid() {
    let mut rt = runtime_n(2);
    let n = 128;
    let a = rt.host_array("A", n);
    let err = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
            TargetUpdate::device(0)
                .from(a.section(0..n))
                .exchange(ExchangeMode::Peer)
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
}

#[test]
fn forced_peer_on_a_single_device_node_is_invalid() {
    let mut rt = runtime_n(1);
    let n = 128;
    let a = rt.host_array("A", n);
    let err = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
            TargetUpdate::device(0)
                .to(a.section(0..n))
                .exchange(ExchangeMode::Peer)
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
}

#[test]
#[should_panic(expected = "invalid topology")]
fn runtime_rejects_an_inconsistent_topology() {
    let mut topo = Topology::uniform(2, DeviceSpec::v100(), 1e9, 1.5e9);
    topo.switch_of.pop();
    Runtime::new(RuntimeConfig::new(topo));
}

/// Build the two-half peer program used by the divert test: enter A on
/// device 0, alloc on device 1, two async auto-updates (one per half),
/// then read both halves back.
fn two_half_program(rt: &mut Runtime, a: HostArray, n: usize) -> Result<(), RtError> {
    rt.run(|s| {
        TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
        TargetEnterData::device(1).map(alloc(a, 0..n)).launch(s)?;
        TargetUpdate::device(1)
            .to(a.section(0..n / 2))
            .exchange(ExchangeMode::Auto)
            .nowait()
            .launch(s)?;
        TargetUpdate::device(1)
            .to(a.section(n / 2..n))
            .exchange(ExchangeMode::Auto)
            .nowait()
            .launch(s)?;
        s.drain_all()?;
        TargetUpdate::device(1).from(a.section(0..n)).launch(s)?;
        Ok(())
    })
}

#[test]
fn a_lost_source_diverts_queued_peer_copies_to_the_host_path() {
    // Clean run: find the first peer copy's window.
    let n = 1 << 16;
    let mut clean = runtime_n(2);
    let a = clean.host_array("A", n);
    clean.fill_host(a, |i| (i % 97) as f64);
    two_half_program(&mut clean, a, n).unwrap();
    let tl = clean.timeline();
    let mut peer: Vec<_> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::PeerCopy)
        .collect();
    peer.sort_by_key(|s| s.start);
    assert_eq!(peer.len(), 2, "both halves pulled peer in the clean run");
    let mid = peer[0].start + (peer[0].end - peer[0].start) / 2;

    // Faulted run: lose the source mid-first-copy. The in-flight copy
    // already moved its bytes (effects are eager); the queued second op
    // re-verifies at start, finds the source dead, and replays from the
    // host image.
    let topo = Topology::uniform(2, DeviceSpec::v100(), 1e9, 1.5e9);
    let mut rt = Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_fault_plan(FaultPlan::new(7).lose_device(0, mid)),
    );
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| (i % 97) as f64);
    let reference = rt.snapshot_host(a);
    two_half_program(&mut rt, a, n).unwrap();
    assert_eq!(rt.snapshot_host(a), reference, "host image bit-identical");
    let records = rt.peer_copies();
    assert_eq!(records.len(), 2);
    assert!(!records[0].diverted, "in-flight copy completed");
    assert!(records[1].diverted, "queued copy diverted to host");
    let tl = rt.timeline();
    assert!(
        tl.spans()
            .iter()
            .any(|s| s.label.ends_with("(host fallback)")),
        "the diverted copy ran on the H2D engine"
    );
}

#[test]
fn peer_accounting_and_fifo_properties() {
    // Property sweep (seeded): device 0 seeds the array, every other
    // device pulls a random partition of it peer-to-peer. Checks, per
    // run: (1) per-device peer-byte accounting sums to exactly twice
    // the total peer traffic (each byte leaves one device and enters
    // another); (2) peer spans on one engine never overlap (FIFO);
    // (3) the host round-trip stays bit-identical.
    for seed in 0..12u64 {
        let mut prng = Prng::new(seed);
        let k = prng.range(2, 5);
        let n = prng.range(4, 33) * 128;
        let mut rt = runtime_n(k);
        let a = rt.host_array("A", n);
        rt.fill_host(a, |i| (i as f64 * 0.75) - 3.0);
        let reference = rt.snapshot_host(a);
        let mut expected = 0u64;
        rt.run(|s| {
            TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
            for d in 1..k as u32 {
                TargetEnterData::device(d).map(alloc(a, 0..n)).launch(s)?;
            }
            for d in 1..k as u32 {
                // A random partition of [0, n) into 1..=4 pieces.
                let pieces = prng.range(1, 5);
                let mut cuts: Vec<usize> = (0..pieces - 1).map(|_| prng.range(1, n)).collect();
                cuts.push(0);
                cuts.push(n);
                cuts.sort_unstable();
                cuts.dedup();
                for w in cuts.windows(2) {
                    TargetUpdate::device(d)
                        .to(a.section(w[0]..w[1]))
                        .exchange(ExchangeMode::Auto)
                        .nowait()
                        .launch(s)?;
                    expected += (w[1] - w[0]) as u64 * 8;
                }
            }
            s.drain_all()?;
            for d in 1..k as u32 {
                TargetUpdate::device(d).from(a.section(0..n)).launch(s)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(rt.snapshot_host(a), reference, "seed {seed}");
        let records = rt.peer_copies();
        assert!(records.iter().all(|r| !r.diverted), "seed {seed}");
        let total: u64 = records.iter().map(|r| r.bytes).sum();
        assert_eq!(total, expected, "seed {seed}");
        let tl = rt.timeline();
        let devices: Vec<u32> = (0..k as u32).collect();
        let profiles = profile_window(tl.spans(), &devices, tl.start(), tl.end());
        let in_sum: u64 = profiles.iter().map(|p| p.peer_in_bytes).sum();
        let out_sum: u64 = profiles.iter().map(|p| p.peer_out_bytes).sum();
        assert_eq!(in_sum, total, "seed {seed}: every peer byte arrives once");
        assert_eq!(out_sum, total, "seed {seed}: every peer byte leaves once");
        assert_eq!(in_sum + out_sum, 2 * total, "seed {seed}");
        // FIFO: per destination engine, peer spans are disjoint in time.
        for d in &devices {
            let mut spans: Vec<_> = tl
                .spans()
                .iter()
                .filter(|s| {
                    s.kind == SpanKind::PeerCopy
                        && s.lane.engine() == Some(EngineKind::PeerCopy)
                        && s.lane.device() == Some(*d)
                })
                .collect();
            spans.sort_by_key(|s| s.start);
            for w in spans.windows(2) {
                assert!(
                    w[1].start >= w[0].end,
                    "seed {seed}: overlapping peer spans on device {d}"
                );
            }
        }
        let _: SimTime = tl.end();
    }
}
