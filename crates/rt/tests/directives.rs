//! End-to-end tests of the baseline `target` directive family: real data
//! moves through simulated devices and kernels really execute.

// Sequential reference loops mirror the offloaded kernels index-for-index.
#![allow(clippy::needless_range_loop)]

use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_trace::SpanKind;

fn runtime() -> Runtime {
    runtime_mem(1 << 22)
}

fn runtime_mem(mem_bytes: u64) -> Runtime {
    let topo = Topology::uniform(2, DeviceSpec::v100().with_mem_bytes(mem_bytes), 1e9, 1.5e9);
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
}

/// The paper's Listing 2: a 3-point stencil through a combined target
/// directive. B[i] = A[i-1] + A[i] + A[i+1].
fn stencil_kernel(a: HostArray, b: HostArray) -> KernelSpec {
    KernelSpec::new("stencil", 2.0, |chunk, v| {
        for i in chunk {
            let s = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
            v.set(1, i, s);
        }
    })
    .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
    .arg(KernelArg::write(b, |r| r))
}

#[test]
fn listing2_target_combined_stencil() {
    let mut rt = runtime();
    let n = 1000;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        Target::device(0)
            .num_teams(2)
            .map(to(a, 0..n))
            .map(from(b, 1..n - 1))
            .parallel_for(s, 1..n - 1, stencil_kernel(a, b))?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 1..n - 1 {
        assert_eq!(out[i], 3.0 * i as f64, "B[{i}]");
    }
    assert_eq!(out[0], 0.0, "outside the from-map untouched");
    assert!(rt.races().is_empty());
    assert!(rt.elapsed().as_nanos() > 0, "virtual time advanced");
    // All mappings released: device memory is clean.
    assert_eq!(rt.device_mem_used(0), 0);
}

#[test]
fn enter_exit_data_roundtrip() {
    let mut rt = runtime();
    let n = 256;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| (i * i) as f64);
    rt.run(|s| {
        TargetEnterData::device(1).map(to(a, 0..n)).launch(s)?;
        // Mutate the host; device copy must be stale-read later.
        s.fill_host(a, |_| -1.0);
        // Kernel adds 1 to the *device* copy.
        Target::device(1)
            .map(to(a, 0..n)) // already present: no copy
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("inc", 1.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(0, i, x + 1.0);
                    }
                })
                .arg(KernelArg::read_write(a, |r| r)),
            )?;
        TargetExitData::device(1).map(from(a, 0..n)).launch(s)?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], (i * i) as f64 + 1.0, "A[{i}] came from the device");
    }
    assert_eq!(rt.device_mem_used(1), 0);
}

#[test]
fn target_update_refreshes_both_ways() {
    let mut rt = runtime();
    let n = 64;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
        // Host changes; push them down with update-to.
        s.fill_host(a, |i| 100.0 + i as f64);
        TargetUpdate::device(0).to(a.section(0..n)).launch(s)?;
        // Device doubles.
        Target::device(0).map(to(a, 0..n)).parallel_for(
            s,
            0..n,
            KernelSpec::new("dbl", 1.0, |chunk, v| {
                for i in chunk {
                    let x = v.get(0, i);
                    v.set(0, i, 2.0 * x);
                }
            })
            .arg(KernelArg::read_write(a, |r| r)),
        )?;
        // Clobber host, then pull back with update-from.
        s.fill_host(a, |_| 0.0);
        TargetUpdate::device(0).from(a.section(0..n)).launch(s)?;
        TargetExitData::device(0)
            .map(spread_rt::map::release(a, 0..n))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], 2.0 * (100.0 + i as f64));
    }
}

#[test]
fn target_data_structured_region() {
    let mut rt = runtime();
    let n = 128;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64 + 1.0);
    rt.run(|s| {
        TargetData::device(0)
            .map(to(a, 0..n))
            .map(from(b, 0..n))
            .region(s, |s| {
                Target::device(0)
                    .map(to(a, 0..n))
                    .map(from(b, 0..n))
                    .parallel_for(
                        s,
                        0..n,
                        KernelSpec::new("sq", 1.0, |chunk, v| {
                            for i in chunk {
                                let x = v.get(0, i);
                                v.set(1, i, x * x);
                            }
                        })
                        .arg(KernelArg::read(a, |r| r))
                        .arg(KernelArg::write(b, |r| r)),
                    )?;
                Ok(())
            })
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 0..n {
        assert_eq!(out[i], ((i + 1) * (i + 1)) as f64);
    }
    assert_eq!(rt.device_mem_used(0), 0, "structured region fully released");
}

#[test]
fn refcount_inner_region_does_not_retransfer() {
    let mut rt = runtime();
    let n = 64;
    let a = rt.host_array("A", n);
    rt.run(|s| {
        TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?;
        TargetEnterData::device(0).map(to(a, 0..n)).launch(s)?; // refcount 2
        TargetExitData::device(0).map(from(a, 0..n)).launch(s)?; // keep
        Ok(())
    })
    .unwrap();
    // Still mapped (refcount 1).
    assert!(rt.device_mem_used(0) > 0);
    let tl = rt.timeline();
    // Exactly one H2D (second enter reused) and zero D2H (non-final exit).
    let h2d = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::TransferIn)
        .count();
    let d2h = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::TransferOut)
        .count();
    assert_eq!((h2d, d2h), (1, 0));
}

#[test]
fn nowait_plus_taskgroup_runs_concurrently() {
    let mut rt = runtime();
    let n = 1 << 16;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterData::device(0)
                .map(to(a, 0..n))
                .nowait()
                .launch(s)
                .unwrap();
            TargetEnterData::device(1)
                .map(to(b, 0..n))
                .nowait()
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    let tl = rt.timeline();
    let spans: Vec<_> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::TransferIn)
        .collect();
    assert_eq!(spans.len(), 2);
    // The two transfers to different devices overlapped in virtual time.
    assert!(
        spans[0].overlaps_window(spans[1].start, spans[1].end),
        "nowait transfers should overlap: {:?} vs {:?}",
        spans[0],
        spans[1]
    );
}

#[test]
fn depend_chain_serializes_kernels() {
    let mut rt = runtime();
    let n = 1024;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |_| 1.0);
    rt.run(|s| {
        s.taskgroup(|s| {
            // k1: B = A + 1 (out B)
            Target::device(0)
                .map(to(a, 0..n))
                .map(tofrom(b, 0..n))
                .nowait()
                .depend_out(b.full())
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("k1", 1.0, |chunk, v| {
                        for i in chunk {
                            let x = v.get(0, i);
                            v.set(1, i, x + 1.0);
                        }
                    })
                    .arg(KernelArg::read(a, |r| r))
                    .arg(KernelArg::write(b, |r| r)),
                )
                .unwrap();
            // k2: B *= 3 (in+out B) — must run after k1.
            Target::device(0)
                .map(tofrom(b, 0..n))
                .nowait()
                .depend_in(b.full())
                .depend_out(b.full())
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("k2", 1.0, |chunk, v| {
                        for i in chunk {
                            let x = v.get(0, i);
                            v.set(0, i, 3.0 * x);
                        }
                    })
                    .arg(KernelArg::read_write(b, |r| r)),
                )
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    assert!(out.iter().all(|&x| x == 6.0), "k1 then k2: (1+1)*3");
    assert!(rt.races().is_empty(), "depend-ordered kernels don't race");
}

#[test]
fn oom_is_reported() {
    let mut rt = runtime_mem(1024); // 128 elements
    let a = rt.host_array("A", 1000);
    let err = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..1000)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    match err {
        RtError::OutOfMemory { device, bytes, .. } => {
            assert_eq!(device, 0);
            assert_eq!(bytes, 8000);
        }
        other => panic!("expected OOM, got {other}"),
    }
}

/// Regression: a *partial* enter (some items mapped, a later one OOMs)
/// must roll back its fresh inserts and dropped reuses and report the
/// OOM — it once self-deadlocked on the presence shard's lock because
/// the rollback re-locked the shard inside a `match` whose scrutinee
/// still held the write guard.
#[test]
fn partial_enter_oom_rolls_back_and_reports() {
    let mut rt = runtime_mem(1024); // 128 elements
    let a = rt.host_array("A", 100);
    let b = rt.host_array("B", 1000);
    let err = rt
        .run(|s| {
            // A is resident (refcount 1), so the failing enter below
            // first *reuses* A, then freshly maps part of B, then OOMs —
            // exercising both rollback lists.
            TargetEnterData::device(0).map(to(a, 0..100)).launch(s)?;
            TargetEnterData::device(0)
                .map(to(a, 0..100))
                .map(to(b, 0..20))
                .map(to(b, 100..1000))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::OutOfMemory { device: 0, .. }));
    // The rollback undid the partial enter: only the original mapping
    // of A survives, and its refcount is back to 1.
    let mapped = rt.mapped_sections(0);
    assert_eq!(
        mapped.len(),
        1,
        "only A's first mapping remains: {mapped:?}"
    );
    assert_eq!(mapped[0].1, 1, "A's extra reuse reference was dropped");
    assert_eq!(rt.device_mem_used(0), 800, "B's fresh chunk was freed");
}

#[test]
fn overlap_extension_is_reported() {
    let mut rt = runtime();
    let a = rt.host_array("A", 1000);
    let err = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..100)).launch(s)?;
            TargetEnterData::device(0).map(to(a, 50..150)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::OverlapExtension { device: 0, .. }));
}

#[test]
fn exit_of_unmapped_is_reported() {
    let mut rt = runtime();
    let a = rt.host_array("A", 100);
    let err = rt
        .run(|s| {
            TargetExitData::device(0).map(from(a, 0..100)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::NotMapped { .. }));
}

#[test]
fn kernel_on_unmapped_section_is_reported() {
    let mut rt = runtime();
    let a = rt.host_array("A", 100);
    let err = rt
        .run(|s| {
            Target::device(0)
                // No map clause at all — kernel resolution must fail.
                .parallel_for(
                    s,
                    0..100,
                    KernelSpec::new("orphan", 1.0, |_c, _v| {}).arg(KernelArg::read(a, |r| r)),
                )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::KernelSectionMissing { .. }));
}

#[test]
fn unknown_device_is_reported() {
    let mut rt = runtime();
    let a = rt.host_array("A", 10);
    let err = rt
        .run(|s| {
            TargetEnterData::device(7).map(to(a, 0..10)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)));
}

#[test]
fn race_detector_flags_unordered_conflicts() {
    let mut rt = runtime();
    let n = 1 << 16;
    let a = rt.host_array("A", n);
    rt.run(|s| {
        s.taskgroup(|s| {
            // Two concurrent enters on *different devices* both reading
            // host A — fine. But make one exit writing host A while the
            // other reads it: flagged.
            TargetEnterData::device(0)
                .map(to(a, 0..n))
                .nowait()
                .launch(s)
                .unwrap();
        })?;
        s.taskgroup(|s| {
            TargetExitData::device(0)
                .map(from(a, 0..n))
                .nowait()
                .launch(s)
                .unwrap();
            TargetEnterData::device(1)
                .map(to(a, 0..n))
                .nowait()
                .launch(s)
                .unwrap();
            Ok::<(), RtError>(())
        })??;
        Ok(())
    })
    .unwrap();
    let races = rt.races();
    assert!(
        !races.is_empty(),
        "D2H writing host A while H2D reads it must be flagged"
    );
}

#[test]
fn kernels_on_two_devices_run_concurrently() {
    let mut rt = runtime();
    let n = 1 << 14;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.run(|s| {
        s.taskgroup(|s| {
            for (dev, arr) in [(0u32, a), (1u32, b)] {
                Target::device(dev)
                    .map(tofrom(arr, 0..n))
                    .nowait()
                    .parallel_for(
                        s,
                        0..n,
                        KernelSpec::new(format!("fill{dev}"), 10.0, move |chunk, v| {
                            for i in chunk {
                                v.set(0, i, dev as f64 + 1.0);
                            }
                        })
                        .arg(KernelArg::write(arr, |r| r)),
                    )
                    .unwrap();
            }
        })?;
        Ok(())
    })
    .unwrap();
    assert!(rt.snapshot_host(a).iter().all(|&x| x == 1.0));
    assert!(rt.snapshot_host(b).iter().all(|&x| x == 2.0));
    let tl = rt.timeline();
    let kernels: Vec<_> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel)
        .collect();
    assert_eq!(kernels.len(), 2);
    assert!(
        kernels[0].overlaps_window(kernels[1].start, kernels[1].end),
        "kernels on different devices overlap in virtual time"
    );
}
