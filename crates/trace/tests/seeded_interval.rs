//! Seeded property tests for the interval-set algebra (deterministic
//! `spread_prng` loops; offline-friendly).

use spread_prng::Prng;
use spread_trace::{IntervalSet, SimTime};

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

fn raw_intervals(r: &mut Prng) -> Vec<(u64, u64)> {
    let n = r.range(0, 20);
    (0..n).map(|_| (r.below(1000), r.below(1000))).collect()
}

fn make(ivs: &[(u64, u64)]) -> IntervalSet {
    IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| (t(a.min(b)), t(a.max(b)))))
}

/// Normalization invariant: sorted, disjoint, non-adjacent, non-empty.
#[test]
fn normalized_form() {
    let mut r = Prng::new(0x1u64);
    for _ in 0..256 {
        let ivs = raw_intervals(&mut r);
        let s = make(&ivs);
        let v = s.intervals();
        for w in v.windows(2) {
            assert!(w[0].1 < w[1].0, "not disjoint/sorted: {v:?}");
        }
        for &(a, b) in v {
            assert!(a < b, "empty interval survived");
        }
    }
}

/// Membership agrees with the raw input.
#[test]
fn contains_matches_raw() {
    let mut r = Prng::new(0x2u64);
    for _ in 0..256 {
        let ivs = raw_intervals(&mut r);
        let probe = r.below(1000);
        let s = make(&ivs);
        let raw_hit = ivs.iter().any(|&(a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            probe >= lo && probe < hi
        });
        assert_eq!(s.contains(t(probe)), raw_hit, "ivs={ivs:?} probe={probe}");
    }
}

/// |A ∪ B| + |A ∩ B| = |A| + |B| (inclusion–exclusion on measures).
#[test]
fn inclusion_exclusion() {
    let mut r = Prng::new(0x3u64);
    for _ in 0..256 {
        let a = raw_intervals(&mut r);
        let b = raw_intervals(&mut r);
        let sa = make(&a);
        let sb = make(&b);
        let union = sa.union(&sb).total().as_nanos();
        let inter = sa.intersect(&sb).total().as_nanos();
        assert_eq!(
            union + inter,
            sa.total().as_nanos() + sb.total().as_nanos(),
            "a={a:?} b={b:?}"
        );
    }
}

/// Intersection commutes.
#[test]
fn intersection_commutes() {
    let mut r = Prng::new(0x4u64);
    for _ in 0..256 {
        let a = raw_intervals(&mut r);
        let b = raw_intervals(&mut r);
        let sa = make(&a);
        let sb = make(&b);
        assert_eq!(sa.intersect(&sb), sb.intersect(&sa), "a={a:?} b={b:?}");
    }
}

/// Complement within a window partitions the window.
#[test]
fn complement_partitions_window() {
    let mut r = Prng::new(0x5u64);
    for _ in 0..256 {
        let ivs = raw_intervals(&mut r);
        let w0 = r.below(1000);
        let len = r.below(1000);
        let s = make(&ivs);
        let (t0, t1) = (t(w0), t(w0 + len));
        let inside = s.clip(t0, t1);
        let outside = s.complement_within(t0, t1);
        assert_eq!(
            inside.total().as_nanos() + outside.total().as_nanos(),
            len,
            "ivs={ivs:?} w0={w0} len={len}"
        );
        assert!(inside.intersect(&outside).is_empty());
    }
}

/// Incremental insert equals batch construction.
#[test]
fn insert_equals_batch() {
    let mut r = Prng::new(0x6u64);
    for _ in 0..256 {
        let ivs = raw_intervals(&mut r);
        let batch = make(&ivs);
        let mut inc = IntervalSet::new();
        for &(a, b) in &ivs {
            inc.insert(t(a.min(b)), t(a.max(b)));
        }
        assert_eq!(batch, inc, "ivs={ivs:?}");
    }
}

/// Union is idempotent and monotone in measure.
#[test]
fn union_properties() {
    let mut r = Prng::new(0x7u64);
    for _ in 0..256 {
        let a = raw_intervals(&mut r);
        let b = raw_intervals(&mut r);
        let sa = make(&a);
        let sb = make(&b);
        let u = sa.union(&sb);
        assert_eq!(u.union(&sa), u.clone(), "a={a:?} b={b:?}");
        assert!(u.total() >= sa.total());
        assert!(u.total() >= sb.total());
    }
}
