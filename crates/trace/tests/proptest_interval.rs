//! Property tests for the interval-set algebra.

use proptest::prelude::*;
use spread_trace::{IntervalSet, SimTime};

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

fn raw_intervals() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1000, 0u64..1000), 0..20)
}

fn make(ivs: &[(u64, u64)]) -> IntervalSet {
    IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| (t(a.min(b)), t(a.max(b)))))
}

proptest! {
    /// Normalization invariant: sorted, disjoint, non-adjacent, non-empty.
    #[test]
    fn normalized_form(ivs in raw_intervals()) {
        let s = make(&ivs);
        let v = s.intervals();
        for w in v.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "not disjoint/sorted: {:?}", v);
        }
        for &(a, b) in v {
            prop_assert!(a < b, "empty interval survived");
        }
    }

    /// Membership agrees with the raw input.
    #[test]
    fn contains_matches_raw(ivs in raw_intervals(), probe in 0u64..1000) {
        let s = make(&ivs);
        let raw_hit = ivs.iter().any(|&(a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            probe >= lo && probe < hi
        });
        prop_assert_eq!(s.contains(t(probe)), raw_hit);
    }

    /// |A ∪ B| + |A ∩ B| = |A| + |B| (inclusion–exclusion on measures).
    #[test]
    fn inclusion_exclusion(a in raw_intervals(), b in raw_intervals()) {
        let sa = make(&a);
        let sb = make(&b);
        let union = sa.union(&sb).total().as_nanos();
        let inter = sa.intersect(&sb).total().as_nanos();
        prop_assert_eq!(
            union + inter,
            sa.total().as_nanos() + sb.total().as_nanos()
        );
    }

    /// Intersection commutes.
    #[test]
    fn intersection_commutes(a in raw_intervals(), b in raw_intervals()) {
        let sa = make(&a);
        let sb = make(&b);
        prop_assert_eq!(sa.intersect(&sb), sb.intersect(&sa));
    }

    /// Complement within a window partitions the window.
    #[test]
    fn complement_partitions_window(
        ivs in raw_intervals(),
        w0 in 0u64..1000,
        len in 0u64..1000,
    ) {
        let s = make(&ivs);
        let (t0, t1) = (t(w0), t(w0 + len));
        let inside = s.clip(t0, t1);
        let outside = s.complement_within(t0, t1);
        prop_assert_eq!(
            inside.total().as_nanos() + outside.total().as_nanos(),
            len
        );
        prop_assert!(inside.intersect(&outside).is_empty());
    }

    /// Incremental insert equals batch construction.
    #[test]
    fn insert_equals_batch(ivs in raw_intervals()) {
        let batch = make(&ivs);
        let mut inc = IntervalSet::new();
        for &(a, b) in &ivs {
            inc.insert(t(a.min(b)), t(a.max(b)));
        }
        prop_assert_eq!(batch, inc);
    }

    /// Union is idempotent and monotone in measure.
    #[test]
    fn union_properties(a in raw_intervals(), b in raw_intervals()) {
        let sa = make(&a);
        let sb = make(&b);
        let u = sa.union(&sb);
        prop_assert_eq!(u.union(&sa), u.clone());
        prop_assert!(u.total() >= sa.total());
        prop_assert!(u.total() >= sb.total());
    }
}
