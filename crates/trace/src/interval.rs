//! Interval-set algebra over virtual time.
//!
//! The analyses in this crate ("how much kernel time overlapped transfer
//! time?", "when was the device idle?") reduce to set operations on unions
//! of half-open intervals `[start, end)`. [`IntervalSet`] keeps a sorted,
//! disjoint, coalesced representation and offers union, intersection,
//! complement-within-a-window, and total length.

use crate::time::{SimDuration, SimTime};

/// A normalized set of half-open intervals `[start, end)`:
/// sorted by start, pairwise disjoint, no empty or adjacent intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    ivs: Vec<(SimTime, SimTime)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Build from arbitrary (possibly overlapping, unsorted, empty)
    /// intervals.
    pub fn from_intervals<I>(intervals: I) -> Self
    where
        I: IntoIterator<Item = (SimTime, SimTime)>,
    {
        let mut ivs: Vec<_> = intervals.into_iter().filter(|(s, e)| e > s).collect();
        ivs.sort();
        let mut out: Vec<(SimTime, SimTime)> = Vec::with_capacity(ivs.len());
        for (s, e) in ivs {
            match out.last_mut() {
                Some((_, last_e)) if s <= *last_e => {
                    *last_e = (*last_e).max(e);
                }
                _ => out.push((s, e)),
            }
        }
        IntervalSet { ivs: out }
    }

    /// Insert one interval (normalizing as needed).
    pub fn insert(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        // Cheap fast path: appending past the current end.
        if let Some((_, last_e)) = self.ivs.last_mut() {
            if start > *last_e {
                self.ivs.push((start, end));
                return;
            }
            if start == *last_e {
                *last_e = (*last_e).max(end);
                return;
            }
        } else {
            self.ivs.push((start, end));
            return;
        }
        let mut all = std::mem::take(&mut self.ivs);
        all.push((start, end));
        *self = IntervalSet::from_intervals(all);
    }

    /// The normalized intervals.
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.ivs
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Sum of interval lengths.
    pub fn total(&self) -> SimDuration {
        self.ivs.iter().map(|&(s, e)| e - s).sum()
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.ivs.iter().chain(other.ivs.iter()).copied())
    }

    /// Set intersection (linear merge over both sorted lists).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ivs.len() && j < other.ivs.len() {
            let (a_s, a_e) = self.ivs[i];
            let (b_s, b_e) = other.ivs[j];
            let s = a_s.max(b_s);
            let e = a_e.min(b_e);
            if e > s {
                out.push((s, e));
            }
            if a_e <= b_e {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// The parts of `[t0, t1)` *not* covered by this set (i.e. idle time).
    pub fn complement_within(&self, t0: SimTime, t1: SimTime) -> IntervalSet {
        if t1 <= t0 {
            return IntervalSet::new();
        }
        let mut out = Vec::new();
        let mut cursor = t0;
        for &(s, e) in &self.ivs {
            if e <= t0 {
                continue;
            }
            if s >= t1 {
                break;
            }
            let s = s.max(t0);
            if s > cursor {
                out.push((cursor, s));
            }
            cursor = cursor.max(e.min(t1));
        }
        if cursor < t1 {
            out.push((cursor, t1));
        }
        IntervalSet { ivs: out }
    }

    /// Restrict the set to the window `[t0, t1)`.
    pub fn clip(&self, t0: SimTime, t1: SimTime) -> IntervalSet {
        let window = IntervalSet::from_intervals([(t0, t1)]);
        self.intersect(&window)
    }

    /// True if instant `t` is covered.
    pub fn contains(&self, t: SimTime) -> bool {
        self.ivs
            .binary_search_by(|&(s, e)| {
                if t < s {
                    std::cmp::Ordering::Greater
                } else if t >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn set(ivs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(ivs.iter().map(|&(s, e)| (t(s), t(e))))
    }

    #[test]
    fn normalization_merges_overlaps_and_adjacency() {
        let s = set(&[(5, 10), (0, 3), (3, 5), (20, 25), (24, 30), (7, 7)]);
        assert_eq!(s.intervals(), &[(t(0), t(10)), (t(20), t(30))]);
        assert_eq!(s.total().as_nanos(), 20);
    }

    #[test]
    fn empty_intervals_dropped() {
        let s = set(&[(5, 5), (10, 3)]);
        assert!(s.is_empty());
        assert_eq!(s.total(), SimDuration::ZERO);
    }

    #[test]
    fn insert_fast_path_and_merge() {
        let mut s = IntervalSet::new();
        s.insert(t(0), t(10));
        s.insert(t(20), t(30)); // append
        s.insert(t(30), t(35)); // adjacent extend
        s.insert(t(5), t(22)); // forces renormalization
        assert_eq!(s.intervals(), &[(t(0), t(35))]);
    }

    #[test]
    fn intersection() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.intersect(&b), set(&[(5, 10), (20, 25)]));
        assert_eq!(b.intersect(&a), set(&[(5, 10), (20, 25)]));
        assert!(a.intersect(&IntervalSet::new()).is_empty());
    }

    #[test]
    fn union_and_total() {
        let a = set(&[(0, 10)]);
        let b = set(&[(5, 15), (20, 21)]);
        let u = a.union(&b);
        assert_eq!(u, set(&[(0, 15), (20, 21)]));
        assert_eq!(u.total().as_nanos(), 16);
    }

    #[test]
    fn complement_within_window() {
        let a = set(&[(5, 10), (20, 30)]);
        let c = a.complement_within(t(0), t(25));
        assert_eq!(c, set(&[(0, 5), (10, 20)]));
        // Window fully covered
        let c2 = a.complement_within(t(6), t(9));
        assert!(c2.is_empty());
        // Empty window
        assert!(a.complement_within(t(9), t(9)).is_empty());
        // Window past everything
        assert_eq!(a.complement_within(t(40), t(50)), set(&[(40, 50)]));
    }

    #[test]
    fn clip() {
        let a = set(&[(0, 10), (20, 30)]);
        assert_eq!(a.clip(t(5), t(25)), set(&[(5, 10), (20, 25)]));
    }

    #[test]
    fn contains() {
        let a = set(&[(5, 10), (20, 30)]);
        assert!(!a.contains(t(4)));
        assert!(a.contains(t(5)));
        assert!(a.contains(t(9)));
        assert!(!a.contains(t(10))); // half-open
        assert!(a.contains(t(29)));
        assert!(!a.contains(t(30)));
    }
}
