//! Quantitative trace analyses.
//!
//! These compute the observations the paper draws from its nsys traces:
//!
//! * §VI-B / Figure 3: "execution time was mainly dominated by memory
//!   transfers and not by kernel computations" → [`LaneStats`] /
//!   [`OverlapReport::transfer_fraction`].
//! * Figure 4: "kernel computations were interleaved with data transfers
//!   from a different buffer", "overlap of computation and transfers
//!   happened in very rare occasions", "transfers from different buffers
//!   did not overlap" → [`InterleaveStats`] and
//!   [`ConcurrencyProfile`].

use std::collections::BTreeMap;

use crate::interval::IntervalSet;
use crate::span::{Lane, SpanKind};
use crate::time::{SimDuration, SimTime};
use crate::timeline::Timeline;

/// Busy/idle accounting for one lane.
#[derive(Clone, Debug)]
pub struct LaneStats {
    /// The lane.
    pub lane: Lane,
    /// Number of spans.
    pub spans: usize,
    /// Total busy time (union of spans).
    pub busy: SimDuration,
    /// Idle time within `[timeline.start(), timeline.end())`.
    pub idle: SimDuration,
    /// Bytes moved (transfers only).
    pub bytes: u64,
}

/// Compute [`LaneStats`] for every lane in the timeline.
pub fn lane_stats(tl: &Timeline) -> Vec<LaneStats> {
    let (t0, t1) = (tl.start(), tl.end());
    tl.lanes()
        .into_iter()
        .map(|lane| {
            let busy_set = tl.lane_busy(lane);
            let busy = busy_set.total();
            let idle = busy_set.complement_within(t0, t1).total();
            let spans = tl.lane_spans(lane);
            LaneStats {
                lane,
                spans: spans.len(),
                busy,
                idle,
                bytes: spans.iter().map(|s| s.bytes).sum(),
            }
        })
        .collect()
}

/// Per-device transfer/compute overlap accounting.
#[derive(Clone, Debug)]
pub struct OverlapReport {
    /// Device id.
    pub device: u32,
    /// Time the device spent computing (union of kernel spans).
    pub compute: SimDuration,
    /// Time the device spent transferring (union of both copy engines).
    pub transfer: SimDuration,
    /// Time where compute and transfer were simultaneously active on this
    /// device — the "overlap" the Two Buffers / Double Buffering versions
    /// hope to create.
    pub overlap: SimDuration,
    /// Time where the device did *something* (compute ∪ transfer).
    pub active: SimDuration,
}

impl OverlapReport {
    /// Fraction of active time spent in transfers: the paper's
    /// "transfers dominate" observation is `transfer_fraction > 0.5`.
    pub fn transfer_fraction(&self) -> f64 {
        if self.active.is_zero() {
            return 0.0;
        }
        self.transfer.as_secs_f64() / self.active.as_secs_f64()
    }

    /// Fraction of compute time that overlapped a transfer
    /// ("overlap happened in very rare occasions" → small value).
    pub fn overlap_fraction(&self) -> f64 {
        if self.compute.is_zero() {
            return 0.0;
        }
        self.overlap.as_secs_f64() / self.compute.as_secs_f64()
    }
}

/// Compute an [`OverlapReport`] per device.
pub fn overlap_report(tl: &Timeline) -> Vec<OverlapReport> {
    tl.devices()
        .into_iter()
        .map(|device| {
            let compute_set = tl.device_kind_busy(device, |k| k == SpanKind::Kernel);
            let transfer_set = tl.device_kind_busy(device, SpanKind::is_transfer);
            let overlap = compute_set.intersect(&transfer_set).total();
            let active = compute_set.union(&transfer_set).total();
            OverlapReport {
                device,
                compute: compute_set.total(),
                transfer: transfer_set.total(),
                overlap,
                active,
            }
        })
        .collect()
}

/// Interleaving statistics for one device: how kernel executions and
/// transfers alternate in time (Figure 4's single-GPU zoom).
#[derive(Clone, Debug)]
pub struct InterleaveStats {
    /// Device id.
    pub device: u32,
    /// Number of kernel spans.
    pub kernels: usize,
    /// Number of transfer spans.
    pub transfers: usize,
    /// Number of kind changes in the start-ordered activity sequence
    /// (kernel→transfer or transfer→kernel). High alternation with low
    /// overlap = the paper's "interleaved, not overlapped".
    pub alternations: usize,
    /// Longest run of consecutive kernel spans. The paper notes the five
    /// Somier kernels were *not* executed back-to-back in the buffered
    /// versions (runs shorter than 5).
    pub longest_kernel_run: usize,
}

/// Compute interleave statistics per device.
pub fn interleave_stats(tl: &Timeline) -> Vec<InterleaveStats> {
    tl.devices()
        .into_iter()
        .map(|device| {
            // Start-ordered sequence of activity kinds on this device.
            let mut seq: Vec<(SimTime, bool)> = tl
                .spans()
                .iter()
                .filter(|s| s.lane.device() == Some(device))
                .filter(|s| s.kind == SpanKind::Kernel || s.kind.is_transfer())
                .map(|s| (s.start, s.kind == SpanKind::Kernel))
                .collect();
            seq.sort();
            let kernels = seq.iter().filter(|&&(_, k)| k).count();
            let transfers = seq.len() - kernels;
            let mut alternations = 0usize;
            let mut longest_kernel_run = 0usize;
            let mut run = 0usize;
            for w in 0..seq.len() {
                let is_kernel = seq[w].1;
                if w > 0 && seq[w - 1].1 != is_kernel {
                    alternations += 1;
                }
                if is_kernel {
                    run += 1;
                    longest_kernel_run = longest_kernel_run.max(run);
                } else {
                    run = 0;
                }
            }
            InterleaveStats {
                device,
                kernels,
                transfers,
                alternations,
                longest_kernel_run,
            }
        })
        .collect()
}

/// Time-weighted distribution of how many spans of a given class were
/// active simultaneously.
///
/// `concurrency_profile(tl, is_transfer)` answers "for how long were k
/// transfers in flight at once?" — the paper's "transfers from different
/// buffers did not overlap" means the per-device H2D profile puts ~all
/// mass at k ≤ 1.
#[derive(Clone, Debug, Default)]
pub struct ConcurrencyProfile {
    /// `time_at[k]` = total virtual time with exactly `k` spans active.
    pub time_at: BTreeMap<usize, SimDuration>,
}

impl ConcurrencyProfile {
    /// Longest-observed concurrency level.
    pub fn max_level(&self) -> usize {
        self.time_at.keys().copied().max().unwrap_or(0)
    }

    /// Total time with at least `k` spans active.
    pub fn time_at_least(&self, k: usize) -> SimDuration {
        self.time_at
            .iter()
            .filter(|&(&level, _)| level >= k)
            .map(|(_, &d)| d)
            .sum()
    }
}

/// Build a concurrency profile over the spans selected by `pred`,
/// measured across the whole timeline extent.
pub fn concurrency_profile(
    tl: &Timeline,
    pred: impl Fn(&crate::span::Span) -> bool,
) -> ConcurrencyProfile {
    // Sweep line over span starts (+1) and ends (-1).
    let mut events: Vec<(SimTime, i32)> = Vec::new();
    for s in tl.spans().iter().filter(|s| pred(s)) {
        if s.end > s.start {
            events.push((s.start, 1));
            events.push((s.end, -1));
        }
    }
    if events.is_empty() {
        return ConcurrencyProfile::default();
    }
    events.sort();
    let mut profile: BTreeMap<usize, SimDuration> = BTreeMap::new();
    let mut level: i32 = 0;
    let mut cursor = events[0].0;
    let mut i = 0usize;
    while i < events.len() {
        let t = events[i].0;
        if t > cursor {
            *profile.entry(level as usize).or_default() += t - cursor;
            cursor = t;
        }
        // Apply every event at this instant before measuring again.
        while i < events.len() && events[i].0 == t {
            level += events[i].1;
            i += 1;
        }
    }
    debug_assert_eq!(level, 0);
    ConcurrencyProfile { time_at: profile }
}

/// Union of idle intervals across all engines of a device — the "gaps in
/// time where some of the devices remain idle" the paper's future-work
/// section wants to eliminate with `depend` on data-spread directives.
pub fn device_idle(tl: &Timeline, device: u32) -> IntervalSet {
    let active = tl.device_kind_busy(device, |_| true);
    active.complement_within(tl.start(), tl.end())
}

/// One bucket of the achieved-bandwidth timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthSample {
    /// Bucket start.
    pub t: SimTime,
    /// Aggregate host→device bandwidth achieved in the bucket (bytes/s).
    pub h2d: f64,
    /// Aggregate device→host bandwidth (bytes/s).
    pub d2h: f64,
}

/// The achieved aggregate transfer bandwidth over time, in fixed-width
/// buckets. Each transfer's bytes are attributed uniformly across its
/// lifetime, so the series integrates back to the total bytes moved —
/// this is the saturation plot behind the paper's "communication
/// bottleneck" claim (§VI-A).
pub fn bandwidth_timeline(tl: &Timeline, bucket: SimDuration) -> Vec<BandwidthSample> {
    assert!(!bucket.is_zero(), "bucket width must be positive");
    let (t0, t1) = (tl.start(), tl.end());
    if t1 <= t0 {
        return Vec::new();
    }
    let width = bucket.as_secs_f64();
    let n_buckets = ((t1 - t0).as_secs_f64() / width).ceil() as usize;
    let mut h2d = vec![0.0f64; n_buckets];
    let mut d2h = vec![0.0f64; n_buckets];
    for s in tl.spans() {
        let sink = match s.kind {
            SpanKind::TransferIn => &mut h2d,
            SpanKind::TransferOut => &mut d2h,
            _ => continue,
        };
        let dur = s.duration().as_secs_f64();
        if dur <= 0.0 {
            continue;
        }
        let rate = s.bytes as f64 / dur;
        let s0 = (s.start - t0).as_secs_f64();
        let s1 = (s.end - t0).as_secs_f64();
        let first = (s0 / width) as usize;
        let last = ((s1 / width) as usize).min(n_buckets - 1);
        for (b, slot) in sink.iter_mut().enumerate().take(last + 1).skip(first) {
            let b0 = b as f64 * width;
            let b1 = b0 + width;
            let overlap = (s1.min(b1) - s0.max(b0)).max(0.0);
            *slot += rate * overlap;
        }
    }
    (0..n_buckets)
        .map(|b| BandwidthSample {
            t: t0 + SimDuration::from_secs_f64(b as f64 * width),
            h2d: h2d[b] / width,
            d2h: d2h[b] / width,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, SpanKind, TraceRecorder};
    use crate::timeline::Timeline;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Build the "interleaved, not overlapped" picture from Figure 4:
    /// transfer, kernel, transfer, kernel with no overlap on GPU0.
    fn interleaved() -> Timeline {
        let rec = TraceRecorder::new();
        rec.record(
            Lane::copy_in(0),
            SpanKind::TransferIn,
            "b1",
            t(0),
            t(10),
            80,
        );
        rec.record(
            Lane::compute(0),
            SpanKind::Kernel,
            "forces",
            t(10),
            t(12),
            0,
        );
        rec.record(
            Lane::copy_in(0),
            SpanKind::TransferIn,
            "b2",
            t(12),
            t(22),
            80,
        );
        rec.record(Lane::compute(0), SpanKind::Kernel, "accel", t(22), t(24), 0);
        Timeline::from_recorder(&rec)
    }

    #[test]
    fn overlap_report_no_overlap() {
        let tl = interleaved();
        let reps = overlap_report(&tl);
        assert_eq!(reps.len(), 1);
        let r = &reps[0];
        assert_eq!(r.compute.as_nanos(), 4);
        assert_eq!(r.transfer.as_nanos(), 20);
        assert_eq!(r.overlap.as_nanos(), 0);
        assert!(r.transfer_fraction() > 0.5, "transfers dominate");
        assert_eq!(r.overlap_fraction(), 0.0);
    }

    #[test]
    fn overlap_report_with_overlap() {
        let rec = TraceRecorder::new();
        rec.record(Lane::copy_in(0), SpanKind::TransferIn, "x", t(0), t(10), 0);
        rec.record(Lane::compute(0), SpanKind::Kernel, "k", t(5), t(15), 0);
        let tl = Timeline::from_recorder(&rec);
        let r = &overlap_report(&tl)[0];
        assert_eq!(r.overlap.as_nanos(), 5);
        assert_eq!(r.active.as_nanos(), 15);
        assert!((r.overlap_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interleave_alternations() {
        let tl = interleaved();
        let st = &interleave_stats(&tl)[0];
        assert_eq!(st.kernels, 2);
        assert_eq!(st.transfers, 2);
        assert_eq!(st.alternations, 3); // T K T K
        assert_eq!(st.longest_kernel_run, 1);
    }

    #[test]
    fn kernel_runs_back_to_back() {
        let rec = TraceRecorder::new();
        for i in 0..5 {
            rec.record(
                Lane::compute(0),
                SpanKind::Kernel,
                format!("k{i}"),
                t(i * 10),
                t(i * 10 + 5),
                0,
            );
        }
        let tl = Timeline::from_recorder(&rec);
        let st = &interleave_stats(&tl)[0];
        assert_eq!(st.longest_kernel_run, 5);
        assert_eq!(st.alternations, 0);
    }

    #[test]
    fn concurrency_profile_counts() {
        let rec = TraceRecorder::new();
        rec.record(Lane::copy_in(0), SpanKind::TransferIn, "a", t(0), t(10), 0);
        rec.record(Lane::copy_in(1), SpanKind::TransferIn, "b", t(5), t(15), 0);
        let tl = Timeline::from_recorder(&rec);
        let prof = concurrency_profile(&tl, |s| s.kind.is_transfer());
        assert_eq!(prof.time_at[&1].as_nanos(), 10); // [0,5) and [10,15)
        assert_eq!(prof.time_at[&2].as_nanos(), 5); // [5,10)
        assert_eq!(prof.max_level(), 2);
        assert_eq!(prof.time_at_least(2).as_nanos(), 5);
        assert_eq!(prof.time_at_least(1).as_nanos(), 15);
    }

    #[test]
    fn concurrency_profile_empty() {
        let tl = Timeline::from_spans(vec![]);
        let prof = concurrency_profile(&tl, |_| true);
        assert_eq!(prof.max_level(), 0);
        assert_eq!(prof.time_at_least(1), SimDuration::ZERO);
    }

    #[test]
    fn lane_stats_accounting() {
        let tl = interleaved();
        let stats = lane_stats(&tl);
        let copy_in = stats.iter().find(|s| s.lane == Lane::copy_in(0)).unwrap();
        assert_eq!(copy_in.spans, 2);
        assert_eq!(copy_in.busy.as_nanos(), 20);
        assert_eq!(copy_in.idle.as_nanos(), 4); // [10,12) and [22,24)
        assert_eq!(copy_in.bytes, 160);
    }

    #[test]
    fn bandwidth_timeline_integrates_to_total_bytes() {
        let rec = TraceRecorder::new();
        // 1000 B over [0, 10 ns), 500 B over [5, 15 ns).
        rec.record(
            Lane::copy_in(0),
            SpanKind::TransferIn,
            "a",
            t(0),
            t(10),
            1000,
        );
        rec.record(
            Lane::copy_in(1),
            SpanKind::TransferIn,
            "b",
            t(5),
            t(15),
            500,
        );
        rec.record(
            Lane::copy_out(0),
            SpanKind::TransferOut,
            "c",
            t(10),
            t(15),
            250,
        );
        let tl = Timeline::from_recorder(&rec);
        let series = bandwidth_timeline(&tl, SimDuration::from_nanos(5));
        assert_eq!(series.len(), 3);
        // Integrate back: Σ rate × width == total bytes per direction.
        let width = 5e-9;
        let h2d_total: f64 = series.iter().map(|s| s.h2d * width).sum();
        let d2h_total: f64 = series.iter().map(|s| s.d2h * width).sum();
        assert!((h2d_total - 1500.0).abs() < 1e-6, "{h2d_total}");
        assert!((d2h_total - 250.0).abs() < 1e-6, "{d2h_total}");
        // Peak bucket [5,10): 100 B/ns from a + 50 B/ns from b.
        assert!((series[1].h2d - 150e9).abs() < 1.0);
        assert!((series[2].h2d - 50e9).abs() < 1.0);
    }

    #[test]
    fn bandwidth_timeline_empty() {
        let tl = Timeline::from_spans(vec![]);
        assert!(bandwidth_timeline(&tl, SimDuration::from_nanos(5)).is_empty());
    }

    #[test]
    fn device_idle_gaps() {
        let tl = interleaved();
        // GPU0 is continuously active in this trace.
        assert!(device_idle(&tl, 0).is_empty());
        let rec = TraceRecorder::new();
        rec.record(Lane::compute(0), SpanKind::Kernel, "a", t(0), t(5), 0);
        rec.record(Lane::compute(0), SpanKind::Kernel, "b", t(10), t(15), 0);
        let tl2 = Timeline::from_recorder(&rec);
        assert_eq!(device_idle(&tl2, 0).total().as_nanos(), 5);
    }
}
