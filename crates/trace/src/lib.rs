//! # spread-trace
//!
//! Span recording, timeline analysis and rendering for the `target-spread`
//! simulator — the reproduction's equivalent of NVIDIA's `nsys` profiler
//! used in the paper's Figures 3 and 4.
//!
//! The crate is the bottom of the workspace dependency graph and therefore
//! also owns the **virtual time** types ([`SimTime`], [`SimDuration`]) that
//! every other crate shares.
//!
//! Components:
//!
//! * [`time`] — nanosecond-resolution virtual clock types with the paper's
//!   `XmY.ZZZs` formatting (e.g. `8m22.019s`).
//! * [`span`] — [`Span`]s (a timed interval on a [`Lane`] with a
//!   [`SpanKind`]) and the thread-safe [`TraceRecorder`].
//! * [`interval`] — interval-set algebra (union length, intersection,
//!   complement) used by the analyses.
//! * [`profile`] — per-construct launch profiles ([`ConstructProfile`],
//!   [`DeviceProfile`]) feeding `spread_schedule(auto)`.
//! * [`timeline`] — an immutable, query-friendly view over recorded spans.
//! * [`analysis`] — busy time, transfer/compute overlap, concurrency
//!   profiles, interleaving statistics (the quantities behind Figure 4's
//!   observations).
//! * [`render`] — ASCII Gantt charts (Figure 3-style windows) and CSV
//!   export.

#![warn(missing_docs)]

pub mod analysis;
pub mod interval;
pub mod profile;
pub mod render;
pub mod span;
pub mod time;
pub mod timeline;

pub use analysis::{
    BandwidthSample, ConcurrencyProfile, InterleaveStats, LaneStats, OverlapReport,
};
pub use interval::IntervalSet;
pub use profile::{peer_span_source, profile_window, ConstructProfile, DeviceProfile};
pub use render::{render_chrome_trace, render_csv, render_gantt, GanttOptions};
pub use span::{EngineKind, Lane, Span, SpanId, SpanKind, TraceRecorder};
pub use time::{SimDuration, SimTime};
pub use timeline::Timeline;
