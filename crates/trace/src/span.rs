//! Spans and the trace recorder.
//!
//! Every timed activity in the simulation (a DMA copy, a kernel execution,
//! a host task, …) is recorded as a [`Span`]: an interval of virtual time on
//! a [`Lane`]. Lanes mirror the rows of an `nsys` timeline — one row per
//! device engine plus a host row.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::time::SimTime;

/// Identifier of a recorded span (dense, in recording order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

/// Which hardware engine of a device a span occupies.
///
/// Real GPUs expose separate copy engines for each direction plus compute
/// queues; the paper's Figure 3 legends ("green and red" transfers, "blue"
/// kernels) correspond to exactly these three.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EngineKind {
    /// Host-to-device copy engine.
    CopyIn,
    /// Device-to-host copy engine.
    CopyOut,
    /// Kernel execution engine.
    Compute,
    /// Peer (device-to-device) copy engine — pulls data from a sibling
    /// device over the NVLink/switch fabric. Spans live on the
    /// *destination* device's peer lane.
    PeerCopy,
}

impl EngineKind {
    /// Short label used by the renderer.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::CopyIn => "H2D",
            EngineKind::CopyOut => "D2H",
            EngineKind::Compute => "KRN",
            EngineKind::PeerCopy => "P2P",
        }
    }
}

/// A timeline row.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lane {
    /// The host CPU (task scheduling, host tasks).
    Host,
    /// An engine of a particular device.
    Device {
        /// Physical device id.
        device: u32,
        /// Engine within the device.
        engine: EngineKind,
    },
}

impl Lane {
    /// Convenience constructor for a device compute lane.
    pub fn compute(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::Compute,
        }
    }

    /// Convenience constructor for a device host-to-device copy lane.
    pub fn copy_in(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::CopyIn,
        }
    }

    /// Convenience constructor for a device device-to-host copy lane.
    pub fn copy_out(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::CopyOut,
        }
    }

    /// Convenience constructor for a device peer-copy lane (the
    /// *destination* side of a device-to-device transfer).
    pub fn peer(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::PeerCopy,
        }
    }

    /// The device id, if this is a device lane.
    pub fn device(self) -> Option<u32> {
        match self {
            Lane::Host => None,
            Lane::Device { device, .. } => Some(device),
        }
    }

    /// The engine kind, if this is a device lane.
    pub fn engine(self) -> Option<EngineKind> {
        match self {
            Lane::Host => None,
            Lane::Device { engine, .. } => Some(engine),
        }
    }

    /// Human-readable row header, e.g. `GPU2 H2D` or `host`.
    pub fn header(self) -> String {
        match self {
            Lane::Host => "host".to_string(),
            Lane::Device { device, engine } => format!("GPU{} {}", device, engine.label()),
        }
    }
}

/// Semantic category of a span.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpanKind {
    /// Host-to-device memory transfer.
    TransferIn,
    /// Device-to-host memory transfer.
    TransferOut,
    /// Device-to-device peer transfer (recorded on the destination
    /// device's peer lane; the label carries the source).
    PeerCopy,
    /// Kernel execution.
    Kernel,
    /// Host-side task body.
    HostTask,
    /// Synchronization wait (taskgroup/taskwait drain).
    Sync,
    /// An injected fault surfacing on an engine (zero-length marker).
    Fault,
    /// A retry backoff window after a transient fault.
    Retry,
    /// Recovery work: a lost device's chunk replayed on a survivor.
    Redistribute,
    /// Admission control modified a chunk's placement before launch
    /// (`admission_shrunk`).
    AdmissionShrink,
    /// A chunk piece produced by memory-pressure splitting
    /// (`chunk_split`).
    ChunkSplit,
    /// A chunk executed through the host staging path (`spilled_bytes`
    /// in the span's `bytes` field).
    Spill,
    /// A straggling chunk speculatively re-executed on a healthy
    /// sibling (straggler rescue).
    Rescue,
    /// An end-to-end digest verification failing at a trust boundary
    /// (zero-length marker: a silent corruption was caught).
    Verify,
    /// Corruption healed: the affected piece re-executed from the
    /// unharmed host image (or re-fetched over the host path).
    Heal,
    /// Anything else (allocation bookkeeping, …).
    Other,
}

impl SpanKind {
    /// Single-character glyph used by the ASCII Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::TransferIn => '>',
            SpanKind::TransferOut => '<',
            SpanKind::PeerCopy => '^',
            SpanKind::Kernel => '#',
            SpanKind::HostTask => '~',
            SpanKind::Sync => '|',
            SpanKind::Fault => 'X',
            SpanKind::Retry => 'r',
            SpanKind::Redistribute => 'R',
            SpanKind::AdmissionShrink => 'a',
            SpanKind::ChunkSplit => '/',
            SpanKind::Spill => 's',
            SpanKind::Rescue => '!',
            SpanKind::Verify => '?',
            SpanKind::Heal => 'H',
            SpanKind::Other => '.',
        }
    }

    /// True for any memory transfer (host-routed or peer).
    pub fn is_transfer(self) -> bool {
        matches!(
            self,
            SpanKind::TransferIn | SpanKind::TransferOut | SpanKind::PeerCopy
        )
    }
}

/// One recorded activity: `[start, end)` on a lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Identifier (dense, recording order).
    pub id: SpanId,
    /// Timeline row.
    pub lane: Lane,
    /// Semantic category.
    pub kind: SpanKind,
    /// Free-form label ("forces", "enter A[0:100]", …).
    pub label: String,
    /// Start instant (inclusive).
    pub start: SimTime,
    /// End instant (exclusive).
    pub end: SimTime,
    /// Bytes moved, for transfers.
    pub bytes: u64,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> crate::time::SimDuration {
        self.end - self.start
    }

    /// True if the span intersects the half-open window `[t0, t1)`.
    pub fn overlaps_window(&self, t0: SimTime, t1: SimTime) -> bool {
        self.start < t1 && self.end > t0
    }
}

/// Thread-safe collector of spans over append-only per-thread buffers.
///
/// Cheap to clone (it is an `Arc` underneath); the simulator and every
/// subsystem hold clones and push completed spans. Recording can be
/// disabled wholesale so benchmark runs that do not need traces pay only
/// an atomic load.
///
/// ## Hot-path layout
///
/// The recorder keeps one **append-only buffer per recording thread**
/// instead of a single shared `Mutex<Vec<Span>>`: the span hot path
/// takes one atomic load (`enabled`), one `fetch_add` for the dense
/// [`SpanId`], a thread-local buffer lookup, and an *uncontended* lock
/// on the calling thread's own buffer — no cross-thread contention, no
/// reallocation of a global vector under a shared lock. Buffers are
/// merged (and sorted by `(start, id)`) only at query time, so
/// [`snapshot`](TraceRecorder::snapshot) timelines are byte-identical
/// to the shared-recorder ones: ids are still allocated densely in
/// recording order, and the merge sort restores that order exactly.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<Inner>,
}

/// One thread's append-only span buffer. Only the owning thread pushes;
/// the mutex exists so `snapshot`/`len`/`clear` can read from any
/// thread, and is uncontended on the recording path.
#[derive(Default)]
struct ThreadBuf {
    spans: Mutex<Vec<Span>>,
}

struct Inner {
    /// Every thread's buffer, registered on that thread's first record.
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    /// Next [`SpanId`] — dense, in recording order, across all threads.
    next_id: AtomicU64,
    enabled: AtomicBool,
    /// Distinguishes this recorder in the thread-local buffer cache
    /// (unique per recorder, never reused).
    key: u64,
}

/// Source of unique recorder keys for the thread-local cache.
static RECORDER_KEYS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's buffer per live recorder, keyed by `Inner::key`.
    /// Weak so a dropped recorder's buffers do not leak across the many
    /// short-lived runtimes a fuzz run creates.
    static LOCAL_BUFS: RefCell<Vec<(u64, Weak<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A new, enabled recorder.
    pub fn new() -> Self {
        TraceRecorder {
            inner: Arc::new(Inner {
                buffers: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(0),
                enabled: AtomicBool::new(true),
                key: RECORDER_KEYS.fetch_add(1, Ordering::Relaxed),
            }),
        }
    }

    /// A recorder that discards everything.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The calling thread's buffer for this recorder, created and
    /// registered on first use.
    fn local_buf(&self) -> Arc<ThreadBuf> {
        let key = self.inner.key;
        LOCAL_BUFS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(k, _)| *k == key) {
                if let Some(buf) = weak.upgrade() {
                    return buf;
                }
            }
            let buf = Arc::new(ThreadBuf::default());
            self.inner.buffers.lock().unwrap().push(Arc::clone(&buf));
            // Drop stale entries (dead recorders) while we hold the
            // cache anyway, then remember the new buffer.
            cache.retain(|(k, weak)| *k != key && weak.strong_count() > 0);
            cache.push((key, Arc::downgrade(&buf)));
            buf
        })
    }

    /// Record a completed span. Returns its id (or a dummy id when
    /// disabled).
    pub fn record(
        &self,
        lane: Lane,
        kind: SpanKind,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
        bytes: u64,
    ) -> SpanId {
        if !self.is_enabled() {
            return SpanId(u64::MAX);
        }
        debug_assert!(end >= start, "span ends before it starts");
        let id = SpanId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let buf = self.local_buf();
        buf.spans.lock().unwrap().push(Span {
            id,
            lane,
            kind,
            label: label.into(),
            start,
            end,
            bytes,
        });
        id
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .buffers
            .lock()
            .unwrap()
            .iter()
            .map(|b| b.spans.lock().unwrap().len())
            .sum()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the recorded spans, merged across every thread's buffer
    /// and sorted by start time, then id.
    pub fn snapshot(&self) -> Vec<Span> {
        let buffers = self.inner.buffers.lock().unwrap();
        let mut spans: Vec<Span> = buffers
            .iter()
            .flat_map(|b| b.spans.lock().unwrap().clone())
            .collect();
        drop(buffers);
        spans.sort_by_key(|s| (s.start, s.id));
        spans
    }

    /// Drop all recorded spans (ids restart from zero).
    pub fn clear(&self) {
        let buffers = self.inner.buffers.lock().unwrap();
        for b in buffers.iter() {
            b.spans.lock().unwrap().clear();
        }
        self.inner.next_id.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn record_and_snapshot_sorted() {
        let rec = TraceRecorder::new();
        rec.record(Lane::Host, SpanKind::HostTask, "b", t(10), t(20), 0);
        rec.record(Lane::Host, SpanKind::HostTask, "a", t(0), t(5), 0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "a");
        assert_eq!(snap[1].label, "b");
    }

    #[test]
    fn disabled_recorder_discards() {
        let rec = TraceRecorder::disabled();
        rec.record(Lane::Host, SpanKind::Other, "x", t(0), t(1), 0);
        assert!(rec.is_empty());
        rec.set_enabled(true);
        rec.record(Lane::Host, SpanKind::Other, "y", t(0), t(1), 0);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn clones_share_storage() {
        let rec = TraceRecorder::new();
        let rec2 = rec.clone();
        rec2.record(Lane::compute(0), SpanKind::Kernel, "k", t(0), t(1), 0);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn multi_thread_records_merge_densely() {
        let rec = TraceRecorder::new();
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    rec.record(
                        Lane::compute(th as u32),
                        SpanKind::Kernel,
                        format!("t{th}-{i}"),
                        t(i),
                        t(i + 1),
                        0,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 100);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 100);
        // Ids are dense across all threads' buffers.
        let mut ids: Vec<u64> = snap.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
        // Clearing restarts the dense id sequence from zero.
        rec.clear();
        assert!(rec.is_empty());
        let id = rec.record(Lane::Host, SpanKind::Other, "again", t(0), t(1), 0);
        assert_eq!(id, SpanId(0));
    }

    #[test]
    fn window_overlap() {
        let rec = TraceRecorder::new();
        rec.record(Lane::Host, SpanKind::Other, "x", t(10), t(20), 0);
        let s = &rec.snapshot()[0];
        assert!(s.overlaps_window(t(0), t(11)));
        assert!(s.overlaps_window(t(19), t(100)));
        assert!(!s.overlaps_window(t(0), t(10))); // half-open: ends at start
        assert!(!s.overlaps_window(t(20), t(30)));
    }

    #[test]
    fn lane_headers() {
        assert_eq!(Lane::Host.header(), "host");
        assert_eq!(Lane::copy_in(2).header(), "GPU2 H2D");
        assert_eq!(Lane::copy_out(0).header(), "GPU0 D2H");
        assert_eq!(Lane::compute(3).header(), "GPU3 KRN");
        assert_eq!(Lane::peer(1).header(), "GPU1 P2P");
    }

    #[test]
    fn lane_accessors() {
        assert_eq!(Lane::Host.device(), None);
        assert_eq!(Lane::compute(1).device(), Some(1));
        assert_eq!(Lane::compute(1).engine(), Some(EngineKind::Compute));
        assert_eq!(Lane::peer(2).device(), Some(2));
        assert_eq!(Lane::peer(2).engine(), Some(EngineKind::PeerCopy));
        assert!(SpanKind::TransferIn.is_transfer());
        assert!(SpanKind::TransferOut.is_transfer());
        assert!(SpanKind::PeerCopy.is_transfer());
        assert!(!SpanKind::Kernel.is_transfer());
        assert!(!SpanKind::Fault.is_transfer());
    }

    #[test]
    fn fault_glyphs_are_distinct() {
        let glyphs = [
            SpanKind::Fault.glyph(),
            SpanKind::Retry.glyph(),
            SpanKind::Redistribute.glyph(),
            SpanKind::AdmissionShrink.glyph(),
            SpanKind::ChunkSplit.glyph(),
            SpanKind::Spill.glyph(),
            SpanKind::Rescue.glyph(),
            SpanKind::Verify.glyph(),
            SpanKind::Heal.glyph(),
            SpanKind::Kernel.glyph(),
            SpanKind::PeerCopy.glyph(),
            SpanKind::TransferIn.glyph(),
            SpanKind::TransferOut.glyph(),
        ];
        let set: std::collections::BTreeSet<char> = glyphs.into_iter().collect();
        assert_eq!(set.len(), glyphs.len());
    }
}
