//! Spans and the trace recorder.
//!
//! Every timed activity in the simulation (a DMA copy, a kernel execution,
//! a host task, …) is recorded as a [`Span`]: an interval of virtual time on
//! a [`Lane`]. Lanes mirror the rows of an `nsys` timeline — one row per
//! device engine plus a host row.

use std::sync::{Arc, Mutex};

use crate::time::SimTime;

/// Identifier of a recorded span (dense, in recording order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

/// Which hardware engine of a device a span occupies.
///
/// Real GPUs expose separate copy engines for each direction plus compute
/// queues; the paper's Figure 3 legends ("green and red" transfers, "blue"
/// kernels) correspond to exactly these three.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EngineKind {
    /// Host-to-device copy engine.
    CopyIn,
    /// Device-to-host copy engine.
    CopyOut,
    /// Kernel execution engine.
    Compute,
    /// Peer (device-to-device) copy engine — pulls data from a sibling
    /// device over the NVLink/switch fabric. Spans live on the
    /// *destination* device's peer lane.
    PeerCopy,
}

impl EngineKind {
    /// Short label used by the renderer.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::CopyIn => "H2D",
            EngineKind::CopyOut => "D2H",
            EngineKind::Compute => "KRN",
            EngineKind::PeerCopy => "P2P",
        }
    }
}

/// A timeline row.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lane {
    /// The host CPU (task scheduling, host tasks).
    Host,
    /// An engine of a particular device.
    Device {
        /// Physical device id.
        device: u32,
        /// Engine within the device.
        engine: EngineKind,
    },
}

impl Lane {
    /// Convenience constructor for a device compute lane.
    pub fn compute(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::Compute,
        }
    }

    /// Convenience constructor for a device host-to-device copy lane.
    pub fn copy_in(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::CopyIn,
        }
    }

    /// Convenience constructor for a device device-to-host copy lane.
    pub fn copy_out(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::CopyOut,
        }
    }

    /// Convenience constructor for a device peer-copy lane (the
    /// *destination* side of a device-to-device transfer).
    pub fn peer(device: u32) -> Lane {
        Lane::Device {
            device,
            engine: EngineKind::PeerCopy,
        }
    }

    /// The device id, if this is a device lane.
    pub fn device(self) -> Option<u32> {
        match self {
            Lane::Host => None,
            Lane::Device { device, .. } => Some(device),
        }
    }

    /// The engine kind, if this is a device lane.
    pub fn engine(self) -> Option<EngineKind> {
        match self {
            Lane::Host => None,
            Lane::Device { engine, .. } => Some(engine),
        }
    }

    /// Human-readable row header, e.g. `GPU2 H2D` or `host`.
    pub fn header(self) -> String {
        match self {
            Lane::Host => "host".to_string(),
            Lane::Device { device, engine } => format!("GPU{} {}", device, engine.label()),
        }
    }
}

/// Semantic category of a span.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpanKind {
    /// Host-to-device memory transfer.
    TransferIn,
    /// Device-to-host memory transfer.
    TransferOut,
    /// Device-to-device peer transfer (recorded on the destination
    /// device's peer lane; the label carries the source).
    PeerCopy,
    /// Kernel execution.
    Kernel,
    /// Host-side task body.
    HostTask,
    /// Synchronization wait (taskgroup/taskwait drain).
    Sync,
    /// An injected fault surfacing on an engine (zero-length marker).
    Fault,
    /// A retry backoff window after a transient fault.
    Retry,
    /// Recovery work: a lost device's chunk replayed on a survivor.
    Redistribute,
    /// Admission control modified a chunk's placement before launch
    /// (`admission_shrunk`).
    AdmissionShrink,
    /// A chunk piece produced by memory-pressure splitting
    /// (`chunk_split`).
    ChunkSplit,
    /// A chunk executed through the host staging path (`spilled_bytes`
    /// in the span's `bytes` field).
    Spill,
    /// A straggling chunk speculatively re-executed on a healthy
    /// sibling (straggler rescue).
    Rescue,
    /// An end-to-end digest verification failing at a trust boundary
    /// (zero-length marker: a silent corruption was caught).
    Verify,
    /// Corruption healed: the affected piece re-executed from the
    /// unharmed host image (or re-fetched over the host path).
    Heal,
    /// Anything else (allocation bookkeeping, …).
    Other,
}

impl SpanKind {
    /// Single-character glyph used by the ASCII Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::TransferIn => '>',
            SpanKind::TransferOut => '<',
            SpanKind::PeerCopy => '^',
            SpanKind::Kernel => '#',
            SpanKind::HostTask => '~',
            SpanKind::Sync => '|',
            SpanKind::Fault => 'X',
            SpanKind::Retry => 'r',
            SpanKind::Redistribute => 'R',
            SpanKind::AdmissionShrink => 'a',
            SpanKind::ChunkSplit => '/',
            SpanKind::Spill => 's',
            SpanKind::Rescue => '!',
            SpanKind::Verify => '?',
            SpanKind::Heal => 'H',
            SpanKind::Other => '.',
        }
    }

    /// True for any memory transfer (host-routed or peer).
    pub fn is_transfer(self) -> bool {
        matches!(
            self,
            SpanKind::TransferIn | SpanKind::TransferOut | SpanKind::PeerCopy
        )
    }
}

/// One recorded activity: `[start, end)` on a lane.
#[derive(Clone, Debug)]
pub struct Span {
    /// Identifier (dense, recording order).
    pub id: SpanId,
    /// Timeline row.
    pub lane: Lane,
    /// Semantic category.
    pub kind: SpanKind,
    /// Free-form label ("forces", "enter A[0:100]", …).
    pub label: String,
    /// Start instant (inclusive).
    pub start: SimTime,
    /// End instant (exclusive).
    pub end: SimTime,
    /// Bytes moved, for transfers.
    pub bytes: u64,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> crate::time::SimDuration {
        self.end - self.start
    }

    /// True if the span intersects the half-open window `[t0, t1)`.
    pub fn overlaps_window(&self, t0: SimTime, t1: SimTime) -> bool {
        self.start < t1 && self.end > t0
    }
}

/// Thread-safe collector of spans.
///
/// Cheap to clone (it is an `Arc` underneath); the simulator and every
/// subsystem hold clones and push completed spans. Recording can be
/// disabled wholesale so benchmark runs that do not need traces pay only
/// an atomic load.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<Inner>,
}

struct Inner {
    spans: Mutex<Vec<Span>>,
    enabled: std::sync::atomic::AtomicBool,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A new, enabled recorder.
    pub fn new() -> Self {
        TraceRecorder {
            inner: Arc::new(Inner {
                spans: Mutex::new(Vec::new()),
                enabled: std::sync::atomic::AtomicBool::new(true),
            }),
        }
    }

    /// A recorder that discards everything.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner
            .enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether spans are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner
            .enabled
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Record a completed span. Returns its id (or a dummy id when
    /// disabled).
    pub fn record(
        &self,
        lane: Lane,
        kind: SpanKind,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
        bytes: u64,
    ) -> SpanId {
        if !self.is_enabled() {
            return SpanId(u64::MAX);
        }
        debug_assert!(end >= start, "span ends before it starts");
        let mut spans = self.inner.spans.lock().unwrap();
        let id = SpanId(spans.len() as u64);
        spans.push(Span {
            id,
            lane,
            kind,
            label: label.into(),
            start,
            end,
            bytes,
        });
        id
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.spans.lock().unwrap().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the recorded spans (sorted by start time, then id).
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans = self.inner.spans.lock().unwrap().clone();
        spans.sort_by_key(|s| (s.start, s.id));
        spans
    }

    /// Drop all recorded spans.
    pub fn clear(&self) {
        self.inner.spans.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn record_and_snapshot_sorted() {
        let rec = TraceRecorder::new();
        rec.record(Lane::Host, SpanKind::HostTask, "b", t(10), t(20), 0);
        rec.record(Lane::Host, SpanKind::HostTask, "a", t(0), t(5), 0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "a");
        assert_eq!(snap[1].label, "b");
    }

    #[test]
    fn disabled_recorder_discards() {
        let rec = TraceRecorder::disabled();
        rec.record(Lane::Host, SpanKind::Other, "x", t(0), t(1), 0);
        assert!(rec.is_empty());
        rec.set_enabled(true);
        rec.record(Lane::Host, SpanKind::Other, "y", t(0), t(1), 0);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn clones_share_storage() {
        let rec = TraceRecorder::new();
        let rec2 = rec.clone();
        rec2.record(Lane::compute(0), SpanKind::Kernel, "k", t(0), t(1), 0);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn window_overlap() {
        let rec = TraceRecorder::new();
        rec.record(Lane::Host, SpanKind::Other, "x", t(10), t(20), 0);
        let s = &rec.snapshot()[0];
        assert!(s.overlaps_window(t(0), t(11)));
        assert!(s.overlaps_window(t(19), t(100)));
        assert!(!s.overlaps_window(t(0), t(10))); // half-open: ends at start
        assert!(!s.overlaps_window(t(20), t(30)));
    }

    #[test]
    fn lane_headers() {
        assert_eq!(Lane::Host.header(), "host");
        assert_eq!(Lane::copy_in(2).header(), "GPU2 H2D");
        assert_eq!(Lane::copy_out(0).header(), "GPU0 D2H");
        assert_eq!(Lane::compute(3).header(), "GPU3 KRN");
        assert_eq!(Lane::peer(1).header(), "GPU1 P2P");
    }

    #[test]
    fn lane_accessors() {
        assert_eq!(Lane::Host.device(), None);
        assert_eq!(Lane::compute(1).device(), Some(1));
        assert_eq!(Lane::compute(1).engine(), Some(EngineKind::Compute));
        assert_eq!(Lane::peer(2).device(), Some(2));
        assert_eq!(Lane::peer(2).engine(), Some(EngineKind::PeerCopy));
        assert!(SpanKind::TransferIn.is_transfer());
        assert!(SpanKind::TransferOut.is_transfer());
        assert!(SpanKind::PeerCopy.is_transfer());
        assert!(!SpanKind::Kernel.is_transfer());
        assert!(!SpanKind::Fault.is_transfer());
    }

    #[test]
    fn fault_glyphs_are_distinct() {
        let glyphs = [
            SpanKind::Fault.glyph(),
            SpanKind::Retry.glyph(),
            SpanKind::Redistribute.glyph(),
            SpanKind::AdmissionShrink.glyph(),
            SpanKind::ChunkSplit.glyph(),
            SpanKind::Spill.glyph(),
            SpanKind::Rescue.glyph(),
            SpanKind::Verify.glyph(),
            SpanKind::Heal.glyph(),
            SpanKind::Kernel.glyph(),
            SpanKind::PeerCopy.glyph(),
            SpanKind::TransferIn.glyph(),
            SpanKind::TransferOut.glyph(),
        ];
        let set: std::collections::BTreeSet<char> = glyphs.into_iter().collect();
        assert_eq!(set.len(), glyphs.len());
    }
}
