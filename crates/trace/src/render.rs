//! Trace rendering: ASCII Gantt charts and CSV export.
//!
//! `render_gantt` produces the reproduction's version of the paper's
//! Figure 3 — a fixed-width window of the timeline with one row per lane,
//! `>`/`<` for H2D/D2H transfers and `#` for kernels.

use std::fmt::Write as _;

use crate::span::SpanKind;
use crate::time::SimTime;
use crate::timeline::Timeline;

/// Options for [`render_gantt`].
#[derive(Clone, Debug)]
pub struct GanttOptions {
    /// Window start.
    pub t0: SimTime,
    /// Window end (exclusive).
    pub t1: SimTime,
    /// Number of character columns for the time axis.
    pub width: usize,
}

impl GanttOptions {
    /// A window `[t0, t1)` rendered at the default width (100 columns).
    pub fn window(t0: SimTime, t1: SimTime) -> Self {
        GanttOptions { t0, t1, width: 100 }
    }

    /// The whole timeline extent.
    pub fn full(tl: &Timeline) -> Self {
        Self::window(tl.start(), tl.end())
    }

    /// Override the column count.
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width.max(1);
        self
    }
}

/// Render an ASCII Gantt chart of the window.
///
/// Each lane becomes one row; a column is marked with the glyph of the
/// span kind covering the largest share of that column's time slice
/// (`>` H2D transfer, `<` D2H, `#` kernel, `~` host task, `.` idle).
pub fn render_gantt(tl: &Timeline, opts: &GanttOptions) -> String {
    let mut out = String::new();
    let span_ns = opts.t1.as_nanos().saturating_sub(opts.t0.as_nanos());
    if span_ns == 0 {
        return out;
    }
    let header_width = tl
        .lanes()
        .iter()
        .map(|l| l.header().len())
        .max()
        .unwrap_or(4)
        .max(4);
    let _ = writeln!(
        out,
        "{:header_width$} |window {} .. {} ({} cols, {:.3}s/col)|",
        "lane",
        opts.t0,
        opts.t1,
        opts.width,
        span_ns as f64 / 1e9 / opts.width as f64,
    );
    for lane in tl.lanes() {
        let mut row = vec![' '; opts.width];
        // For each column pick the dominant span kind by covered time.
        let col_ns = span_ns as f64 / opts.width as f64;
        let spans = tl.lane_spans(lane);
        for (c, cell) in row.iter_mut().enumerate() {
            let c0 = opts.t0.as_nanos() as f64 + c as f64 * col_ns;
            let c1 = c0 + col_ns;
            let mut best: Option<(f64, SpanKind)> = None;
            for s in &spans {
                let s0 = s.start.as_nanos() as f64;
                let s1 = s.end.as_nanos() as f64;
                let cover = (s1.min(c1) - s0.max(c0)).max(0.0);
                if cover > 0.0 {
                    match best {
                        Some((b, _)) if b >= cover => {}
                        _ => best = Some((cover, s.kind)),
                    }
                }
            }
            *cell = match best {
                Some((_, kind)) => kind.glyph(),
                None => '.',
            };
        }
        let row: String = row.into_iter().collect();
        let _ = writeln!(out, "{:header_width$} |{row}|", lane.header());
    }
    out
}

/// Export the timeline (or a window of it) as CSV with the columns
/// `lane,kind,label,start_ns,end_ns,duration_ns,bytes`.
pub fn render_csv(tl: &Timeline, window: Option<(SimTime, SimTime)>) -> String {
    let mut out = String::from("lane,kind,label,start_ns,end_ns,duration_ns,bytes\n");
    let spans: Vec<_> = match window {
        Some((t0, t1)) => tl.window(t0, t1),
        None => tl.spans().iter().collect(),
    };
    for s in spans {
        let _ = writeln!(
            out,
            "{},{:?},{},{},{},{},{}",
            s.lane.header(),
            s.kind,
            s.label.replace(',', ";"),
            s.start.as_nanos(),
            s.end.as_nanos(),
            s.duration().as_nanos(),
            s.bytes,
        );
    }
    out
}

/// Export the timeline in the Chrome Trace Event format (the JSON
/// array flavour) — load the output into `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev) for an interactive version of
/// the paper's Figure 3.
///
/// Lanes map to (pid, tid): all rows share one process; each lane is a
/// thread whose name is the lane header. Timestamps are microseconds of
/// *virtual* time.
pub fn render_chrome_trace(tl: &Timeline) -> String {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[\n");
    // Thread-name metadata records, one per lane.
    for (tid, lane) in tl.lanes().iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}},",
            tid,
            escape(&lane.header()),
        );
    }
    let lanes = tl.lanes();
    let tid_of = |lane: &crate::span::Lane| lanes.iter().position(|l| l == lane).unwrap_or(0);
    let mut first = true;
    for s in tl.spans() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\":\"{}\",\"cat\":\"{:?}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"bytes\":{}}}}}",
            escape(&s.label),
            s.kind,
            tid_of(&s.lane),
            s.start.as_nanos() as f64 / 1000.0,
            s.duration().as_nanos() as f64 / 1000.0,
            s.bytes,
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, SpanKind, TraceRecorder};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample() -> Timeline {
        let rec = TraceRecorder::new();
        rec.record(
            Lane::copy_in(0),
            SpanKind::TransferIn,
            "in",
            t(0),
            t(50),
            10,
        );
        rec.record(Lane::compute(0), SpanKind::Kernel, "k", t(50), t(80), 0);
        rec.record(
            Lane::copy_out(0),
            SpanKind::TransferOut,
            "out",
            t(80),
            t(100),
            10,
        );
        Timeline::from_recorder(&rec)
    }

    #[test]
    fn gantt_shape() {
        let tl = sample();
        let g = render_gantt(&tl, &GanttOptions::full(&tl).with_width(10));
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 lanes
                                    // H2D row: first 5 cols '>', rest '.'
        let h2d = lines.iter().find(|l| l.contains("GPU0 H2D")).unwrap();
        let cells: String = h2d.chars().filter(|&c| c == '>' || c == '.').collect();
        assert_eq!(cells, ">>>>>.....");
        let krn = lines.iter().find(|l| l.contains("GPU0 KRN")).unwrap();
        assert!(krn.contains("#"));
    }

    #[test]
    fn gantt_empty_window() {
        let tl = sample();
        let g = render_gantt(&tl, &GanttOptions::window(t(5), t(5)));
        assert!(g.is_empty());
    }

    #[test]
    fn csv_export() {
        let tl = sample();
        let csv = render_csv(&tl, None);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("lane,kind"));
        assert!(lines[1].contains("GPU0 H2D,TransferIn,in,0,50,50,10"));
    }

    #[test]
    fn csv_window_filters() {
        let tl = sample();
        let csv = render_csv(&tl, Some((t(0), t(50))));
        // Only the H2D span intersects [0, 50).
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let rec = TraceRecorder::new();
        rec.record(Lane::Host, SpanKind::Other, "a,b", t(0), t(1), 0);
        let tl = Timeline::from_recorder(&rec);
        let csv = render_csv(&tl, None);
        assert!(csv.contains("a;b"));
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let tl = sample();
        let json = render_chrome_trace(&tl);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // One metadata record per lane + one event per span.
        assert_eq!(json.matches("thread_name").count(), 3);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"dur\":0.050"), "ns → µs conversion");
        // Balanced braces (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn chrome_trace_escapes_quotes() {
        let rec = TraceRecorder::new();
        rec.record(Lane::Host, SpanKind::Other, "say \"hi\"", t(0), t(1), 0);
        let tl = Timeline::from_recorder(&rec);
        let json = render_chrome_trace(&tl);
        assert!(json.contains("say \\\"hi\\\""));
    }
}
