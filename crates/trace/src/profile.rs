//! Per-construct launch profiles aggregated from the span timeline.
//!
//! `spread_schedule(auto)` needs a compact answer to "how did the last
//! launch of this construct go, per device?". A [`ConstructProfile`] is
//! that answer: for one launch window `[start, end)` of one keyed
//! construct it carries a [`DeviceProfile`] per participating device —
//! H2D/D2H copy time, kernel time, transfer/compute overlap, the finish
//! time of the device's last activity, and the idle tail it spent waiting
//! for slower peers. All quantities are derived from recorded [`Span`]s
//! clipped to the window, so they are virtual-time exact and bit-stable
//! across runs.

use crate::interval::IntervalSet;
use crate::span::{EngineKind, Lane, Span};
use crate::time::{SimDuration, SimTime};

/// Per-device breakdown of one construct launch window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Physical device id.
    pub device: u32,
    /// Busy time on the H2D copy engine within the window.
    pub copy_in: SimDuration,
    /// Busy time on the D2H copy engine within the window.
    pub copy_out: SimDuration,
    /// Busy time on the compute engine within the window.
    pub kernel: SimDuration,
    /// Busy time on the peer-copy engine within the window (this device
    /// as the *destination* of device-to-device transfers).
    pub peer: SimDuration,
    /// Bytes received over the peer fabric within the window (spans on
    /// this device's peer lane).
    pub peer_in_bytes: u64,
    /// Bytes sent over the peer fabric within the window (peer spans on
    /// other devices whose `p2p[src->dst]` label names this device as
    /// the source).
    pub peer_out_bytes: u64,
    /// Time where a transfer engine and the compute engine were busy
    /// simultaneously (the paper's Figure 4 interleaving effect).
    pub overlap: SimDuration,
    /// Offset from the window start to the end of the device's last
    /// activity — the device's finish time for this launch.
    pub finish: SimDuration,
    /// Window length minus [`finish`](Self::finish): how long the device
    /// sat idle waiting for the slowest peer to complete the construct.
    pub idle_tail: SimDuration,
}

/// One recorded launch of a keyed construct: the window plus per-device
/// breakdowns and the realized static-weighted plan.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstructProfile {
    /// The construct key (stable across launches of the same construct).
    pub key: String,
    /// Zero-based launch counter for this key.
    pub launch: u64,
    /// Window start (construct issue time).
    pub start: SimTime,
    /// Window end (construct completion time).
    pub end: SimTime,
    /// Per-device breakdowns, in the construct's `devices(…)` list order.
    pub devices: Vec<DeviceProfile>,
    /// The normalized `StaticWeighted` weights the launch actually used,
    /// aligned with [`devices`](Self::devices).
    pub weights: Vec<f64>,
    /// The `StaticWeighted` round length the launch actually used.
    pub round: usize,
}

impl ConstructProfile {
    /// Window length (total construct latency).
    pub fn elapsed(&self) -> SimDuration {
        self.end - self.start
    }

    /// The per-device finish times as f64 nanoseconds, in device-list
    /// order — the quantity the adaptive update equalizes.
    pub fn finish_ns(&self) -> Vec<f64> {
        self.devices
            .iter()
            .map(|d| d.finish.as_nanos() as f64)
            .collect()
    }
}

/// The source device of a peer-copy span, parsed from its
/// `p2p[src->dst] …` label. `None` for anything else.
pub fn peer_span_source(label: &str) -> Option<u32> {
    let rest = label.strip_prefix("p2p[")?;
    let arrow = rest.find("->")?;
    rest[..arrow].parse().ok()
}

/// Aggregate the spans overlapping `[t0, t1)` into per-device profiles
/// for `devices` (output order follows `devices`).
///
/// Every span on a device lane contributes its clipped extent to that
/// engine's busy set; zero-length markers (faults, degradation events)
/// contribute nothing by construction. A device with no activity in the
/// window gets an all-zero profile with `idle_tail == t1 - t0`.
pub fn profile_window(
    spans: &[Span],
    devices: &[u32],
    t0: SimTime,
    t1: SimTime,
) -> Vec<DeviceProfile> {
    devices
        .iter()
        .map(|&device| {
            let engine_set = |engine: EngineKind| {
                IntervalSet::from_intervals(
                    spans
                        .iter()
                        .filter(|s| {
                            s.lane == Lane::Device { device, engine } && s.overlaps_window(t0, t1)
                        })
                        .map(|s| (s.start.max(t0), s.end.min(t1))),
                )
            };
            let h2d = engine_set(EngineKind::CopyIn);
            let d2h = engine_set(EngineKind::CopyOut);
            let p2p = engine_set(EngineKind::PeerCopy);
            let krn = engine_set(EngineKind::Compute);
            let transfers = h2d.union(&d2h).union(&p2p);
            let overlap = transfers.intersect(&krn).total();
            let finish_at = transfers
                .union(&krn)
                .intervals()
                .last()
                .map(|&(_, e)| e)
                .unwrap_or(t0);
            let finish = finish_at - t0;
            let peer_spans = || {
                spans.iter().filter(|s| {
                    s.lane.engine() == Some(EngineKind::PeerCopy) && s.overlaps_window(t0, t1)
                })
            };
            let peer_in_bytes = peer_spans()
                .filter(|s| s.lane.device() == Some(device))
                .map(|s| s.bytes)
                .sum();
            let peer_out_bytes = peer_spans()
                .filter(|s| peer_span_source(&s.label) == Some(device))
                .map(|s| s.bytes)
                .sum();
            DeviceProfile {
                device,
                copy_in: h2d.total(),
                copy_out: d2h.total(),
                kernel: krn.total(),
                peer: p2p.total(),
                peer_in_bytes,
                peer_out_bytes,
                overlap,
                finish,
                idle_tail: (t1 - t0) - finish,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, TraceRecorder};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn aggregates_engines_clipped_to_window() {
        let rec = TraceRecorder::new();
        // Device 0: H2D [0,10), kernel [10,30), D2H [30,35).
        rec.record(
            Lane::copy_in(0),
            SpanKind::TransferIn,
            "in",
            t(0),
            t(10),
            80,
        );
        rec.record(Lane::compute(0), SpanKind::Kernel, "k", t(10), t(30), 0);
        rec.record(
            Lane::copy_out(0),
            SpanKind::TransferOut,
            "out",
            t(30),
            t(35),
            40,
        );
        // Device 1: overlapping copy+kernel, finishing early.
        rec.record(Lane::copy_in(1), SpanKind::TransferIn, "in", t(0), t(8), 64);
        rec.record(Lane::compute(1), SpanKind::Kernel, "k", t(4), t(20), 0);
        let spans = rec.snapshot();
        let profiles = profile_window(&spans, &[0, 1], t(0), t(40));
        assert_eq!(profiles.len(), 2);

        let p0 = &profiles[0];
        assert_eq!(p0.device, 0);
        assert_eq!(p0.copy_in, d(10));
        assert_eq!(p0.kernel, d(20));
        assert_eq!(p0.copy_out, d(5));
        assert_eq!(p0.overlap, SimDuration::ZERO);
        assert_eq!(p0.finish, d(35));
        assert_eq!(p0.idle_tail, d(5));

        let p1 = &profiles[1];
        assert_eq!(p1.copy_in, d(8));
        assert_eq!(p1.kernel, d(16));
        assert_eq!(p1.overlap, d(4)); // [4,8)
        assert_eq!(p1.finish, d(20));
        assert_eq!(p1.idle_tail, d(20));
    }

    #[test]
    fn spans_outside_window_are_clipped_or_dropped() {
        let rec = TraceRecorder::new();
        rec.record(Lane::compute(0), SpanKind::Kernel, "before", t(0), t(10), 0);
        rec.record(
            Lane::compute(0),
            SpanKind::Kernel,
            "straddle",
            t(15),
            t(25),
            0,
        );
        rec.record(Lane::compute(0), SpanKind::Kernel, "after", t(40), t(50), 0);
        let spans = rec.snapshot();
        let profiles = profile_window(&spans, &[0], t(20), t(30));
        assert_eq!(profiles[0].kernel, d(5)); // [20,25)
        assert_eq!(profiles[0].finish, d(5));
        assert_eq!(profiles[0].idle_tail, d(5));
    }

    #[test]
    fn idle_device_gets_zero_profile() {
        let profiles = profile_window(&[], &[3], t(100), t(160));
        let p = &profiles[0];
        assert_eq!(p.device, 3);
        assert_eq!(p.copy_in, SimDuration::ZERO);
        assert_eq!(p.kernel, SimDuration::ZERO);
        assert_eq!(p.finish, SimDuration::ZERO);
        assert_eq!(p.idle_tail, d(60));
    }

    #[test]
    fn peer_spans_attribute_bytes_to_both_endpoints() {
        let rec = TraceRecorder::new();
        // GPU1 pulls 64 bytes from GPU0, then GPU0 pulls 32 from GPU1.
        rec.record(
            Lane::peer(1),
            SpanKind::PeerCopy,
            "p2p[0->1] upd-to A[0:8]",
            t(0),
            t(10),
            64,
        );
        rec.record(
            Lane::peer(0),
            SpanKind::PeerCopy,
            "p2p[1->0] upd-to B[0:4]",
            t(10),
            t(14),
            32,
        );
        rec.record(Lane::compute(1), SpanKind::Kernel, "k", t(5), t(12), 0);
        let spans = rec.snapshot();
        let profiles = profile_window(&spans, &[0, 1], t(0), t(20));
        let p0 = &profiles[0];
        let p1 = &profiles[1];
        assert_eq!(p0.peer, d(4));
        assert_eq!(p0.peer_in_bytes, 32);
        assert_eq!(p0.peer_out_bytes, 64);
        assert_eq!(p1.peer, d(10));
        assert_eq!(p1.peer_in_bytes, 64);
        assert_eq!(p1.peer_out_bytes, 32);
        // Peer transfers count toward transfer/compute overlap: [5,10).
        assert_eq!(p1.overlap, d(5));
        // Sum of per-device in+out bytes is twice the total peer bytes.
        let total: u64 = spans
            .iter()
            .filter(|s| s.kind == SpanKind::PeerCopy)
            .map(|s| s.bytes)
            .sum();
        let accounted: u64 = profiles
            .iter()
            .map(|p| p.peer_in_bytes + p.peer_out_bytes)
            .sum();
        assert_eq!(accounted, 2 * total);
    }

    #[test]
    fn peer_span_source_parses_labels() {
        assert_eq!(peer_span_source("p2p[2->3] upd-to A[0:8]"), Some(2));
        assert_eq!(peer_span_source("p2p[10->0] x"), Some(10));
        assert_eq!(peer_span_source("A upd-to [0:8]"), None);
        assert_eq!(peer_span_source("p2p[x->3]"), None);
    }

    #[test]
    fn construct_profile_helpers() {
        let devices = profile_window(&[], &[0, 1], t(0), t(10));
        let p = ConstructProfile {
            key: "k".into(),
            launch: 0,
            start: t(0),
            end: t(10),
            devices,
            weights: vec![0.5, 0.5],
            round: 100,
        };
        assert_eq!(p.elapsed(), d(10));
        assert_eq!(p.finish_ns(), vec![0.0, 0.0]);
    }
}
