//! An immutable, query-friendly view over recorded spans.

use std::collections::BTreeMap;

use crate::interval::IntervalSet;
use crate::span::{Lane, Span, SpanKind, TraceRecorder};
use crate::time::SimTime;

/// A finished trace: spans sorted by `(start, id)`, with per-lane indexes.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    by_lane: BTreeMap<Lane, Vec<usize>>,
}

impl Timeline {
    /// Build from a recorder snapshot.
    pub fn from_recorder(rec: &TraceRecorder) -> Self {
        Self::from_spans(rec.snapshot())
    }

    /// Build from an explicit span list.
    pub fn from_spans(mut spans: Vec<Span>) -> Self {
        spans.sort_by_key(|s| (s.start, s.id));
        let mut by_lane: BTreeMap<Lane, Vec<usize>> = BTreeMap::new();
        for (idx, s) in spans.iter().enumerate() {
            by_lane.entry(s.lane).or_default().push(idx);
        }
        Timeline { spans, by_lane }
    }

    /// All spans, sorted by start.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if there are no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The lanes present, in a stable order (host first, then devices).
    pub fn lanes(&self) -> Vec<Lane> {
        self.by_lane.keys().copied().collect()
    }

    /// Spans on one lane, sorted by start.
    pub fn lane_spans(&self, lane: Lane) -> Vec<&Span> {
        self.by_lane
            .get(&lane)
            .map(|idxs| idxs.iter().map(|&i| &self.spans[i]).collect())
            .unwrap_or_default()
    }

    /// Spans intersecting the half-open window `[t0, t1)`.
    pub fn window(&self, t0: SimTime, t1: SimTime) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.overlaps_window(t0, t1))
            .collect()
    }

    /// End of the last span (simulation makespan), or `SimTime::ZERO`.
    pub fn end(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Start of the first span, or `SimTime::ZERO`.
    pub fn start(&self) -> SimTime {
        self.spans.first().map(|s| s.start).unwrap_or(SimTime::ZERO)
    }

    /// Busy intervals of a lane (union of its spans).
    pub fn lane_busy(&self, lane: Lane) -> IntervalSet {
        IntervalSet::from_intervals(self.lane_spans(lane).iter().map(|s| (s.start, s.end)))
    }

    /// Busy intervals of every lane of one device, restricted to one kind.
    pub fn device_kind_busy(&self, device: u32, pred: impl Fn(SpanKind) -> bool) -> IntervalSet {
        IntervalSet::from_intervals(
            self.spans
                .iter()
                .filter(|s| s.lane.device() == Some(device) && pred(s.kind))
                .map(|s| (s.start, s.end)),
        )
    }

    /// Device ids present in the trace, ascending.
    pub fn devices(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.by_lane.keys().filter_map(|l| l.device()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total bytes moved in the given transfer direction.
    pub fn total_bytes(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, SpanKind, TraceRecorder};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample() -> Timeline {
        let rec = TraceRecorder::new();
        rec.record(
            Lane::copy_in(0),
            SpanKind::TransferIn,
            "A",
            t(0),
            t(10),
            100,
        );
        rec.record(Lane::compute(0), SpanKind::Kernel, "k1", t(10), t(14), 0);
        rec.record(
            Lane::copy_in(1),
            SpanKind::TransferIn,
            "B",
            t(2),
            t(12),
            200,
        );
        rec.record(Lane::compute(0), SpanKind::Kernel, "k2", t(14), t(20), 0);
        rec.record(
            Lane::copy_out(0),
            SpanKind::TransferOut,
            "A",
            t(20),
            t(28),
            100,
        );
        Timeline::from_recorder(&rec)
    }

    #[test]
    fn spans_sorted_and_indexed() {
        let tl = sample();
        assert_eq!(tl.len(), 5);
        assert!(tl.spans().windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(tl.lane_spans(Lane::compute(0)).len(), 2);
        assert_eq!(tl.lane_spans(Lane::compute(7)).len(), 0);
    }

    #[test]
    fn window_query() {
        let tl = sample();
        let w = tl.window(t(11), t(15));
        let labels: Vec<_> = w.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"k1"));
        assert!(labels.contains(&"B"));
        assert!(labels.contains(&"k2"));
        assert!(!labels.contains(&"A")); // the H2D A ends at 10
    }

    #[test]
    fn devices_and_extent() {
        let tl = sample();
        assert_eq!(tl.devices(), vec![0, 1]);
        assert_eq!(tl.start(), t(0));
        assert_eq!(tl.end(), t(28));
    }

    #[test]
    fn busy_sets() {
        let tl = sample();
        let compute = tl.device_kind_busy(0, |k| k == SpanKind::Kernel);
        assert_eq!(compute.total().as_nanos(), 10);
        let xfer = tl.device_kind_busy(0, SpanKind::is_transfer);
        assert_eq!(xfer.total().as_nanos(), 18);
    }

    #[test]
    fn byte_totals() {
        let tl = sample();
        assert_eq!(tl.total_bytes(SpanKind::TransferIn), 300);
        assert_eq!(tl.total_bytes(SpanKind::TransferOut), 100);
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::from_spans(vec![]);
        assert!(tl.is_empty());
        assert_eq!(tl.end(), SimTime::ZERO);
        assert!(tl.devices().is_empty());
    }
}
