//! Virtual time types shared by the whole workspace.
//!
//! The simulator advances a nanosecond-resolution virtual clock. Both the
//! absolute clock value ([`SimTime`]) and differences between clock values
//! ([`SimDuration`]) are newtypes over `u64` nanoseconds, so event ordering
//! is exact (no floating-point comparison hazards in the event queue) while
//! rate computations (bytes / bandwidth) are done in `f64` and rounded once.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier`
    /// is actually later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "unreachable" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if secs <= 0.0 || !secs.is_finite() {
        if secs.is_infinite() && secs > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    let ns = secs * NANOS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// Formats as the paper's tables do: `17m40.231s`, `8m22.019s`; durations
/// under a minute render as `42.123s`.
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000_000;
        let mins = total_ms / 60_000;
        let rem_ms = total_ms % 60_000;
        let secs = rem_ms / 1000;
        let ms = rem_ms % 1000;
        if mins > 0 {
            write!(f, "{mins}m{secs}.{ms:03}s")
        } else {
            write!(f, "{secs}.{ms:03}s")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_style_formatting() {
        // Table I baseline: 17m40.231s
        let d = SimDuration::from_millis(17 * 60_000 + 40_231);
        assert_eq!(d.to_string(), "17m40.231s");
        // Table I, 4 GPUs: 8m22.019s
        let d = SimDuration::from_millis(8 * 60_000 + 22_019);
        assert_eq!(d.to_string(), "8m22.019s");
        // Sub-minute
        let d = SimDuration::from_millis(59_999);
        assert_eq!(d.to_string(), "59.999s");
        assert_eq!(SimDuration::ZERO.to_string(), "0.000s");
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(234);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.since(t0), d);
        assert_eq!(t0.since(t1), SimDuration::ZERO); // saturates
    }

    #[test]
    fn secs_f64_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d / 4, SimDuration::from_secs_f64(2.5));
        assert_eq!(d * 3u64, SimDuration::from_secs(30));
        assert_eq!(d * 0.5f64, SimDuration::from_secs(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
