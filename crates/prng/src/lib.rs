//! A tiny, dependency-free, fully deterministic PRNG.
//!
//! The workspace must build offline, so it cannot pull in `rand` or
//! `proptest`; every place that needs randomness — the seeded property
//! tests, the `spread-check` program generator, and the simulator's
//! schedule tie-break policy — uses this crate instead. The generator is
//! xoshiro256** seeded through SplitMix64, which is the standard way to
//! expand a single `u64` seed into full generator state. Identical seeds
//! produce identical streams on every platform: that guarantee is what
//! makes `replay --seed <s>` reproduce a fuzzer failure exactly.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Also useful on its own as a cheap stateless mixer (hash a seed with a
/// sequence number to get an independent-looking value).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Stateless mix of a seed and a sequence number into one well-scrambled
/// value. Used by the simulator's seeded tie-break policy.
pub fn mix(seed: u64, n: u64) -> u64 {
    let mut s = seed ^ n.wrapping_mul(0x9e3779b97f4a7c15);
    splitmix64(&mut s)
}

/// xoshiro256** — a small, fast, high-quality PRNG.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// A generator seeded from a single `u64` (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply trick with a rejection step, so the
    /// distribution is exactly uniform (and still fully deterministic).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`. `lo < hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0, xs.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range(0, i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Prng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = Prng::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Prng::new(3);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::new(5);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn mix_is_stateless_and_seed_sensitive() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
    }
}
