//! The `exchange(peer|host|auto)` halo variant of One Buffer: the
//! device-to-device route must change *where* halo planes travel,
//! never their bytes — centers stay bit-exact against the CPU
//! reference in every mode, and `auto`'s halo phase is faster than the
//! host round-trip on the CTE-POWER machine.

use spread_core::{ExchangeMode, ResiliencePolicy};
use spread_sim::FaultPlan;
use spread_somier::one_buffer::run_spread_peer;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::{SimTime, SpanKind};

const N_GPUS: usize = 4;

fn cfg() -> SomierConfig {
    SomierConfig::test_small(20, 2)
}

#[test]
fn auto_matches_host_mode_and_the_reference_bit_exact() {
    let cfg = cfg();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));

    let mut host_rt = cfg.runtime(N_GPUS);
    let (host_report, host_halo) = run_spread_peer(
        &mut host_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Host,
        ResiliencePolicy::FailStop,
    )
    .unwrap();
    let mut auto_rt = cfg.runtime(N_GPUS);
    let (auto_report, auto_halo) = run_spread_peer(
        &mut auto_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Auto,
        ResiliencePolicy::FailStop,
    )
    .unwrap();

    assert_eq!(host_report.centers, reference.centers, "host route");
    assert_eq!(auto_report.centers, reference.centers, "peer route");
    assert_eq!(host_report.races, 0);
    assert_eq!(auto_report.races, 0);

    // The routes really differ: host mode never uses the peer engines,
    // auto moves every interior halo plane device-to-device.
    let peer_spans = |rt: &spread_rt::Runtime| {
        rt.timeline()
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::PeerCopy)
            .count()
    };
    assert_eq!(peer_spans(&host_rt), 0);
    assert!(peer_spans(&auto_rt) > 0, "auto must route halos D2D");
    assert!(auto_rt.peer_copies().iter().all(|r| !r.diverted));

    // The point of the exercise: the halo phase gets faster.
    assert!(
        auto_halo < host_halo,
        "peer halo phase {auto_halo} must beat host {host_halo}"
    );
}

#[test]
fn peer_runs_are_deterministic() {
    let cfg = cfg();
    let run = || {
        let mut rt = cfg.runtime(N_GPUS);
        let (report, halo) = run_spread_peer(
            &mut rt,
            &cfg,
            N_GPUS,
            ExchangeMode::Auto,
            ResiliencePolicy::FailStop,
        )
        .unwrap();
        (report.centers, report.elapsed, halo, rt.peer_copies().len())
    };
    assert_eq!(run(), run());
}

/// PR 2 × PR 5 interaction: a degraded peer link slows the halo phase
/// but must not change the routing decision — `auto` keeps the copies
/// device-to-device (diversion is for *dead* sources only, never a
/// timing call), and slower links never change bytes.
#[test]
fn degraded_link_still_routes_peer_and_stays_bit_identical() {
    let cfg = cfg();
    let halo_of = |rt: &mut spread_rt::Runtime| {
        run_spread_peer(
            rt,
            &cfg,
            N_GPUS,
            ExchangeMode::Auto,
            ResiliencePolicy::FailStop,
        )
        .unwrap()
    };

    let mut clean_rt = cfg.runtime(N_GPUS);
    let (_, clean_halo) = halo_of(&mut clean_rt);

    // Device 1 is an interior peer source; throttle its link 8x for the
    // whole run.
    let plan = FaultPlan::new(11).degrade_link(1, SimTime::ZERO, SimTime::MAX, 8.0);
    let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
    let (report, degraded_halo) = halo_of(&mut rt);

    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "a slow link changes timing, never bytes"
    );
    assert_eq!(report.races, 0);
    let peer_spans = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::PeerCopy)
        .count();
    assert!(peer_spans > 0, "auto must still route halos D2D");
    assert!(
        rt.peer_copies().iter().all(|r| !r.diverted),
        "diversion is a liveness decision, not a timing one"
    );
    assert!(
        degraded_halo > clean_halo,
        "the degradation must actually bite: degraded {degraded_halo} vs clean {clean_halo}"
    );
}

#[test]
fn single_device_auto_degrades_to_host_route() {
    let cfg = cfg();
    let mut rt = cfg.runtime(1);
    let (report, _halo) = run_spread_peer(
        &mut rt,
        &cfg,
        1,
        ExchangeMode::Auto,
        ResiliencePolicy::FailStop,
    )
    .unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(1));
    assert_eq!(report.centers, reference.centers);
    assert!(rt.peer_copies().is_empty());
}
