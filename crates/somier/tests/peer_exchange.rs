//! The `exchange(peer|host|auto)` halo variant of One Buffer: the
//! device-to-device route must change *where* halo planes travel,
//! never their bytes — centers stay bit-exact against the CPU
//! reference in every mode, and `auto`'s halo phase is faster than the
//! host round-trip on the CTE-POWER machine.

use spread_core::{ExchangeMode, ResiliencePolicy};
use spread_somier::one_buffer::run_spread_peer;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::SpanKind;

const N_GPUS: usize = 4;

fn cfg() -> SomierConfig {
    SomierConfig::test_small(20, 2)
}

#[test]
fn auto_matches_host_mode_and_the_reference_bit_exact() {
    let cfg = cfg();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));

    let mut host_rt = cfg.runtime(N_GPUS);
    let (host_report, host_halo) = run_spread_peer(
        &mut host_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Host,
        ResiliencePolicy::FailStop,
    )
    .unwrap();
    let mut auto_rt = cfg.runtime(N_GPUS);
    let (auto_report, auto_halo) = run_spread_peer(
        &mut auto_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Auto,
        ResiliencePolicy::FailStop,
    )
    .unwrap();

    assert_eq!(host_report.centers, reference.centers, "host route");
    assert_eq!(auto_report.centers, reference.centers, "peer route");
    assert_eq!(host_report.races, 0);
    assert_eq!(auto_report.races, 0);

    // The routes really differ: host mode never uses the peer engines,
    // auto moves every interior halo plane device-to-device.
    let peer_spans = |rt: &spread_rt::Runtime| {
        rt.timeline()
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::PeerCopy)
            .count()
    };
    assert_eq!(peer_spans(&host_rt), 0);
    assert!(peer_spans(&auto_rt) > 0, "auto must route halos D2D");
    assert!(auto_rt.peer_copies().iter().all(|r| !r.diverted));

    // The point of the exercise: the halo phase gets faster.
    assert!(
        auto_halo < host_halo,
        "peer halo phase {auto_halo} must beat host {host_halo}"
    );
}

#[test]
fn peer_runs_are_deterministic() {
    let cfg = cfg();
    let run = || {
        let mut rt = cfg.runtime(N_GPUS);
        let (report, halo) = run_spread_peer(
            &mut rt,
            &cfg,
            N_GPUS,
            ExchangeMode::Auto,
            ResiliencePolicy::FailStop,
        )
        .unwrap();
        (report.centers, report.elapsed, halo, rt.peer_copies().len())
    };
    assert_eq!(run(), run());
}

#[test]
fn single_device_auto_degrades_to_host_route() {
    let cfg = cfg();
    let mut rt = cfg.runtime(1);
    let (report, _halo) = run_spread_peer(
        &mut rt,
        &cfg,
        1,
        ExchangeMode::Auto,
        ResiliencePolicy::FailStop,
    )
    .unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(1));
    assert_eq!(report.centers, reference.centers);
    assert!(rt.peer_copies().is_empty());
}
