//! Somier under an injected compute slowdown: the straggler One Buffer
//! variant must complete bit-identically to the CPU reference with one
//! device running 8× slow mid-run, committing exactly one copy of every
//! speculatively re-executed chunk. Latency is a separate story: the
//! rescue path pays its own enter + H2D on the sibling, so `steal` only
//! beats `wait` once the slowdown is heavy enough to amortise that
//! overhead — asserted here at 32×, exported as a sweep by
//! `BENCH_straggler.json`.

use spread_core::StragglerPolicy;
use spread_sim::FaultPlan;
use spread_somier::one_buffer::run_spread_straggler;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::{SimTime, SpanKind};

const N_GPUS: usize = 4;
const SLOW_DEVICE: u32 = 1;

fn cfg() -> SomierConfig {
    SomierConfig::test_small(20, 2)
}

/// Virtual mid-point of a fault-free straggler-mode run.
fn clean_midpoint(cfg: &SomierConfig) -> SimTime {
    let mut rt = cfg.runtime(N_GPUS);
    run_spread_straggler(&mut rt, cfg, N_GPUS, StragglerPolicy::Wait).unwrap();
    SimTime::from_nanos(rt.elapsed().as_nanos() / 2)
}

fn slow_plan(from: SimTime, factor: f64) -> FaultPlan {
    FaultPlan::new(7).slow_compute(SLOW_DEVICE, from, SimTime::MAX, factor)
}

#[test]
fn straggler_variant_matches_reference_without_faults() {
    let cfg = cfg();
    let mut rt = cfg.runtime(N_GPUS);
    let report = run_spread_straggler(&mut rt, &cfg, N_GPUS, StragglerPolicy::Steal).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers, "centers bit-exact");
    assert_eq!(report.races, 0);
    assert!(
        rt.rescues().is_empty(),
        "a healthy run must never speculate"
    );
}

#[test]
fn bit_identical_with_8x_slowdown_mid_run() {
    let cfg = cfg();
    let mid = clean_midpoint(&cfg);
    let mut rt = cfg.runtime_with_faults(N_GPUS, slow_plan(mid, 8.0));
    let report = run_spread_straggler(&mut rt, &cfg, N_GPUS, StragglerPolicy::Steal).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "rescued run must be bit-identical to the reference"
    );
    assert_eq!(report.races, 0);
    let rescues = rt.rescues();
    assert!(!rescues.is_empty(), "an 8x mid-run slowdown must rescue");
    for r in &rescues {
        assert_eq!(r.from, SLOW_DEVICE, "only the slowed device straggles");
        assert_ne!(r.to, SLOW_DEVICE, "rescue must land on a sibling");
        assert_eq!(r.commits, 1, "first-commit-wins: exactly one commit");
        assert!(r.winner.is_some(), "a completed run records the winner");
        assert!(r.stolen, "steal cancels the straggler's kernel");
    }
    let rescue_spans = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Rescue)
        .count();
    assert_eq!(rescue_spans, rescues.len(), "one Rescue span per rescue");
}

#[test]
fn replicate_keeps_both_copies_and_stays_bit_identical() {
    let cfg = cfg();
    let mut rt = cfg.runtime_with_faults(N_GPUS, slow_plan(SimTime::ZERO, 8.0));
    let report = run_spread_straggler(&mut rt, &cfg, N_GPUS, StragglerPolicy::Replicate).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers);
    let rescues = rt.rescues();
    assert!(!rescues.is_empty());
    for r in &rescues {
        assert_eq!(r.commits, 1, "duplicated execution, single commit");
        assert!(!r.stolen, "replicate lets the original run to completion");
    }
}

#[test]
fn wait_policy_only_watches() {
    let cfg = cfg();
    let mut rt = cfg.runtime_with_faults(N_GPUS, slow_plan(SimTime::ZERO, 8.0));
    let report = run_spread_straggler(&mut rt, &cfg, N_GPUS, StragglerPolicy::Wait).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers);
    assert!(rt.rescues().is_empty(), "wait never speculates");
}

/// The rescue path pays an extra enter + H2D on the sibling, so the
/// crossover sits above 8×: there `steal` merely bounds the damage, but
/// at 32× the cancelled straggler's kernel dwarfs the rescue overhead
/// and `steal` must finish strictly earlier end-to-end than `wait`.
#[test]
fn steal_recovers_latency_at_heavy_slowdown() {
    let cfg = cfg();
    let elapsed = |policy| {
        let mut rt = cfg.runtime_with_faults(N_GPUS, slow_plan(SimTime::ZERO, 32.0));
        run_spread_straggler(&mut rt, &cfg, N_GPUS, policy).unwrap();
        rt.elapsed().as_nanos()
    };
    let wait = elapsed(StragglerPolicy::Wait);
    let steal = elapsed(StragglerPolicy::Steal);
    let replicate = elapsed(StragglerPolicy::Replicate);
    assert!(
        steal < wait,
        "steal must beat wait at 32x (steal {steal}ns, wait {wait}ns)"
    );
    // Replicate's blocking drain still waits on the losing original's
    // exit, so it cannot beat wait on construct latency — it just must
    // not make things materially worse.
    assert!(
        replicate <= wait + wait / 10,
        "replicate within 10% of wait (replicate {replicate}ns, wait {wait}ns)"
    );
}

#[test]
fn rescue_is_deterministic() {
    let cfg = cfg();
    let mid = clean_midpoint(&cfg);
    let run = || {
        let mut rt = cfg.runtime_with_faults(N_GPUS, slow_plan(mid, 8.0));
        let report = run_spread_straggler(&mut rt, &cfg, N_GPUS, StragglerPolicy::Steal).unwrap();
        (
            report.centers,
            rt.elapsed().as_nanos(),
            format!("{:?}", rt.rescues()),
        )
    };
    assert_eq!(run(), run());
}
