//! Validation of every Somier implementation against the CPU reference.

use spread_rt::RtError;
use spread_somier::reference::run_reference;
use spread_somier::{run_somier, SomierConfig, SomierImpl};

#[test]
fn one_buffer_target_matches_reference_exactly() {
    let cfg = SomierConfig::test_small(20, 3);
    let (report, _rt) = run_somier(&cfg, SomierImpl::OneBufferTarget, 1).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(1));
    assert_eq!(
        report.centers, reference.centers,
        "centers must be bit-exact"
    );
    assert_eq!(report.races, 0, "the blocking baseline has no races");
    assert!(report.kernel_launches > 0);
    assert!(report.h2d_bytes > 0 && report.d2h_bytes > 0);
}

#[test]
fn one_buffer_spread_matches_reference_exactly_any_gpus() {
    for n_gpus in [1usize, 2, 4] {
        let cfg = SomierConfig::test_small(20, 2);
        let (report, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, n_gpus).unwrap();
        let reference = run_reference(&cfg, cfg.buffer_planes(n_gpus));
        assert_eq!(
            report.centers, reference.centers,
            "{n_gpus} GPUs: centers must be bit-exact"
        );
        assert_eq!(
            report.races, 0,
            "{n_gpus} GPUs: phases are barrier-separated"
        );
        // All mappings were released.
        for d in 0..n_gpus as u32 {
            assert_eq!(rt.device_mem_used(d), 0, "{n_gpus} GPUs: device {d} clean");
        }
    }
}

#[test]
fn spread_equals_baseline_bit_for_bit_on_one_gpu() {
    // Table I's 1-GPU columns: target vs target spread must compute the
    // same thing (and take nearly the same time — checked in the bench).
    let cfg = SomierConfig::test_small(20, 3);
    let (base, _) = run_somier(&cfg, SomierImpl::OneBufferTarget, 1).unwrap();
    let (spread, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 1).unwrap();
    assert_eq!(base.centers, spread.centers);
    // Same data volume moved.
    assert_eq!(base.h2d_bytes, spread.h2d_bytes);
    assert_eq!(base.d2h_bytes, spread.d2h_bytes);
}

#[test]
fn two_buffers_matches_reference_closely() {
    let cfg = SomierConfig::test_small(100, 2);
    let (report, rt) = run_somier(&cfg, SomierImpl::TwoBuffers, 2).unwrap();
    let reference = run_reference(&cfg, cfg.half_planes(2));
    for c in 0..3 {
        assert!(
            (report.centers[c] - reference.centers[c]).abs() < 1e-6,
            "centers[{c}]: {} vs {}",
            report.centers[c],
            reference.centers[c]
        );
    }
    for d in 0..2 {
        assert_eq!(rt.device_mem_used(d), 0);
    }
}

#[test]
fn double_buffering_matches_reference_closely() {
    let cfg = SomierConfig::test_small(100, 2);
    let (report, rt) = run_somier(&cfg, SomierImpl::DoubleBuffering, 2).unwrap();
    let reference = run_reference(&cfg, cfg.half_planes(2));
    for c in 0..3 {
        assert!(
            (report.centers[c] - reference.centers[c]).abs() < 1e-6,
            "centers[{c}]: {} vs {}",
            report.centers[c],
            reference.centers[c]
        );
    }
    for d in 0..2 {
        assert_eq!(rt.device_mem_used(d), 0);
    }
}

/// §V-B: "the Two Buffers and Double Buffering versions could not be
/// tested with any of the directives using only one GPU" — the halo
/// sections of concurrently mapped consecutive halves overlap.
#[test]
fn buffered_versions_fail_on_one_gpu() {
    let cfg = SomierConfig::test_small(100, 1);
    for which in [SomierImpl::TwoBuffers, SomierImpl::DoubleBuffering] {
        match run_somier(&cfg, which, 1) {
            Err(RtError::OverlapExtension { .. }) => {}
            Err(other) => panic!("{which:?}/1GPU: wrong error {other}"),
            Ok(_) => panic!("{which:?}/1GPU: must be rejected"),
        }
    }
}

/// Table I's headline: more GPUs → shorter virtual time; kernels scale
/// near-linearly while transfers saturate.
#[test]
fn spread_speedup_with_more_gpus() {
    let cfg = SomierConfig::test_small(48, 1);
    let (r1, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 1).unwrap();
    let (r2, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).unwrap();
    let (r4, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 4).unwrap();
    let (t1, t2, t4) = (
        r1.elapsed.as_secs_f64(),
        r2.elapsed.as_secs_f64(),
        r4.elapsed.as_secs_f64(),
    );
    assert!(t2 < t1, "2 GPUs beat 1: {t2} vs {t1}");
    assert!(t4 < t2, "4 GPUs beat 2: {t4} vs {t2}");
    // Bounded by the bus: the 4-GPU speedup stays well below linear.
    assert!(
        t1 / t4 < 3.5,
        "speedup {:.2} should be transfer-bound",
        t1 / t4
    );
}

/// The virtual clock is deterministic: identical runs give identical
/// times and results.
#[test]
fn runs_are_deterministic() {
    let cfg = SomierConfig::test_small(20, 2);
    let (a, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).unwrap();
    let (b, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).unwrap();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.centers, b.centers);
    assert_eq!(a.transfer_ops, b.transfer_ops);
}

/// The §VI-B granularity observation: 12 grids ⇒ 12 copies per mapped
/// chunk, each way.
#[test]
fn twelve_copies_per_chunk() {
    let cfg = SomierConfig::test_small(20, 1);
    let (report, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).unwrap();
    let n = cfg.n;
    let buffer = cfg.buffer_planes(2);
    let n_buffers = n.div_ceil(buffer);
    // Per buffer: 2 devices × 12 copies in + 2 × 12 out, plus the
    // centers partials (3 per device per buffer, out).
    let chunks_per_buffer = 2;
    let expected = n_buffers * chunks_per_buffer * (12 + 12 + 3);
    assert_eq!(report.transfer_ops, expected, "buffers={n_buffers}");
}
