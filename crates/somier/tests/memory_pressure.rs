//! Somier under device memory pressure: the `spread_pressure(…)` One
//! Buffer variant must complete bit-identically to the CPU reference
//! with every device's memory capped at 60% of what the buffer planning
//! assumes, under a seeded fault plan holding sustained OOM-pressure
//! windows — in both the split and the spill mode.

use spread_core::PressurePolicy;
use spread_rt::{DegradationKind, RtError};
use spread_sim::FaultPlan;
use spread_somier::one_buffer::run_spread_pressure;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::{SimTime, SpanKind};

const N_GPUS: usize = 4;

/// The oversubscribed machine: devices get 60% of the memory the
/// buffer planning assumed.
fn cfg() -> SomierConfig {
    SomierConfig::test_small(20, 2).with_mem_cap_frac(0.6)
}

/// Sustained OOM-pressure windows (never released) of `bytes` on every
/// device, opened before the run starts.
fn sustained(seed: u64, bytes: u64) -> FaultPlan {
    (0..N_GPUS as u32).fold(FaultPlan::new(seed), |p, d| {
        p.sustain_pressure(d, SimTime::ZERO, bytes)
    })
}

#[test]
fn pressure_variant_matches_reference_on_a_healthy_machine() {
    let cfg = SomierConfig::test_small(20, 2);
    let mut rt = cfg.runtime(N_GPUS);
    let report = run_spread_pressure(&mut rt, &cfg, N_GPUS, PressurePolicy::Split).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers, "centers bit-exact");
    assert_eq!(report.races, 0);
    assert!(
        rt.degradations().is_empty(),
        "full-size devices must not degrade"
    );
}

#[test]
fn split_mode_completes_bit_identical_at_60_percent_memory() {
    let cfg = cfg();
    let mut rt = cfg.runtime_with_faults(N_GPUS, sustained(0xD1, 20_000));
    let report = run_spread_pressure(&mut rt, &cfg, N_GPUS, PressurePolicy::Split).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "degraded run must stay bit-identical to the reference"
    );
    assert_eq!(report.races, 0);
    let evs = rt.degradations();
    assert!(!evs.is_empty(), "60% memory must force degradation");
    assert!(
        evs.iter().any(|e| e.kind == DegradationKind::ChunkSplit),
        "the halo-heavy forces chunks must split, got {evs:?}"
    );
    assert!(
        evs.iter().all(|e| e.kind != DegradationKind::Spilled),
        "split mode never touches the host staging buffer, got {evs:?}"
    );
    let splits = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::ChunkSplit)
        .count();
    assert!(splits > 0, "split decisions must be visible in the trace");
}

#[test]
fn spill_mode_completes_bit_identical_at_60_percent_memory() {
    let cfg = cfg();
    // Heavier sustained pressure: not even a single-plane forces piece
    // fits any device, so those chunks stream through the host.
    let mut rt = cfg.runtime_with_faults(N_GPUS, sustained(0xD2, 50_000));
    let report = run_spread_pressure(&mut rt, &cfg, N_GPUS, PressurePolicy::Spill).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "spilled run must stay bit-identical to the reference"
    );
    assert_eq!(report.races, 0);
    let evs = rt.degradations();
    assert!(
        evs.iter().any(|e| e.kind == DegradationKind::Spilled),
        "this pressure level must spill, got {evs:?}"
    );
    assert!(
        evs.iter()
            .filter(|e| e.kind == DegradationKind::Spilled)
            .all(|e| e.device.is_none() && e.bytes > 0),
        "spill events carry the spilled bytes, got {evs:?}"
    );
    assert!(rt
        .timeline()
        .spans()
        .iter()
        .any(|s| s.kind == SpanKind::Spill));
}

#[test]
fn split_mode_fails_degraded_when_even_one_plane_fits_nowhere() {
    // 5% memory: a single-plane piece exceeds every device, and without
    // the spill rung the construct must say so instead of wedging.
    let cfg = SomierConfig::test_small(20, 2).with_mem_cap_frac(0.05);
    let mut rt = cfg.runtime(N_GPUS);
    let err = run_spread_pressure(&mut rt, &cfg, N_GPUS, PressurePolicy::Split).unwrap_err();
    assert!(
        matches!(err, RtError::Degraded { .. }),
        "expected Degraded, got: {err}"
    );
}

#[test]
fn degraded_runs_are_deterministic() {
    let run = |policy| {
        let cfg = cfg();
        let mut rt = cfg.runtime_with_faults(N_GPUS, sustained(0xD1, 20_000));
        let report = run_spread_pressure(&mut rt, &cfg, N_GPUS, policy).unwrap();
        (report.centers, report.elapsed, rt.degradations())
    };
    assert_eq!(run(PressurePolicy::Split), run(PressurePolicy::Split));
    assert_eq!(run(PressurePolicy::Spill), run(PressurePolicy::Spill));
}
