//! Property test: random small Somier configurations are bit-exact
//! against the buffered CPU reference for the One Buffer
//! implementations, on any device count.

use proptest::prelude::*;
use spread_somier::reference::run_reference;
use spread_somier::{run_somier, SomierConfig, SomierImpl};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn one_buffer_spread_bit_exact(
        n in 8usize..24,
        steps in 1usize..3,
        n_gpus in 1usize..5,
        k_scale in 1u32..4,
    ) {
        let mut cfg = SomierConfig::test_small(n, steps);
        cfg.physics.k = k_scale as f64 * 5.0;
        cfg.trace = false;
        let (report, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, n_gpus).unwrap();
        let reference = run_reference(&cfg, cfg.buffer_planes(n_gpus));
        prop_assert_eq!(report.centers, reference.centers);
        prop_assert_eq!(report.races, 0);
        for d in 0..n_gpus as u32 {
            prop_assert_eq!(rt.device_mem_used(d), 0);
        }
    }

    #[test]
    fn baseline_equals_spread_on_one_gpu(
        n in 8usize..20,
        steps in 1usize..3,
    ) {
        let cfg = SomierConfig::test_small(n, steps);
        let (base, _) = run_somier(&cfg, SomierImpl::OneBufferTarget, 1).unwrap();
        let (spread, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 1).unwrap();
        prop_assert_eq!(base.centers, spread.centers);
        prop_assert_eq!(base.h2d_bytes, spread.h2d_bytes);
        prop_assert_eq!(base.d2h_bytes, spread.d2h_bytes);
    }
}
