//! Somier under injected silent corruption: the integrity One Buffer
//! variant must complete bit-identically to the CPU reference with
//! bit-flip tokens armed on several devices under
//! `spread_integrity(heal)`, recording one healed commit per burned
//! token. `verify` on the same machine instead poisons the run at the
//! first checked boundary, and `off` demonstrates why the clause exists
//! at all: the rot reaches the host and the centers drift.

use spread_core::IntegrityMode;
use spread_rt::{IntegrityAction, IntegrityBoundary, RtError};
use spread_sim::FaultPlan;
use spread_somier::one_buffer::run_spread_integrity;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::{SimTime, SpanKind};

const N_GPUS: usize = 4;

fn cfg() -> SomierConfig {
    SomierConfig::test_small(20, 2)
}

/// Three single-token bursts on distinct devices, armed from t=0.
fn flip_plan() -> FaultPlan {
    FaultPlan::new(11)
        .silent_flips(0, SimTime::ZERO, 1)
        .silent_flips(1, SimTime::ZERO, 1)
        .silent_flips(3, SimTime::ZERO, 1)
}

#[test]
fn integrity_variant_matches_reference_without_flips() {
    let cfg = cfg();
    let mut rt = cfg.runtime(N_GPUS);
    let report = run_spread_integrity(&mut rt, &cfg, N_GPUS, IntegrityMode::Verify).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers, "centers bit-exact");
    assert_eq!(report.races, 0);
    assert!(
        rt.integrity_events().is_empty(),
        "a clean run must never trip a checked boundary"
    );
}

#[test]
fn bit_identical_with_three_flips_under_heal() {
    let cfg = cfg();
    let mut rt = cfg.runtime_with_faults(N_GPUS, flip_plan());
    let report = run_spread_integrity(&mut rt, &cfg, N_GPUS, IntegrityMode::Heal).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "healed run must be bit-identical to the reference"
    );
    assert_eq!(report.races, 0);
    let events = rt.integrity_events();
    let healed: Vec<_> = events
        .iter()
        .filter(|e| e.action == IntegrityAction::Healed)
        .collect();
    assert_eq!(healed.len(), 3, "one healed commit per armed token");
    let mut devices: Vec<u32> = healed.iter().map(|e| e.device).collect();
    devices.sort_unstable();
    assert_eq!(devices, vec![0, 1, 3], "heals land on the flipped devices");
    for e in &events {
        assert_eq!(
            e.boundary,
            IntegrityBoundary::Commit,
            "flips surface at the staged-commit trust boundary"
        );
        assert_ne!(
            e.action,
            IntegrityAction::Quarantined,
            "single-token bursts stay far below the mismatch breaker"
        );
    }
    // Each heal leaves two Heal spans: the healer's redo marker plus
    // the CorruptionHealed degradation mirrored onto the timeline.
    let heal_spans = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Heal)
        .count();
    assert_eq!(heal_spans, 2 * healed.len(), "two Heal spans per heal");
}

#[test]
fn healing_is_deterministic() {
    let cfg = cfg();
    let run = || {
        let mut rt = cfg.runtime_with_faults(N_GPUS, flip_plan());
        let report = run_spread_integrity(&mut rt, &cfg, N_GPUS, IntegrityMode::Heal).unwrap();
        (report.centers, rt.integrity_events(), rt.elapsed())
    };
    let (c1, e1, t1) = run();
    let (c2, e2, t2) = run();
    assert_eq!(c1, c2, "same machine, same centers");
    assert_eq!(e1, e2, "same machine, same event ledger");
    assert_eq!(t1, t2, "same machine, same virtual clock");
}

#[test]
fn verify_poisons_on_the_first_checked_boundary() {
    let cfg = cfg();
    let mut rt = cfg.runtime_with_faults(N_GPUS, flip_plan());
    let err = run_spread_integrity(&mut rt, &cfg, N_GPUS, IntegrityMode::Verify).unwrap_err();
    let RtError::IntegrityViolation { device, .. } = err else {
        panic!("verify must surface the corruption, got {err:?}");
    };
    assert!(
        [0, 1, 3].contains(&device),
        "the violation names a flipped device, got {device}"
    );
    assert!(
        rt.integrity_events()
            .iter()
            .any(|e| e.action == IntegrityAction::Failed && e.device == device),
        "the ledger records the failed verification"
    );
}

/// Without the clause the same machine corrupts the run silently: the
/// flipped payloads commit unchecked and the centers drift from the
/// reference. This is the baseline `spread_integrity(heal)` erases.
///
/// The token count matters here: a scribble hits the *first element*
/// of a staged payload, and for the X/V/A/F grids that element is a
/// pinned boundary node the physics never reads back — benign SDC.
/// Fifteen tokens walk the flips through all five constructs of one
/// block (3 component drains each) so the last three land on the
/// per-plane partials, which feed the centers reduction directly.
#[test]
fn off_lets_the_rot_reach_the_host() {
    let cfg = cfg();
    let plan = FaultPlan::new(11).silent_flips(1, SimTime::ZERO, 15);
    let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
    let report = run_spread_integrity(&mut rt, &cfg, N_GPUS, IntegrityMode::Off).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_ne!(
        report.centers, reference.centers,
        "unchecked flips must corrupt the result"
    );
    assert!(
        rt.integrity_events().is_empty(),
        "off mode never digests, so nothing is ever caught"
    );
}
