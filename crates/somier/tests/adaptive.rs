//! `spread_schedule(auto)` on a heterogeneous machine.
//!
//! One device's compute runs 3× slower
//! ([`SomierConfig::with_slow_device`]). A static equal split waits on
//! it at every buffer; the profile-guided schedule starts from the same
//! equal split, then converges toward equal per-device finish times
//! within the first few launches — and, because adapted splits only
//! move planes between devices, the centers stay bit-exact against the
//! CPU reference throughout.

use spread_core::ResiliencePolicy;
use spread_somier::one_buffer::{run_spread_auto, run_spread_resilient};
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;

const N_GPUS: usize = 2;
const SLOW_FACTOR: f64 = 3.0;

/// The heterogeneous experiment: a compute-bound calibration (the
/// default one is ~72% transfer-dominated, where no schedule can win
/// much) with device 0 at 1/3 compute speed.
fn config(timesteps: usize, slow: bool) -> SomierConfig {
    let mut cfg = SomierConfig::test_small(20, timesteps);
    cfg.costs.forces *= 150.0;
    cfg.costs.accel *= 150.0;
    cfg.costs.velocity *= 150.0;
    cfg.costs.position *= 150.0;
    cfg.costs.centers *= 150.0;
    if slow {
        cfg = cfg.with_slow_device(0, SLOW_FACTOR);
    }
    cfg
}

#[test]
fn auto_stays_bit_exact_on_the_heterogeneous_machine() {
    let cfg = config(3, true);
    let mut rt = cfg.runtime(N_GPUS);
    let report = run_spread_auto(&mut rt, &cfg, N_GPUS).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "adapted splits move planes, never values"
    );
    assert_eq!(report.races, 0);
    for d in 0..N_GPUS as u32 {
        assert_eq!(rt.device_mem_used(d), 0, "device {d} clean");
    }
}

#[test]
fn auto_beats_static_within_ten_timesteps() {
    let cfg = config(10, true);
    // The static baseline: the identical construct-scoped program with
    // an equal split (FailStop on a fault-free machine is a no-op).
    let mut static_rt = cfg.runtime(N_GPUS);
    let static_report =
        run_spread_resilient(&mut static_rt, &cfg, N_GPUS, ResiliencePolicy::FailStop).unwrap();
    let mut auto_rt = cfg.runtime(N_GPUS);
    let auto_report = run_spread_auto(&mut auto_rt, &cfg, N_GPUS).unwrap();
    assert_eq!(
        auto_report.centers, static_report.centers,
        "both compute the same physics"
    );
    let speedup = static_report.elapsed.as_secs_f64() / auto_report.elapsed.as_secs_f64();
    eprintln!(
        "heterogeneous Somier ({N_GPUS} GPUs, device 0 at 1/{SLOW_FACTOR} compute): \
         static {:?}, auto {:?}, speedup {speedup:.2}x",
        static_report.elapsed, auto_report.elapsed
    );
    assert!(
        speedup >= 1.3,
        "auto must converge within 10 timesteps: static {:?} / auto {:?} = {speedup:.2}x",
        static_report.elapsed,
        auto_report.elapsed
    );
}

#[test]
fn auto_learns_to_shift_planes_off_the_slow_device() {
    let cfg = config(5, true);
    let mut rt = cfg.runtime(N_GPUS);
    run_spread_auto(&mut rt, &cfg, N_GPUS).unwrap();
    let profiles = rt.profiles();
    assert!(!profiles.is_empty(), "auto launches record profiles");
    // Every Somier kernel key ends up with less weight on the slow
    // device 0 than on device 1.
    for key in [
        "somier-forces",
        "somier-accelerations",
        "somier-velocities",
        "somier-positions",
        "somier-centers",
    ] {
        let last = profiles
            .iter()
            .rev()
            .find(|p| p.key == key)
            .unwrap_or_else(|| panic!("no profiles for {key}"));
        assert_eq!(last.weights.len(), N_GPUS);
        assert!(
            last.weights[0] < last.weights[1],
            "{key}: final weights {:?} must favor the fast device",
            last.weights
        );
        let learned = rt.adaptive_weights(key).expect("store keeps the key");
        assert!(learned[0] < learned[1], "{key}: {learned:?}");
    }
    // Launch numbering is dense per key.
    let forces: Vec<u64> = profiles
        .iter()
        .filter(|p| p.key == "somier-forces")
        .map(|p| p.launch)
        .collect();
    assert_eq!(forces, (0..forces.len() as u64).collect::<Vec<_>>());
}

#[test]
fn auto_is_harmless_on_a_uniform_machine() {
    let cfg = config(3, false);
    let mut rt = cfg.runtime(N_GPUS);
    let report = run_spread_auto(&mut rt, &cfg, N_GPUS).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers);
    // And deterministic: the same run gives the same virtual time.
    let mut rt2 = cfg.runtime(N_GPUS);
    let report2 = run_spread_auto(&mut rt2, &cfg, N_GPUS).unwrap();
    assert_eq!(report.elapsed, report2.elapsed);
    assert_eq!(report.centers, report2.centers);
}
