//! Profile regression tests for the pipelined Somier variant
//! (`run_spread_overlap`): the engine must show real transfer/compute
//! overlap on every device and shorten the run — a silently serializing
//! pipeline fails here even though its results would still be correct.
//!
//! Everything is virtual time, so every number below is deterministic
//! and the strict inequalities are stable regression anchors.

use spread_core::ResiliencePolicy;
use spread_somier::one_buffer::{run_spread_overlap, run_spread_resilient};
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::{profile_window, DeviceProfile, SimTime};

const N_GPUS: usize = 4;
const DEPTH: u32 = 4;

/// The balanced calibration from `spread-bench --bin export_overlap`,
/// shrunk for test speed: DMA and compute queues modeled separately
/// (they exist on the V100; the serialized path just never uses them),
/// kernel costs ×6 so both engines carry comparable work, and device 0
/// compute-slowed 3× so the fast devices accumulate a real idle tail
/// waiting for it.
fn config() -> SomierConfig {
    let mut cfg = SomierConfig::test_small(96, 2)
        .with_single_queue(false)
        .with_slow_device(0, 3.0);
    cfg.costs.forces *= 6.0;
    cfg.costs.accel *= 6.0;
    cfg.costs.velocity *= 6.0;
    cfg.costs.position *= 6.0;
    cfg.costs.centers *= 6.0;
    cfg
}

fn device_profiles(rt: &spread_rt::Runtime) -> Vec<DeviceProfile> {
    let devices: Vec<u32> = (0..N_GPUS as u32).collect();
    profile_window(rt.timeline().spans(), &devices, SimTime::ZERO, rt.now())
}

#[test]
fn pipelined_somier_overlaps_on_every_device_and_shrinks_the_tail() {
    let cfg = config();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));

    let mut base_rt = cfg.runtime(N_GPUS);
    let base = run_spread_resilient(&mut base_rt, &cfg, N_GPUS, ResiliencePolicy::FailStop)
        .expect("baseline run");
    assert_eq!(base.centers, reference.centers);
    let base_profs = device_profiles(&base_rt);

    let mut rt = cfg.runtime(N_GPUS);
    let piped = run_spread_overlap(&mut rt, &cfg, N_GPUS, DEPTH).expect("pipelined run");
    assert_eq!(
        piped.centers, reference.centers,
        "pipelining must not change the physics"
    );
    let piped_profs = device_profiles(&rt);

    // The serialized path never has a copy and a kernel in flight at
    // once, even on a machine whose queues would allow it; the pipeline
    // must — on every device, by a margin no rounding jitter produces.
    for (b, p) in base_profs.iter().zip(&piped_profs) {
        assert_eq!(
            b.overlap,
            spread_trace::SimDuration::ZERO,
            "device {}: blocking whole-piece constructs cannot overlap",
            b.device
        );
        assert!(
            p.overlap.as_nanos() > 1_000_000,
            "device {}: the pipeline must overlap transfers with compute \
             (got {} ns — is the engine silently serializing?)",
            p.device,
            p.overlap.as_nanos()
        );
    }

    // Latency hiding must reach the end-to-end clock, not just the
    // engine ledger.
    assert!(
        piped.elapsed < base.elapsed,
        "pipelining must shorten the run (base {:?}, piped {:?})",
        base.elapsed,
        piped.elapsed
    );

    // And the idle tail the fast devices spend waiting for the slow one
    // must shrink: pipelining hides the straggler's transfers under its
    // long kernels, pulling the whole-run finish line in.
    let idle =
        |profs: &[DeviceProfile]| -> u64 { profs.iter().map(|d| d.idle_tail.as_nanos()).sum() };
    assert!(
        idle(&piped_profs) < idle(&base_profs),
        "pipelining must shrink the fast devices' idle tail \
         (base {} ns, piped {} ns)",
        idle(&base_profs),
        idle(&piped_profs)
    );
}

#[test]
fn pipelined_somier_keeps_commits_whole_piece() {
    let cfg = config();
    let mut rt = cfg.runtime(N_GPUS);
    run_spread_overlap(&mut rt, &cfg, N_GPUS, DEPTH).expect("pipelined run");
    let recs = rt.overlap_records();
    assert!(!recs.is_empty(), "the pipeline must engage");
    for r in &recs {
        assert!(!r.leaked, "no sub-slice commit may escape early");
        if !r.bypassed {
            assert_eq!(
                r.staged, r.committed,
                "every staged sub-slice commits exactly at the whole-piece boundary"
            );
        }
    }
    assert!(rt.races().is_empty());
}
