//! Trace-structure tests: the Somier implementations must leave the
//! timeline signatures the paper describes.

use spread_somier::{run_somier, SomierConfig, SomierImpl};
use spread_trace::analysis::{concurrency_profile, interleave_stats, overlap_report};

/// Under default-stream semantics, nothing on one device ever overlaps:
/// compute∩transfer = 0 and per-device transfer concurrency ≤ 1 — for
/// every implementation (Figure 3/4's ground truth).
#[test]
fn per_device_operations_never_overlap() {
    let cfg = SomierConfig::test_small(100, 1);
    for which in [
        SomierImpl::OneBufferSpread,
        SomierImpl::TwoBuffers,
        SomierImpl::DoubleBuffering,
    ] {
        let (_, rt) = run_somier(&cfg, which, 2).unwrap();
        let tl = rt.timeline();
        for r in overlap_report(&tl) {
            assert!(
                r.overlap.is_zero(),
                "{which:?}: device {} overlapped compute and transfer",
                r.device
            );
        }
        for dev in tl.devices() {
            let prof = concurrency_profile(&tl, |s| {
                s.kind.is_transfer() && s.lane.device() == Some(dev)
            });
            assert!(
                prof.time_at_least(2).is_zero(),
                "{which:?}: device {dev} ran two transfers at once"
            );
        }
    }
}

/// One Buffer keeps the five kernels back-to-back per buffer (the
/// paper's Figure 4 contrast: only the *buffered* versions interleave
/// kernels with other buffers' transfers).
#[test]
fn one_buffer_runs_kernels_in_runs_of_five() {
    let cfg = SomierConfig::test_small(48, 1);
    let (_, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).unwrap();
    let tl = rt.timeline();
    for st in interleave_stats(&tl) {
        assert_eq!(
            st.longest_kernel_run, 5,
            "device {}: the five kernels should run consecutively",
            st.device
        );
    }
}

/// The buffered versions break the kernel runs up (interleaving).
#[test]
fn buffered_versions_interleave_kernels_with_transfers() {
    let cfg = SomierConfig::test_small(100, 1);
    for which in [SomierImpl::TwoBuffers, SomierImpl::DoubleBuffering] {
        let (_, rt) = run_somier(&cfg, which, 2).unwrap();
        let tl = rt.timeline();
        let stats = interleave_stats(&tl);
        let max_alternations = stats.iter().map(|s| s.alternations).max().unwrap();
        let one_buffer_alt = {
            let (_, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).unwrap();
            interleave_stats(&rt.timeline())
                .iter()
                .map(|s| s.alternations)
                .max()
                .unwrap()
        };
        assert!(
            max_alternations >= one_buffer_alt,
            "{which:?}: pipelining should not reduce interleaving \
             ({max_alternations} vs {one_buffer_alt})"
        );
    }
}

/// Transfer volume accounting: every implementation moves the same
/// H2D/D2H payload per step (12 grids in + 12 out + partials), modulo
/// the halo planes.
#[test]
fn transfer_volumes_match_across_implementations() {
    let cfg = SomierConfig::test_small(100, 1);
    let (one, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).unwrap();
    let (two, _) = run_somier(&cfg, SomierImpl::TwoBuffers, 2).unwrap();
    let (db, _) = run_somier(&cfg, SomierImpl::DoubleBuffering, 2).unwrap();
    // D2H is exactly the 12 grids + partials for everyone.
    assert_eq!(one.d2h_bytes, two.d2h_bytes);
    assert_eq!(one.d2h_bytes, db.d2h_bytes);
    // H2D differs only by halo planes: the buffered versions use 2-plane
    // half-chunks here, so their X grids carry 100% halo overhead vs the
    // One Buffer's ~22% — a bounded ~20% difference in total H2D volume.
    let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / a as f64;
    assert!(rel(one.h2d_bytes, two.h2d_bytes) < 0.25);
    assert!(rel(one.h2d_bytes, db.h2d_bytes) < 0.25);
    assert!(
        two.h2d_bytes > one.h2d_bytes,
        "more chunks => more halo bytes"
    );
    // And the buffered versions issue more DMA operations (granularity).
    assert!(two.transfer_ops > one.transfer_ops);
    assert!(db.transfer_ops > one.transfer_ops);
}

/// Device memory peak stays within capacity for every implementation
/// (the allocator enforces it; this asserts the *model* sizing).
#[test]
fn memory_peak_within_capacity() {
    let cfg = SomierConfig::test_small(100, 1);
    for (which, gpus) in [
        (SomierImpl::OneBufferTarget, 1usize),
        (SomierImpl::OneBufferSpread, 2),
        (SomierImpl::TwoBuffers, 2),
        (SomierImpl::DoubleBuffering, 2),
    ] {
        let (_, rt) = run_somier(&cfg, which, gpus).unwrap();
        for d in 0..gpus as u32 {
            assert!(
                rt.device_mem_peak(d) <= cfg.device_mem_bytes(),
                "{which:?}: device {d} peaked at {} of {}",
                rt.device_mem_peak(d),
                cfg.device_mem_bytes()
            );
            assert_eq!(rt.device_mem_used(d), 0, "{which:?}: device {d} leaked");
        }
    }
}

/// The One Buffer trace is dominated by transfers (Figure 3's headline).
#[test]
fn transfers_dominate() {
    let cfg = SomierConfig::paper()
        .with_n(48)
        .with_timesteps(2)
        .with_trace(true);
    let (_, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, 4).unwrap();
    for r in overlap_report(&rt.timeline()) {
        assert!(
            r.transfer_fraction() > 0.6,
            "device {}: transfer fraction {:.2}",
            r.device,
            r.transfer_fraction()
        );
    }
}

/// The communication-bottleneck claim, verified at the interconnect
/// level: in the 4-GPU One Buffer run the host bus is the binding
/// constraint — its equivalent saturated time is a large fraction of
/// the makespan, and every transferred byte crossed it.
#[test]
fn host_bus_is_the_bottleneck_at_4_gpus() {
    let cfg = SomierConfig::paper()
        .with_n(48)
        .with_timesteps(2)
        .with_trace(true);
    let (report, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, 4).unwrap();
    let net = rt.flownet();
    let bus = net.find_capacity("host-bus").expect("bus capacity");
    // Fluid-model accounting rounds at event granularity: equal to the
    // exact byte totals within a few parts per billion.
    let through = net.bytes_through(bus) as f64;
    let exact = (report.h2d_bytes + report.d2h_bytes) as f64;
    assert!(
        (through - exact).abs() / exact < 1e-6,
        "every byte crosses the host bus: {through} vs {exact}"
    );
    let makespan = rt.elapsed().as_secs_f64();
    let saturation = net.saturated_seconds(bus) / makespan;
    assert!(
        saturation > 0.5,
        "the bus should be the dominant constraint: {saturation:.2}"
    );
}

/// Kernel-launch accounting: 5 kernels × chunks × buffers × steps.
#[test]
fn kernel_launch_count() {
    let cfg = SomierConfig::test_small(48, 2);
    let n_gpus = 2;
    let (report, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, n_gpus).unwrap();
    let buffer = cfg.buffer_planes(n_gpus);
    let buffers_per_step = cfg.n.div_ceil(buffer);
    // Each buffer spreads every kernel over n_gpus chunks.
    let expected = cfg.timesteps * buffers_per_step * 5 * n_gpus;
    assert_eq!(report.kernel_launches, expected);
}
