//! Seeded property test: random small Somier configurations are
//! bit-exact against the buffered CPU reference for the One Buffer
//! implementations, on any device count (deterministic `spread_prng`
//! loops; offline-friendly).

use spread_prng::Prng;
use spread_somier::reference::run_reference;
use spread_somier::{run_somier, SomierConfig, SomierImpl};

#[test]
fn one_buffer_spread_bit_exact() {
    let mut r = Prng::new(0x5031_4e47);
    for _ in 0..12 {
        let n = r.range(8, 24);
        let steps = r.range(1, 3);
        let n_gpus = r.range(1, 5);
        let k_scale = r.range(1, 4) as u32;
        let ctx = format!("n={n} steps={steps} n_gpus={n_gpus} k_scale={k_scale}");

        let mut cfg = SomierConfig::test_small(n, steps);
        cfg.physics.k = k_scale as f64 * 5.0;
        cfg.trace = false;
        let (report, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, n_gpus).unwrap();
        let reference = run_reference(&cfg, cfg.buffer_planes(n_gpus));
        assert_eq!(report.centers, reference.centers, "{ctx}");
        assert_eq!(report.races, 0, "{ctx}");
        for d in 0..n_gpus as u32 {
            assert_eq!(rt.device_mem_used(d), 0, "device {d} leaked ({ctx})");
        }
    }
}

#[test]
fn baseline_equals_spread_on_one_gpu() {
    let mut r = Prng::new(0x5031_4e48);
    for _ in 0..8 {
        let n = r.range(8, 20);
        let steps = r.range(1, 3);
        let ctx = format!("n={n} steps={steps}");

        let cfg = SomierConfig::test_small(n, steps);
        let (base, _) = run_somier(&cfg, SomierImpl::OneBufferTarget, 1).unwrap();
        let (spread, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 1).unwrap();
        assert_eq!(base.centers, spread.centers, "{ctx}");
        assert_eq!(base.h2d_bytes, spread.h2d_bytes, "{ctx}");
        assert_eq!(base.d2h_bytes, spread.d2h_bytes, "{ctx}");
    }
}
