//! Somier under injected device loss: the resilient One Buffer variant
//! must complete bit-identically to the CPU reference with a device
//! dying mid-run, and the fail-stop default must report the loss
//! deterministically.

use spread_core::{ExchangeMode, ResiliencePolicy};
use spread_rt::RtError;
use spread_sim::FaultPlan;
use spread_somier::one_buffer::{run_spread_peer, run_spread_resilient};
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::{peer_span_source, SimTime, SpanKind};

const N_GPUS: usize = 4;

fn cfg() -> SomierConfig {
    SomierConfig::test_small(20, 2)
}

/// Virtual mid-point of a fault-free resilient run.
fn clean_midpoint(cfg: &SomierConfig) -> SimTime {
    let mut rt = cfg.runtime(N_GPUS);
    run_spread_resilient(&mut rt, cfg, N_GPUS, ResiliencePolicy::FailStop).unwrap();
    SimTime::from_nanos(rt.elapsed().as_nanos() / 2)
}

#[test]
fn resilient_variant_matches_reference_without_faults() {
    let cfg = cfg();
    let mut rt = cfg.runtime(N_GPUS);
    let report =
        run_spread_resilient(&mut rt, &cfg, N_GPUS, ResiliencePolicy::Redistribute).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers, "centers bit-exact");
    assert_eq!(report.races, 0);
}

#[test]
fn one_buffer_completes_bit_identical_with_device_lost_mid_run() {
    let cfg = cfg();
    let mid = clean_midpoint(&cfg);
    let plan = FaultPlan::new(42).lose_device(1, mid);
    let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
    let report =
        run_spread_resilient(&mut rt, &cfg, N_GPUS, ResiliencePolicy::Redistribute).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "recovered run must be bit-identical to the reference"
    );
    assert_eq!(report.races, 0);
    // The loss really happened and chunks really moved.
    let redists = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Redistribute)
        .count();
    assert!(redists > 0, "mid-run loss must trigger redistribution");
    // Loss cleanup released everything the dead device held.
    assert_eq!(rt.device_mem_used(1), 0);
}

#[test]
fn one_buffer_recovers_device_dead_from_the_start() {
    let cfg = cfg();
    let plan = FaultPlan::new(5).lose_device(3, SimTime::ZERO);
    let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
    let report =
        run_spread_resilient(&mut rt, &cfg, N_GPUS, ResiliencePolicy::Redistribute).unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(report.centers, reference.centers);
}

#[test]
fn fail_stop_reports_the_loss_deterministically() {
    let cfg = cfg();
    let mid = clean_midpoint(&cfg);
    let run = || {
        let plan = FaultPlan::new(42).lose_device(1, mid);
        let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
        run_spread_resilient(&mut rt, &cfg, N_GPUS, ResiliencePolicy::FailStop).unwrap_err()
    };
    let err = run();
    assert!(
        matches!(err, RtError::DeviceLost { device: 1, .. }),
        "fail-stop must surface the loss, got: {err}"
    );
    assert_eq!(
        run().to_string(),
        err.to_string(),
        "identical plan => identical fail-stop error"
    );
}

/// Virtual midpoint of the first peer copy sourced from `device` in a
/// fault-free `exchange(auto)` run — a loss there lands squarely inside
/// the halo-exchange window, with later copies off the same source
/// still queued.
fn first_peer_window_from(cfg: &SomierConfig, device: u32) -> SimTime {
    let mut rt = cfg.runtime(N_GPUS);
    run_spread_peer(
        &mut rt,
        cfg,
        N_GPUS,
        ExchangeMode::Auto,
        ResiliencePolicy::FailStop,
    )
    .unwrap();
    let tl = rt.timeline();
    let span = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::PeerCopy && peer_span_source(&s.label) == Some(device))
        .min_by_key(|s| s.start)
        .cloned()
        .expect("a clean auto run routes halos off every interior device");
    span.start + (span.end - span.start) / 2
}

#[test]
fn peer_run_survives_losing_a_source_mid_copy_via_host_fallback() {
    // Device 2: an interior peer source, and (chunk >= 2) far enough
    // from the replacement survivor (device 0) that rebuilt chunks
    // stay disjoint from its held halo mapping.
    let cfg = cfg();
    let at = first_peer_window_from(&cfg, 2);
    let plan = FaultPlan::new(42).lose_device(2, at);
    let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
    let (report, _halo) = run_spread_peer(
        &mut rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Auto,
        ResiliencePolicy::Redistribute,
    )
    .unwrap();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    assert_eq!(
        report.centers, reference.centers,
        "loss mid-peer-copy must stay bit-identical via the host fallback"
    );
    // Copies still queued against the dead source really diverted…
    let diverted = rt.peer_copies().iter().filter(|r| r.diverted).count();
    assert!(
        diverted > 0,
        "queued copies off the dead source must divert"
    );
    // …and the dead device's compute chunks moved to survivors.
    let redists = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Redistribute)
        .count();
    assert!(redists > 0, "lost chunks must be rebuilt on survivors");
    assert_eq!(rt.device_mem_used(2), 0);
}

#[test]
fn peer_fail_stop_surfaces_a_source_loss_deterministically() {
    let cfg = cfg();
    let at = first_peer_window_from(&cfg, 2);
    let run = || {
        let plan = FaultPlan::new(42).lose_device(2, at);
        let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
        run_spread_peer(
            &mut rt,
            &cfg,
            N_GPUS,
            ExchangeMode::Auto,
            ResiliencePolicy::FailStop,
        )
        .unwrap_err()
    };
    let err = run();
    assert!(
        matches!(err, RtError::DeviceLost { device: 2, .. }),
        "fail-stop must surface the loss, got: {err}"
    );
    assert_eq!(run().to_string(), err.to_string());
}

#[test]
fn recovery_is_deterministic() {
    let cfg = cfg();
    let mid = clean_midpoint(&cfg);
    let run = || {
        let plan = FaultPlan::new(42).lose_device(1, mid);
        let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
        let report =
            run_spread_resilient(&mut rt, &cfg, N_GPUS, ResiliencePolicy::Redistribute).unwrap();
        (report.centers, report.elapsed, report.kernel_launches)
    };
    assert_eq!(run(), run());
}
