//! # spread-somier
//!
//! The Somier mini-app of the paper's evaluation (§V): a 3-D grid of
//! springs. Each time step computes, over `n³` nodes:
//!
//! 1. **forces** — a 6-neighbour spring stencil over the positions
//!    (needs ±1-plane halos in the outermost dimension),
//! 2. **accelerations** — `A = F/m`,
//! 3. **velocities** — `V += A·dt`,
//! 4. **positions** — `X += V·dt` (boundary nodes fixed),
//! 5. **centers** — a reduction of the positions (the paper implements
//!    it manually because `target spread` has no reduction clause yet).
//!
//! Each of the 4 state variables has 3 components, so the working set is
//! 12 `n³` grids of `f64` — sized ~10× one device's memory in the
//! paper's experiment, forcing buffered processing.
//!
//! Implementations (§V-A..C):
//! * [`one_buffer`] — process one buffer at a time; both the `target`
//!   baseline (1 GPU, Listing 9) and the `target spread` version
//!   (Listing 10).
//! * [`two_buffers`] — `taskloop num_tasks(2)` over half buffers
//!   (Listing 11).
//! * [`double_buffering`] — a recursive task pipelines the next half
//!   buffer's transfers behind the current one's kernels (Listing 12).
//! * [`reference`] — the sequential CPU implementation every device run
//!   is checked against (bit-exact for the One Buffer versions).

#![warn(missing_docs)]
// The physics code indexes parallel component arrays (`x[c][i]`,
// `f[c][i]`) by component id — clearer here than zipped iterators.
#![allow(clippy::needless_range_loop)]

pub mod arrays;
pub mod config;
pub mod double_buffering;
pub mod energy;
pub mod kernels;
pub mod one_buffer;
pub mod physics;
pub mod reference;
pub mod report;
pub mod two_buffers;

pub use arrays::SomierArrays;
pub use config::SomierConfig;
pub use report::SomierReport;

use spread_rt::{RtError, Runtime};

/// Which Somier implementation to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SomierImpl {
    /// One buffer at a time, baseline `target` directives (1 GPU).
    OneBufferTarget,
    /// One buffer at a time, `target spread` directives.
    OneBufferSpread,
    /// Two half buffers at a time via `taskloop` (needs ≥ 2 devices).
    TwoBuffers,
    /// Recursive-task double buffering (needs ≥ 2 devices).
    DoubleBuffering,
}

impl SomierImpl {
    /// Table/figure label.
    pub fn label(self) -> &'static str {
        match self {
            SomierImpl::OneBufferTarget => "One Buffer (target)",
            SomierImpl::OneBufferSpread => "One Buffer",
            SomierImpl::TwoBuffers => "Two Buffers",
            SomierImpl::DoubleBuffering => "Double Buffering",
        }
    }
}

/// Run one Somier configuration end to end on a fresh runtime.
pub fn run_somier(
    cfg: &SomierConfig,
    which: SomierImpl,
    n_gpus: usize,
) -> Result<(SomierReport, Runtime), RtError> {
    let mut rt = cfg.runtime(n_gpus);
    let report = match which {
        SomierImpl::OneBufferTarget => one_buffer::run_target_baseline(&mut rt, cfg)?,
        SomierImpl::OneBufferSpread => one_buffer::run_spread(&mut rt, cfg, n_gpus)?,
        SomierImpl::TwoBuffers => two_buffers::run(&mut rt, cfg, n_gpus)?,
        SomierImpl::DoubleBuffering => double_buffering::run(&mut rt, cfg, n_gpus)?,
    };
    Ok((report, rt))
}
