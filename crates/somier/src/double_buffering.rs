//! Implementation 3: *Double Buffering* (§V-C, Listing 12).
//!
//! A recursive routine processes one half buffer: map in (taskgroup
//! barrier), **spawn the routine for the next half**, then kernels and
//! map out. Because the spawn happens right after the map-in barrier,
//! the next half's host→device transfers are dispatched while the
//! current half's kernels run — the controlled overlap the paper hopes
//! for (and whose absence it then diagnoses in Figure 4: transfers
//! serialize on the copy engines and dominate, so kernels end up
//! *interleaved* with transfers rather than overlapped).

use std::cell::RefCell;
use std::rc::Rc;

use spread_rt::{RtError, Runtime, Scope};

use crate::arrays::SomierArrays;
use crate::config::SomierConfig;
use crate::one_buffer::build_range_pipeline;
use crate::report::SomierReport;

/// The recursive routine of Listing 12 (`foobar` in the paper): build
/// half `h`'s pipeline, with the *after-map-in* hook recursing to
/// half `h + 1`.
fn process_half(
    s: &mut Scope<'_>,
    cfg: Rc<SomierConfig>,
    arr: SomierArrays,
    devices: Rc<Vec<u32>>,
    half: usize,
    h: usize,
    sums: Rc<RefCell<[f64; 3]>>,
) {
    let n = cfg.n;
    let b0 = h * half;
    if b0 >= n {
        return;
    }
    let b1 = (b0 + half).min(n);
    let chunk = (b1 - b0).div_ceil(devices.len());
    // "the routine calls itself inside an asynchronous task" — fired
    // between this half's map-in barrier and its kernels.
    let spawn_next: crate::one_buffer::Hook = {
        let cfg = Rc::clone(&cfg);
        let devices = Rc::clone(&devices);
        let sums = Rc::clone(&sums);
        Box::new(move |s: &mut Scope<'_>| {
            process_half(s, cfg, arr, devices, half, h + 1, sums);
        })
    };
    if let Err(e) = build_range_pipeline(
        s,
        &cfg,
        &arr,
        &devices,
        b0,
        b1,
        chunk,
        sums,
        Some(spawn_next),
        None,
    ) {
        s.fail(e);
    }
}

/// Run the Double Buffering implementation on `n_gpus` devices.
pub fn run(rt: &mut Runtime, cfg: &SomierConfig, n_gpus: usize) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let half = cfg.half_planes(n_gpus);
    let devices = Rc::new((0..n_gpus as u32).collect::<Vec<u32>>());
    let mut centers = [0.0f64; 3];
    let cfg_rc = Rc::new(cfg.clone());

    rt.run(|s| {
        for _step in 0..cfg_rc.timesteps {
            let sums = Rc::new(RefCell::new([0.0f64; 3]));
            // The whole recursive cascade of one step runs inside a
            // taskgroup so the step completes before the next begins.
            s.taskgroup(|s| {
                process_half(
                    s,
                    Rc::clone(&cfg_rc),
                    arr,
                    Rc::clone(&devices),
                    half,
                    0,
                    Rc::clone(&sums),
                );
            })?;
            let sums = sums.borrow();
            for c in 0..3 {
                centers[c] = sums[c] / (n * cfg_rc.plane_elems()) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        crate::SomierImpl::DoubleBuffering.label(),
        n_gpus,
        rt,
        centers,
    ))
}
