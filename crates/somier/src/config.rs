//! Somier configuration and calibration.
//!
//! ## Scaling to the paper's experiment
//!
//! The paper runs `n = 1200` (12 grids × 1200³ × 8 B ≈ 154.5 GB ≈ 10×
//! one V100's 16 GB) for 31 time steps. We run the same *shape* scaled
//! down: the default reproduction size is `n = 120` with each device's
//! memory set to `total / MEM_RATIO` so every scheduling decision
//! (buffers per step, chunks per buffer, halos) is identical in
//! structure. A single `time_scale` then multiplies all modeled costs
//! (equivalently, divides all bandwidths) so reported virtual times land
//! in the paper's magnitude; it does not change who wins or by how much.
//!
//! ## Calibration constants
//!
//! `DESIGN.md` §2 derives the interconnect calibration (link 12 GB/s,
//! switch 14 GB/s, host bus 21 GB/s) from Table I's transfer speedups.
//! The kernel cost constants below are *fitted* so the 1-GPU run splits
//! roughly 72% transfer / 28% kernel time — the regime the paper
//! describes ("the execution time was mainly dominated by memory
//! transfers", §VI-B); they are not derived from first principles.

use spread_devices::{ComputeModel, DeviceSpec, Topology};
use spread_rt::{Runtime, RuntimeConfig};
use spread_trace::SimDuration;

/// Problem size ≈ 9.66 × one device's memory, as in the paper
/// (154.5 GB / 16 GB).
pub const MEM_RATIO: f64 = 9.66;

/// Per-element, at-saturation kernel costs in nanoseconds (single
/// effective lane; the Somier device model folds occupancy into these).
#[derive(Clone, Copy, Debug)]
pub struct KernelCosts {
    /// 6-neighbour spring stencil (≈ 60 flops + sqrt per node).
    pub forces: f64,
    /// `A = F/m`.
    pub accel: f64,
    /// `V += A·dt`.
    pub velocity: f64,
    /// `X += V·dt`.
    pub position: f64,
    /// Per-plane position sums.
    pub centers: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            forces: 3.1,
            accel: 0.7,
            velocity: 0.7,
            position: 0.7,
            centers: 0.47,
        }
    }
}

/// Physics constants of the spring grid.
#[derive(Clone, Copy, Debug)]
pub struct Physics {
    /// Spring stiffness.
    pub k: f64,
    /// Rest length (= lattice spacing).
    pub rest_len: f64,
    /// Node mass.
    pub mass: f64,
    /// Time step.
    pub dt: f64,
}

impl Default for Physics {
    fn default() -> Self {
        Physics {
            k: 10.0,
            rest_len: 1.0,
            mass: 1.0,
            dt: 1e-3,
        }
    }
}

/// A complete Somier experiment description.
#[derive(Clone, Debug)]
pub struct SomierConfig {
    /// Grid side (the paper: 1200; reproduction default: 120).
    pub n: usize,
    /// Time steps (the paper: 31).
    pub timesteps: usize,
    /// Problem bytes / device memory bytes.
    pub mem_ratio: f64,
    /// Global time scale applied to bandwidths, DMA latency and kernel
    /// costs (see module docs).
    pub time_scale: f64,
    /// Kernel cost constants.
    pub costs: KernelCosts,
    /// Physics constants.
    pub physics: Physics,
    /// Host threads executing kernel bodies.
    pub team_threads: usize,
    /// Record trace spans.
    pub trace: bool,
    /// Default-stream (single-queue) device semantics; see
    /// [`spread_devices::DeviceSpec::single_queue`].
    pub single_queue: bool,
    /// Per-`cudaMemcpy` launch latency in microseconds (before time
    /// scaling). 10 µs is a typical synchronous-copy call overhead.
    pub dma_latency_us: u64,
    /// Fraction of [`SomierConfig::device_mem_bytes`] the devices really
    /// get (default 1.0). The oversubscribed-memory run mode: buffer
    /// planning ([`SomierConfig::buffer_planes`]) still assumes the full
    /// figure, so below 1.0 the planned chunks genuinely exceed device
    /// capacity and only a `spread_pressure(…)` policy lets the run
    /// complete.
    pub mem_cap_frac: f64,
    /// Heterogeneous mode: `(device, factor)` multiplies one device's
    /// per-kernel compute time by `factor` (factor 2.0 ⇒ half-speed
    /// compute). Transfers are unaffected — links are shared. `None`
    /// (the default) keeps the machine uniform. This is the machine the
    /// `spread_schedule(auto)` experiments run on: a static equal split
    /// waits on the slow device every buffer, while the profile-guided
    /// schedule learns to shift iterations onto the fast ones.
    pub slow_device: Option<(usize, f64)>,
    /// Chunk granularity override, in planes. `None` (the default)
    /// keeps Listing 10's one-chunk-per-device split
    /// (`chunk = buffer / num_devices`); `Some(p)` carves each buffer
    /// into `p`-plane chunks round-robined over the devices instead —
    /// the finer granularity the pipelined implementations run at, and
    /// the regime the hot-path benchmark measures planning cost in.
    /// Physics are unaffected (chunking only changes the decomposition;
    /// halos make every chunk self-contained).
    pub chunk_planes_override: Option<usize>,
}

impl SomierConfig {
    /// The reproduction of the paper's experiment: n=120 stand-in for
    /// 1200³, 31 steps, times scaled to the paper's magnitude.
    pub fn paper() -> Self {
        SomierConfig {
            n: 120,
            timesteps: 31,
            mem_ratio: MEM_RATIO,
            // Our problem is 1000× smaller than the paper's (1200³ →
            // 120³); a scale near that (fitted to Table I's absolute
            // baseline) makes a 12 GB/s link behave like ~14 MB/s so
            // virtual times land in the paper's magnitude.
            time_scale: 845.0,
            costs: KernelCosts::default(),
            physics: Physics::default(),
            team_threads: 4,
            trace: false,
            single_queue: true,
            dma_latency_us: 10,
            mem_cap_frac: 1.0,
            slow_device: None,
            chunk_planes_override: None,
        }
    }

    /// A small configuration for tests (fast, still multi-buffer).
    pub fn test_small(n: usize, timesteps: usize) -> Self {
        SomierConfig {
            n,
            timesteps,
            mem_ratio: MEM_RATIO,
            time_scale: 1.0,
            costs: KernelCosts::default(),
            physics: Physics::default(),
            team_threads: 2,
            trace: true,
            single_queue: true,
            dma_latency_us: 10,
            mem_cap_frac: 1.0,
            slow_device: None,
            chunk_planes_override: None,
        }
    }

    /// Override the grid side.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Override the number of time steps.
    pub fn with_timesteps(mut self, t: usize) -> Self {
        self.timesteps = t;
        self
    }

    /// Enable/disable trace recording.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Select default-stream (`true`, paper-faithful) or
    /// separate-streams (`false`, ablation) device semantics.
    pub fn with_single_queue(mut self, on: bool) -> Self {
        self.single_queue = on;
        self
    }

    /// Cap every device's memory at `frac` of what the buffer planning
    /// assumes (see the field docs): the oversubscribed-memory mode for
    /// the `spread_pressure(…)` experiments.
    pub fn with_mem_cap_frac(mut self, frac: f64) -> Self {
        self.mem_cap_frac = frac.clamp(0.0, 1.0);
        self
    }

    /// Make one device's compute `factor`× slower (factor 2.0 ⇒ 0.5×
    /// throughput): the heterogeneous machine for the
    /// `spread_schedule(auto)` experiments. See
    /// [`SomierConfig::slow_device`].
    pub fn with_slow_device(mut self, device: usize, factor: f64) -> Self {
        self.slow_device = Some((device, factor.max(1.0)));
        self
    }

    /// Carve buffers into `planes`-plane chunks round-robined over the
    /// devices instead of Listing 10's one chunk per device. See
    /// [`SomierConfig::chunk_planes_override`].
    pub fn with_chunk_planes(mut self, planes: usize) -> Self {
        self.chunk_planes_override = Some(planes.max(1));
        self
    }

    /// Elements per plane (`n²`).
    pub fn plane_elems(&self) -> usize {
        self.n * self.n
    }

    /// Total problem bytes (12 grids of n³ doubles).
    pub fn total_bytes(&self) -> u64 {
        12 * (self.n as u64).pow(3) * 8
    }

    /// Bytes of one plane across all 12 grids.
    pub fn plane_bytes(&self) -> u64 {
        12 * self.plane_elems() as u64 * 8
    }

    /// Bytes of per-chunk overhead beyond the 12 grids: the 3 position
    /// grids' ±1-plane halos plus the centers partials.
    fn overhead_bytes(&self) -> u64 {
        2 * 3 * self.plane_elems() as u64 * 8 + 3 * self.n as u64 * 8
    }

    /// One device's memory (total / mem_ratio), never below what one
    /// 3-plane chunk needs.
    pub fn device_mem_bytes(&self) -> u64 {
        let raw = (self.total_bytes() as f64 / self.mem_ratio) as u64;
        raw.max(3 * self.plane_bytes() + self.overhead_bytes())
    }

    /// What a device *actually* gets: [`SomierConfig::device_mem_bytes`]
    /// times [`SomierConfig::mem_cap_frac`]. Everything that plans
    /// buffers keeps using the uncapped figure, so a fraction below 1.0
    /// oversubscribes the devices for real.
    pub fn capped_device_mem_bytes(&self) -> u64 {
        (self.device_mem_bytes() as f64 * self.mem_cap_frac) as u64
    }

    /// Planes a single device chunk can hold: the device must fit 12
    /// grids of `chunk` planes plus the halo/partials overhead.
    pub fn chunk_planes(&self) -> usize {
        let usable = self
            .device_mem_bytes()
            .saturating_sub(self.overhead_bytes());
        ((usable / self.plane_bytes()) as usize).max(1)
    }

    /// Buffer size in planes when `n_gpus` devices share the work ("the
    /// problem is split into buffers that sum up for the total amount of
    /// memory of the devices", §V-A.2). Clamped to the grid size.
    pub fn buffer_planes(&self, n_gpus: usize) -> usize {
        (self.chunk_planes() * n_gpus).min(self.n)
    }

    /// Half-buffer size (in planes) for the Two Buffers and Double
    /// Buffering implementations.
    ///
    /// The paper halves the buffer "to process two half buffers at the
    /// same time without running out of memory" (§V-B). Under
    /// default-stream semantics the pipelined implementations
    /// transiently try to hold a *third* half per device (the next
    /// half's map-in allocates while an earlier map-out is still queued
    /// behind kernels on the single device queue); the runtime's
    /// allocation backpressure absorbs that by briefly delaying the
    /// map-in, so halves are sized at a third of the device's capacity.
    pub fn half_planes(&self, n_gpus: usize) -> usize {
        let usable = (self.device_mem_bytes() / 3).saturating_sub(self.overhead_bytes());
        let half_chunk = ((usable / self.plane_bytes()) as usize).max(1);
        (half_chunk * n_gpus).min(self.n)
    }

    /// The machine for `n_gpus` devices: the CTE-POWER topology, device
    /// memory from the ratio, costs from the calibration, everything
    /// rescaled by `time_scale`.
    pub fn topology(&self, n_gpus: usize) -> Topology {
        let mut topo = Topology::ctepower(n_gpus);
        let spec = DeviceSpec {
            name: "V100-sim".into(),
            mem_bytes: self.capped_device_mem_bytes(),
            dma_latency: SimDuration::from_micros(self.dma_latency_us),
            compute: ComputeModel {
                launch_latency: SimDuration::from_micros(8),
                // Occupancy is folded into the per-element costs: the
                // KernelCosts are effective at-saturation values.
                max_parallelism: 1,
                time_scale: 1.0,
            },
            // Default-stream semantics: the paper's runtime serializes
            // every per-device operation (Figure 4). The ablation bench
            // flips this off to measure what separate streams would buy.
            single_queue: self.single_queue,
        };
        topo.devices = vec![spec; n_gpus];
        if let Some((d, factor)) = self.slow_device {
            if d < topo.devices.len() {
                topo.devices[d].compute.time_scale = factor;
            }
        }
        topo.with_time_scale(self.time_scale)
    }

    /// A runtime for this experiment on `n_gpus` devices. Allocation
    /// backpressure is on: the pipelined implementations transiently
    /// over-subscribe device memory (their next halves' map-ins race the
    /// previous halves' releases), and the paper's runs clearly survived
    /// this — a pooled allocator that briefly waits models that.
    pub fn runtime(&self, n_gpus: usize) -> Runtime {
        Runtime::new(
            RuntimeConfig::new(self.topology(n_gpus))
                .with_team_threads(self.team_threads)
                .with_trace(self.trace)
                .with_alloc_backpressure(true),
        )
    }

    /// Like [`SomierConfig::runtime`], with a fault plan injected — the
    /// machine for the resilience experiments.
    pub fn runtime_with_faults(&self, n_gpus: usize, plan: spread_sim::FaultPlan) -> Runtime {
        Runtime::new(
            RuntimeConfig::new(self.topology(n_gpus))
                .with_team_threads(self.team_threads)
                .with_trace(self.trace)
                .with_alloc_backpressure(true)
                .with_fault_plan(plan),
        )
    }

    /// Per-plane modeled kernel cost (the `work_per_iter_ns` of a kernel
    /// whose iteration is one plane).
    pub fn plane_cost(&self, per_elem_ns: f64) -> f64 {
        per_elem_ns * self.plane_elems() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = SomierConfig::paper();
        assert_eq!(c.n, 120);
        assert_eq!(c.timesteps, 31);
        // Problem ≈ 9.66× device memory.
        let ratio = c.total_bytes() as f64 / c.device_mem_bytes() as f64;
        assert!(
            (ratio - MEM_RATIO).abs() / MEM_RATIO < 0.15,
            "ratio {ratio}"
        );
        // With 1 GPU the buffer is a small fraction of the grid; with 4
        // GPUs it's 4× bigger.
        let b1 = c.buffer_planes(1);
        let b4 = c.buffer_planes(4);
        assert_eq!(b4, 4 * b1);
        assert!(b1 >= 2, "buffer must hold at least 2 planes: {b1}");
        assert!(c.n / b1 >= 5, "the paper processes many buffers per step");
    }

    #[test]
    fn chunk_fits_device_memory() {
        let c = SomierConfig::paper();
        let overhead = 2 * 3 * c.plane_elems() as u64 * 8 + 3 * c.n as u64 * 8;
        let chunk = c.chunk_planes() as u64;
        let need = chunk * c.plane_bytes() + overhead;
        assert!(need <= c.device_mem_bytes());
        // And one more plane would not fit.
        let need_more = (chunk + 1) * c.plane_bytes() + overhead;
        assert!(need_more > c.device_mem_bytes());
    }

    #[test]
    fn three_halves_fit_for_the_pipelined_versions() {
        let c = SomierConfig::paper();
        let overhead = 2 * 3 * c.plane_elems() as u64 * 8 + 3 * c.n as u64 * 8;
        let half_chunk = (c.half_planes(4) / 4) as u64;
        assert!(half_chunk >= 2, "gap rule needs half chunks of >= 2 planes");
        let need3 = 3 * (half_chunk * c.plane_bytes() + overhead);
        assert!(
            need3 <= c.device_mem_bytes(),
            "the transient third half must fit: {need3} vs {}",
            c.device_mem_bytes()
        );
    }

    #[test]
    fn small_config_multi_buffer() {
        let c = SomierConfig::test_small(24, 2);
        assert!(c.buffer_planes(1) < c.n, "still needs buffering");
        assert!(c.buffer_planes(2) >= 2);
    }

    #[test]
    fn slow_device_scales_only_that_device() {
        let c = SomierConfig::paper().with_slow_device(1, 2.0);
        let t = c.topology(3);
        assert_eq!(
            t.devices[1].compute.time_scale,
            2.0 * t.devices[0].compute.time_scale
        );
        assert_eq!(
            t.devices[2].compute.time_scale,
            t.devices[0].compute.time_scale
        );
        // Transfers are untouched: links are shared.
        assert_eq!(t.devices[1].dma_latency, t.devices[0].dma_latency);
    }

    #[test]
    fn topology_is_scaled() {
        let c = SomierConfig::paper();
        let t = c.topology(4);
        assert_eq!(t.n_devices(), 4);
        assert!((t.link_bw - 12e9 / c.time_scale).abs() < 1.0);
        assert_eq!(t.devices[0].mem_bytes, c.device_mem_bytes());
    }
}
