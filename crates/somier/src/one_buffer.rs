//! Implementation 1: *One Buffer at a time* (§V-A).
//!
//! The grid is split along the outermost dimension into buffers sized to
//! the devices' combined memory. Each time step processes buffers
//! sequentially: map in → five kernels → map out.
//!
//! Two variants:
//! * [`run_target_baseline`] — paper Listing 9: existing `target`
//!   directive set, one GPU, blocking constructs.
//! * [`run_spread`] — paper Listing 10: `target spread` directive set;
//!   each buffer is divided into per-device chunks
//!   (`chunk = buffer_size / num_devices`), transfers and kernels are
//!   `nowait` with chunk-level `depend` chains, and `taskgroup` barriers
//!   separate the mapping and compute phases.
//!
//! The shared machinery, [`build_range_pipeline`], expresses one range's
//! processing as an *asynchronous* three-stage pipeline (map-in group →
//! kernel group → map-out group, chained through group gates), so the
//! Two Buffers and Double Buffering implementations can run several
//! pipelines concurrently — the whole point of those variants.

use std::cell::RefCell;
use std::rc::Rc;

use spread_core::prelude::*;
use spread_rt::directives::{Target, TargetEnterData, TargetExitData};
use spread_rt::map::{from, to};
use spread_rt::{HostArray, RtError, Runtime, Scope, TaskId};

use crate::arrays::SomierArrays;
use crate::config::SomierConfig;
use crate::kernels;
use crate::report::SomierReport;

/// A continuation hook passed through the pipeline builder.
pub(crate) type Hook = Box<dyn FnOnce(&mut Scope<'_>)>;

/// Element range of planes `[p0, p1)`.
fn plane_elems(n2: usize, p0: usize, p1: usize) -> std::ops::Range<usize> {
    p0 * n2..p1 * n2
}

/// Element range of planes `[p0, p1)` with a clamped ±1-plane halo.
fn plane_elems_halo(n: usize, n2: usize, p0: usize, p1: usize) -> std::ops::Range<usize> {
    p0.saturating_sub(1) * n2..(p1 + 1).min(n) * n2
}

/// Paper Listing 9: baseline with `target` directives on device 0.
pub fn run_target_baseline(rt: &mut Runtime, cfg: &SomierConfig) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(1);
    let mut centers = [0.0f64; 3];

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let halo = plane_elems_halo(n, n2, b0, b1);
                let body = plane_elems(n2, b0, b1);

                // Map data from host to the device (all 12 grids; X with
                // halos for the stencil).
                let mut enter = TargetEnterData::device(0);
                for c in 0..3 {
                    enter = enter.map(to(arr.x[c], halo.clone()));
                }
                for g in [arr.v, arr.a, arr.f] {
                    for c in 0..3 {
                        enter = enter.map(to(g[c], body.clone()));
                    }
                }
                enter.launch(s)?;

                // The five kernels, blocking, in order (Listing 9 uses
                // no nowait). Map clauses reuse the held mappings.
                let with_maps = |mut t: Target, xs: bool, grids: &[[HostArray; 3]]| {
                    if xs {
                        for c in 0..3 {
                            t = t.map(to(arr.x[c], halo.clone()));
                        }
                    }
                    for g in grids {
                        for c in 0..3 {
                            t = t.map(to(g[c], body.clone()));
                        }
                    }
                    t
                };
                with_maps(Target::device(0), true, &[arr.f]).parallel_for(
                    s,
                    b0..b1,
                    kernels::forces(cfg, &arr),
                )?;
                with_maps(Target::device(0), false, &[arr.f, arr.a]).parallel_for(
                    s,
                    b0..b1,
                    kernels::accelerations(cfg, &arr),
                )?;
                with_maps(Target::device(0), false, &[arr.a, arr.v]).parallel_for(
                    s,
                    b0..b1,
                    kernels::velocities(cfg, &arr),
                )?;
                {
                    let mut t = Target::device(0);
                    for c in 0..3 {
                        t = t.map(to(arr.v[c], body.clone()));
                        t = t.map(to(arr.x[c], halo.clone()));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                {
                    // Centers: the manual reduction — per-plane partials
                    // come home with a from-map.
                    let mut t = Target::device(0);
                    for c in 0..3 {
                        t = t.map(to(arr.x[c], halo.clone()));
                        t = t.map(from(arr.partials[c], b0..b1));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }

                // Map results back and release.
                let mut exit = TargetExitData::device(0);
                for g in [arr.x, arr.v, arr.a, arr.f] {
                    for c in 0..3 {
                        exit = exit.map(from(g[c], body.clone()));
                    }
                }
                exit.launch(s)?;

                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        crate::SomierImpl::OneBufferTarget.label(),
        1,
        rt,
        centers,
    ))
}

/// Launch the five spread kernels (`nowait`, chunk-level `depend`
/// chains) over planes `[b0, b1)`.
fn launch_kernels(
    s: &mut Scope<'_>,
    cfg: &SomierConfig,
    arr: &SomierArrays,
    devices: &[u32],
    b0: usize,
    b1: usize,
    chunk: usize,
) -> Result<(), RtError> {
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();
    // One plan-cache key per (kernel, buffer): every timestep re-launches
    // the same five constructs over the same plane ranges, so from the
    // second step on, admission planning, chunking and section
    // evaluation replay from the cache.
    let spread = |kernel: &str| {
        TargetSpread::devices(devices.to_vec())
            .with_schedule(SpreadSchedule::static_chunk(chunk))
            .with_plan_cache(format!("somier:{kernel}:{b0}"))
            .nowait()
    };
    // forces: in X (halo), out F.
    {
        let mut t = spread("forces");
        for c in 0..3 {
            t = t
                .map(spread_to(arr.x[c], x_halo))
                .depend_in(arr.x[c], x_halo);
        }
        for c in 0..3 {
            t = t.map(spread_to(arr.f[c], body)).depend_out(arr.f[c], body);
        }
        t.parallel_for(s, b0..b1, kernels::forces(cfg, arr))?;
    }
    // accelerations: in F, out A.
    {
        let mut t = spread("accel");
        for c in 0..3 {
            t = t.map(spread_to(arr.f[c], body)).depend_in(arr.f[c], body);
        }
        for c in 0..3 {
            t = t.map(spread_to(arr.a[c], body)).depend_out(arr.a[c], body);
        }
        t.parallel_for(s, b0..b1, kernels::accelerations(cfg, arr))?;
    }
    // velocities: in A, inout V.
    {
        let mut t = spread("vel");
        for c in 0..3 {
            t = t.map(spread_to(arr.a[c], body)).depend_in(arr.a[c], body);
        }
        for c in 0..3 {
            t = t
                .map(spread_to(arr.v[c], body))
                .depend_in(arr.v[c], body)
                .depend_out(arr.v[c], body);
        }
        t.parallel_for(s, b0..b1, kernels::velocities(cfg, arr))?;
    }
    // positions: in V, inout X.
    {
        let mut t = spread("pos");
        for c in 0..3 {
            t = t.map(spread_to(arr.v[c], body)).depend_in(arr.v[c], body);
        }
        for c in 0..3 {
            t = t
                .map(spread_to(arr.x[c], body))
                .depend_in(arr.x[c], body)
                .depend_out(arr.x[c], body);
        }
        t.parallel_for(s, b0..b1, kernels::positions(cfg, arr))?;
    }
    // centers: in X, out partials (the manual reduction).
    {
        let mut t = spread("centers");
        for c in 0..3 {
            t = t.map(spread_to(arr.x[c], body)).depend_in(arr.x[c], body);
        }
        for c in 0..3 {
            t = t
                .map(spread_from(arr.partials[c], |ch| ch.range()))
                .depend_out(arr.partials[c], |ch| ch.range());
        }
        t.parallel_for(s, b0..b1, kernels::centers(cfg, arr))?;
    }
    Ok(())
}

/// Build the asynchronous processing pipeline for planes `[b0, b1)`:
///
/// ```text
/// [enter-data-spread chunks]        — group 1 ("taskgroup { enter }")
///        ▼ gate                       (after_map_in hook fires here)
/// [5 spread kernels w/ depends]     — group 2 ("taskgroup { kernels }")
///        ▼ gate
/// [exit-data-spread chunks]         — group 3 ("taskgroup { exit }")
///        ▼ gate
/// [accumulate centers partials; on_done continuation]
/// ```
///
/// Returns the final stage's task id (drain it for blocking semantics).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_range_pipeline(
    s: &mut Scope<'_>,
    cfg: &SomierConfig,
    arr: &SomierArrays,
    devices: &[u32],
    b0: usize,
    b1: usize,
    chunk: usize,
    sums: Rc<RefCell<[f64; 3]>>,
    after_map_in: Option<Hook>,
    on_done: Option<Hook>,
) -> Result<TaskId, RtError> {
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let len = b1 - b0;
    let devices: Rc<Vec<u32>> = Rc::new(devices.to_vec());
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();

    let g_enter = s.group_create();
    let g_kernels = s.group_create();
    let g_exit = s.group_create();

    // Phase 1: map data from host to devices asynchronously.
    s.with_group(g_enter, |s| -> Result<(), RtError> {
        let mut enter = TargetEnterDataSpread::devices(devices.iter().copied())
            .range(b0, len)
            .chunk_size(chunk)
            .nowait();
        for c in 0..3 {
            enter = enter.map(spread_to(arr.x[c], x_halo));
        }
        for g in [arr.v, arr.a, arr.f] {
            for c in 0..3 {
                enter = enter.map(spread_to(g[c], body));
            }
        }
        enter.launch(s)?;
        Ok(())
    })?;

    // Phase 2: kernels, gated on the map-in group.
    let stage2 = {
        let cfg = cfg.clone();
        let arr = *arr;
        let devices = Rc::clone(&devices);
        s.task_chained(
            format!("kernels[{b0}..{b1}]"),
            Vec::new(),
            Some(g_enter),
            move |s| {
                if let Some(hook) = after_map_in {
                    hook(s);
                }
                let r = s.with_group(g_kernels, |s| {
                    launch_kernels(s, &cfg, &arr, &devices, b0, b1, chunk)
                });
                if let Err(e) = r {
                    s.fail(e);
                }
            },
        )
    };

    // Phase 3: map results back, gated on the kernel group.
    let stage3 = {
        let arr = *arr;
        let devices = Rc::clone(&devices);
        s.task_chained(
            format!("exit[{b0}..{b1}]"),
            vec![stage2],
            Some(g_kernels),
            move |s| {
                let r = s.with_group(g_exit, |s| -> Result<(), RtError> {
                    let mut exit = TargetExitDataSpread::devices(devices.iter().copied())
                        .range(b0, len)
                        .chunk_size(chunk)
                        .nowait();
                    for g in [arr.x, arr.v, arr.a, arr.f] {
                        for c in 0..3 {
                            exit = exit.map(spread_from(g[c], body));
                        }
                    }
                    exit.launch(s)?;
                    Ok(())
                });
                if let Err(e) = r {
                    s.fail(e);
                }
            },
        )
    };

    // Phase 4: fold this range's centers partials; run the continuation.
    let partials = arr.partials;
    let stage4 = s.task_chained(
        format!("accumulate[{b0}..{b1}]"),
        vec![stage3],
        Some(g_exit),
        move |s| {
            {
                let mut sums = sums.borrow_mut();
                for c in 0..3 {
                    // Element-sequential: matches the reference's
                    // rounding order for bit-exact comparisons.
                    s.with_host(partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
            }
            if let Some(f) = on_done {
                f(s);
            }
        },
    );
    Ok(stage4)
}

/// One Buffer with self-contained per-construct maps and a
/// `spread_resilience(…)` clause: the robustness variant for
/// fault-injected machines.
///
/// Unlike [`run_spread`], which holds mappings across the five kernels
/// through enter/exit data-spread directives, every construct here maps
/// its own inputs in and results out and blocks before the next stage.
/// That makes each per-chunk construct a self-contained unit of
/// recovery: when a device dies mid-run, the runtime replays the whole
/// construct — enter mappings included — on a survivor from the
/// unharmed host image (device→host writes commit only on construct
/// completion), so the recovered run is bit-identical to a fault-free
/// one. Under [`ResiliencePolicy::FailStop`] the same program instead
/// reports the loss deterministically.
pub fn run_spread_resilient(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
    policy: ResiliencePolicy,
) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let chunk = (b1 - b0).div_ceil(n_gpus);
                let spread = || {
                    TargetSpread::devices(devices.clone())
                        .with_schedule(SpreadSchedule::static_chunk(chunk))
                        .with_resilience(policy)
                };
                // forces: in X (halo), out F.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], x_halo));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.f[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::forces(cfg, &arr))?;
                }
                // accelerations: in F, out A.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.f[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.a[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::accelerations(cfg, &arr))?;
                }
                // velocities: in A, inout V.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.a[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.v[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::velocities(cfg, &arr))?;
                }
                // positions: in V, inout X (interior writes only).
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.v[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.x[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                // centers: in X, out the per-plane partials.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.partials[c], |ch| ch.range()));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }
                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        "One Buffer (resilient)",
        n_gpus,
        rt,
        centers,
    ))
}

/// One Buffer with self-contained per-construct maps and a
/// `spread_integrity(…)` clause: the data-integrity variant for
/// machines where a device silently corrupts payloads in flight.
///
/// The program is [`run_spread_resilient`]'s construct-scoped shape —
/// every construct maps its own inputs in and results out and blocks
/// before the next stage — so each per-chunk construct is also a
/// self-contained unit of *healing*: every staged device→host commit
/// is re-digested against its source CRC32C at the trust boundary, and
/// under [`IntegrityMode::Heal`] a mismatch discards the tainted
/// payload and re-executes the construct from the unharmed host image
/// (device→host writes commit only after verification). Healing is
/// value-invisible, so the run stays bit-identical to the reference no
/// matter how many flips land; under [`IntegrityMode::Verify`] the
/// same program instead reports the first corruption deterministically.
pub fn run_spread_integrity(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
    mode: IntegrityMode,
) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let chunk = (b1 - b0).div_ceil(n_gpus);
                let spread = || {
                    TargetSpread::devices(devices.clone())
                        .with_schedule(SpreadSchedule::static_chunk(chunk))
                        .with_integrity(mode)
                };
                // forces: in X (halo), out F.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], x_halo));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.f[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::forces(cfg, &arr))?;
                }
                // accelerations: in F, out A.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.f[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.a[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::accelerations(cfg, &arr))?;
                }
                // velocities: in A, inout V.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.a[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.v[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::velocities(cfg, &arr))?;
                }
                // positions: in V, inout X (interior writes only).
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.v[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.x[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                // centers: in X, out the per-plane partials.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.partials[c], |ch| ch.range()));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }
                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        "One Buffer (integrity)",
        n_gpus,
        rt,
        centers,
    ))
}

/// One Buffer with self-contained per-construct maps and a
/// `spread_overlap(…)` clause: the software-pipelined variant that
/// overlaps each piece's transfers with its compute.
///
/// The program is [`run_spread_resilient`]'s construct-scoped shape —
/// every construct maps its own inputs in and results out and blocks
/// before the next stage — but each per-device piece is split into
/// `depth` sub-slices and processed as a copy-in → kernel → copy-out
/// software pipeline: sub-slice `k`'s kernel runs while `k+1`'s H2D is
/// in flight and `k-1`'s D2H drains. Device→host writes stay staged
/// until the *whole piece* finishes, so commit granularity — and with
/// it resilience, integrity, and straggler semantics — is unchanged;
/// the pipeline is pure latency hiding and the run is bit-identical to
/// the unpipelined one.
pub fn run_spread_overlap(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
    depth: u32,
) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let chunk = (b1 - b0).div_ceil(n_gpus);
                let spread = || {
                    TargetSpread::devices(devices.clone())
                        .with_schedule(SpreadSchedule::static_chunk(chunk))
                        .with_overlap(OverlapPolicy::Depth(depth))
                };
                // forces: in X (halo), out F.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], x_halo));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.f[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::forces(cfg, &arr))?;
                }
                // accelerations: in F, out A.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.f[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.a[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::accelerations(cfg, &arr))?;
                }
                // velocities: in A, inout V.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.a[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.v[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::velocities(cfg, &arr))?;
                }
                // positions: in V, inout X (interior writes only).
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.v[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.x[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                // centers: in X, out the per-plane partials.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.partials[c], |ch| ch.range()));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }
                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        "One Buffer (overlap)",
        n_gpus,
        rt,
        centers,
    ))
}

/// One Buffer with self-contained per-construct maps and a
/// `spread_straggler(…)` clause: the latency-robustness variant for
/// machines where a device runs slow without failing.
///
/// The program is [`run_spread_resilient`]'s construct-scoped shape —
/// every construct maps its own inputs in and results out and blocks
/// before the next stage — so each per-chunk construct is also a
/// self-contained unit of *speculation*: when a chunk's kernel blows
/// the construct's relative progress deadline, the runtime re-executes
/// it on the least-loaded healthy sibling and commits whichever copy's
/// device→host writes land first. First-commit-wins makes the rescue
/// value-invisible, so the run stays bit-identical to the reference
/// regardless of which copy wins; under [`StragglerPolicy::Steal`] the
/// straggler's copy is also cancelled, recovering the construct's
/// latency rather than merely bounding its output.
pub fn run_spread_straggler(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
    policy: StragglerPolicy,
) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let chunk = (b1 - b0).div_ceil(n_gpus);
                let spread = || {
                    // Somier constructs are transfer-heavy, so the first
                    // finisher's span (which sets the deadline) is mostly
                    // H2D time. The default β=4 would only catch extreme
                    // slowdowns; β=2 keeps the deadline sensitive to
                    // compute-side lag without tripping on the transfer
                    // jitter a static split actually exhibits.
                    TargetSpread::devices(devices.clone())
                        .with_schedule(SpreadSchedule::static_chunk(chunk))
                        .with_straggler(policy)
                        .with_straggler_beta(2.0)
                };
                // forces: in X (halo), out F.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], x_halo));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.f[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::forces(cfg, &arr))?;
                }
                // accelerations: in F, out A.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.f[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.a[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::accelerations(cfg, &arr))?;
                }
                // velocities: in A, inout V.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.a[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.v[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::velocities(cfg, &arr))?;
                }
                // positions: in V, inout X (interior writes only).
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.v[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.x[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                // centers: in X, out the per-plane partials.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.partials[c], |ch| ch.range()));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }
                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        "One Buffer (straggler)",
        n_gpus,
        rt,
        centers,
    ))
}

/// One Buffer with self-contained per-construct maps and
/// `spread_schedule(auto)`: the profile-guided variant for
/// heterogeneous machines
/// ([`SomierConfig::with_slow_device`](crate::SomierConfig::with_slow_device)).
///
/// The program is [`run_spread_resilient`]'s construct-scoped shape,
/// but every construct's split is resolved by the runtime from the
/// profiles of previous launches under the same stable key (one key
/// per kernel: the five kernels have different compute/transfer
/// ratios, so they learn separate weight vectors). The first launch of
/// each key splits equally — exactly the static baseline — and later
/// launches converge toward equal per-device finish times, shifting
/// planes off a slow device. The runtime must record traces
/// ([`SomierConfig::trace`](crate::SomierConfig::trace)): profiles are
/// computed from spans, and without them the split simply stays equal.
///
/// Adapted splits change *where* planes are computed, never the
/// values: kernels are per-element, the halos are recomputed per
/// launch from each realized chunk, and the centers accumulation stays
/// element-sequential on the host — so centers remain bit-exact
/// against [`run_reference`](crate::reference::run_reference).
pub fn run_spread_auto(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let spread = |key: &'static str| {
                    TargetSpread::devices(devices.clone()).with_schedule(SpreadSchedule::auto(key))
                };
                // forces: in X (halo), out F.
                {
                    let mut t = spread("somier-forces");
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], x_halo));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.f[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::forces(cfg, &arr))?;
                }
                // accelerations: in F, out A.
                {
                    let mut t = spread("somier-accelerations");
                    for c in 0..3 {
                        t = t.map(spread_to(arr.f[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.a[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::accelerations(cfg, &arr))?;
                }
                // velocities: in A, inout V.
                {
                    let mut t = spread("somier-velocities");
                    for c in 0..3 {
                        t = t.map(spread_to(arr.a[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.v[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::velocities(cfg, &arr))?;
                }
                // positions: in V, inout X (interior writes only).
                {
                    let mut t = spread("somier-positions");
                    for c in 0..3 {
                        t = t.map(spread_to(arr.v[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.x[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                // centers: in X, out the per-plane partials.
                {
                    let mut t = spread("somier-centers");
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.partials[c], |ch| ch.range()));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }
                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        "One Buffer (auto)",
        n_gpus,
        rt,
        centers,
    ))
}

/// One Buffer with self-contained per-construct maps and a
/// `spread_pressure(…)` clause: the graceful-degradation variant for
/// oversubscribed machines
/// ([`SomierConfig::with_mem_cap_frac`](crate::SomierConfig::with_mem_cap_frac)
/// below 1.0, and/or sustained OOM-pressure windows in the fault plan).
///
/// The program is [`run_spread_resilient`]'s construct-scoped shape —
/// buffer planning still assumes full-size devices — but each spread
/// carries the pressure policy instead of a resilience policy: chunks
/// whose mapped sections no longer fit are re-homed, split, or (under
/// [`PressurePolicy::Spill`]) streamed through the host staging buffer.
/// Degraded runs are slower, never different: centers stay bit-exact
/// against [`run_reference`](crate::reference::run_reference).
pub fn run_spread_pressure(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
    policy: PressurePolicy,
) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let chunk = (b1 - b0).div_ceil(n_gpus);
                let spread = || {
                    TargetSpread::devices(devices.clone())
                        .with_schedule(SpreadSchedule::static_chunk(chunk))
                        .with_pressure(policy)
                };
                // forces: in X (halo), out F.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], x_halo));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.f[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::forces(cfg, &arr))?;
                }
                // accelerations: in F, out A.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.f[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.a[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::accelerations(cfg, &arr))?;
                }
                // velocities: in A, inout V.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.a[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.v[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::velocities(cfg, &arr))?;
                }
                // positions: in V, inout X (interior writes only).
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.v[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.x[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                // centers: in X, out the per-plane partials.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.partials[c], |ch| ch.range()));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }
                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        "One Buffer (pressure)",
        n_gpus,
        rt,
        centers,
    ))
}

/// One Buffer with a persistent per-buffer position mapping and an
/// explicit halo-exchange phase: the `exchange(peer|host|auto)`
/// variant.
///
/// The construct-scoped shape of [`run_spread_resilient`] re-maps the
/// halo'd positions from the host every construct, so neighbor planes
/// always ride the host bus. This variant restructures one buffer
/// iteration around a `target enter/exit data spread` pair holding the
/// positions (halo extent) on-device, and refreshes them with two
/// `target update spread` directives:
///
/// 1. a `to(X[body])` refresh pinned to `exchange(host)` — the bytes
///    genuinely live only on the host (the previous buffer's images
///    were released), and it establishes the sibling byte-equality the
///    peer planner requires;
/// 2. a `to(X[left halo]) to(X[right halo])` refresh carrying the
///    caller's [`ExchangeMode`] — under `auto`, every interior halo
///    plane is valid bit-identical on the neighbouring device's body,
///    so it travels device-to-device; under `host` the same planes
///    round-trip through the host exactly like the paper's runtime.
///
/// The five kernels then reuse the held mapping (positions map to the
/// same halo extent → presence reuse, no copy), and the buffer exits
/// with a `from(X[body])`. Returns the report plus the accumulated
/// virtual time of phase 2 — the halo phase the peer bench compares
/// across exchange modes. Results are bit-identical to
/// [`run_reference`](crate::reference::run_reference) in every mode:
/// both routes move the same bytes.
///
/// `spread_resilience(redistribute)` composes: chunks of a lost device
/// are skipped by the data directives and rebuilt per construct on the
/// first live device, and a peer copy whose source dies mid-flight is
/// silently diverted to the host path by the runtime. One placement
/// caveat: replacements land on the first surviving device of the
/// list, whose persistent halo extent must stay disjoint from the
/// rebuilt chunk's — with `chunk >= 2` planes that holds for any lost
/// device other than the survivor's immediate neighbour (the
/// fault-injection tests lose device 2 of 4). `exchange(peer)` refuses
/// to compose with redistribution (no fallback route is permitted) and
/// requires every non-empty halo to have a live peer source, which
/// only holds when the buffer covers the whole grid.
pub fn run_spread_peer(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
    exchange: ExchangeMode,
    policy: ResiliencePolicy,
) -> Result<(SomierReport, spread_trace::SimDuration), RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];
    let mut halo_time = spread_trace::SimDuration::ZERO;
    let x_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..(c.end() + 1).min(n) * n2;
    let body = move |c: ChunkCtx| c.scaled(n2).range();
    // The two single-plane refresh sections of the explicit exchange
    // (empty at the grid boundary, where the stencil needs no halo).
    let left_halo = move |c: ChunkCtx| c.start().saturating_sub(1) * n2..c.start() * n2;
    let right_halo = move |c: ChunkCtx| c.end() * n2..(c.end() + 1).min(n) * n2;

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let mut sums = [0.0f64; 3];
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                let chunk = (b1 - b0).div_ceil(n_gpus);
                let update = || {
                    TargetUpdateSpread::devices(devices.clone())
                        .range(b0, b1 - b0)
                        .chunk_size(chunk)
                        .with_resilience(policy)
                };
                // Hold the positions (halo extent) for the whole buffer.
                {
                    let mut enter = TargetEnterDataSpread::devices(devices.clone())
                        .range(b0, b1 - b0)
                        .chunk_size(chunk)
                        .with_resilience(policy);
                    for c in 0..3 {
                        enter = enter.map(spread_alloc(arr.x[c], x_halo));
                    }
                    enter.launch(s)?;
                }
                // Body refresh: host-only by construction (no sibling
                // holds these planes), and it (re)establishes the
                // byte-equality the peer planner checks.
                {
                    let mut up = update().exchange(ExchangeMode::Host);
                    for c in 0..3 {
                        up = up.to(arr.x[c], body);
                    }
                    up.launch(s)?;
                }
                // Halo refresh: the timed exchange phase.
                {
                    let t0 = s.now();
                    let mut up = update().exchange(exchange);
                    for c in 0..3 {
                        up = up.to(arr.x[c], left_halo).to(arr.x[c], right_halo);
                    }
                    up.launch(s)?;
                    halo_time += s.now() - t0;
                }
                let spread = || {
                    TargetSpread::devices(devices.clone())
                        .with_schedule(SpreadSchedule::static_chunk(chunk))
                        .with_resilience(policy)
                };
                // forces: in X (halo, held mapping), out F.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], x_halo));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.f[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::forces(cfg, &arr))?;
                }
                // accelerations: in F, out A.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.f[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.a[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::accelerations(cfg, &arr))?;
                }
                // velocities: in A, inout V.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.a[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.v[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::velocities(cfg, &arr))?;
                }
                // positions: in V, inout X (held mapping: reuse on
                // entry, the host refresh is the explicit from below).
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.v[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_tofrom(arr.x[c], body));
                    }
                    t.parallel_for(s, b0..b1, kernels::positions(cfg, &arr))?;
                }
                // centers: in X (held mapping), out per-plane partials.
                {
                    let mut t = spread();
                    for c in 0..3 {
                        t = t.map(spread_to(arr.x[c], body));
                    }
                    for c in 0..3 {
                        t = t.map(spread_from(arr.partials[c], |ch| ch.range()));
                    }
                    t.parallel_for(s, b0..b1, kernels::centers(cfg, &arr))?;
                }
                // Land the stepped positions and drop the mapping.
                {
                    let mut exit = TargetExitDataSpread::devices(devices.clone())
                        .range(b0, b1 - b0)
                        .chunk_size(chunk)
                        .with_resilience(policy);
                    for c in 0..3 {
                        exit = exit.map(spread_from(arr.x[c], body));
                    }
                    exit.launch(s)?;
                }
                for c in 0..3 {
                    // Element-sequential accumulation: the same rounding
                    // order as the reference (bit-exact comparisons).
                    s.with_host(arr.partials[c], |p| {
                        for &v in &p[b0..b1] {
                            sums[c] += v;
                        }
                    });
                }
                b0 = b1;
            }
            for c in 0..3 {
                centers[c] = sums[c] / (n * n2) as f64;
            }
        }
        Ok(())
    })?;
    Ok((
        SomierReport::collect("One Buffer (peer)", n_gpus, rt, centers),
        halo_time,
    ))
}

/// Paper Listing 10: One Buffer with `target spread` on `n_gpus`
/// devices.
pub fn run_spread(
    rt: &mut Runtime,
    cfg: &SomierConfig,
    n_gpus: usize,
) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let buffer = cfg.buffer_planes(n_gpus);
    let devices: Vec<u32> = (0..n_gpus as u32).collect();
    let mut centers = [0.0f64; 3];

    rt.run(|s| {
        for _step in 0..cfg.timesteps {
            let sums = Rc::new(RefCell::new([0.0f64; 3]));
            let mut b0 = 0usize;
            while b0 < n {
                let b1 = (b0 + buffer).min(n);
                // "each device gets a chunk from a buffer" (Listing 10),
                // unless the config pins a finer granularity.
                let chunk = cfg
                    .chunk_planes_override
                    .map(|p| p.min(b1 - b0))
                    .unwrap_or_else(|| (b1 - b0).div_ceil(n_gpus));
                let done = build_range_pipeline(
                    s,
                    cfg,
                    &arr,
                    &devices,
                    b0,
                    b1,
                    chunk,
                    Rc::clone(&sums),
                    None,
                    None,
                )?;
                // One buffer at a time: block before the next buffer.
                s.drain_task(done)?;
                b0 = b1;
            }
            let sums = sums.borrow();
            for c in 0..3 {
                centers[c] = sums[c] / (n * cfg.plane_elems()) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        crate::SomierImpl::OneBufferSpread.label(),
        n_gpus,
        rt,
        centers,
    ))
}
