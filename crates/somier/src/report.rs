//! Run statistics: what the paper's tables and figures report.

use spread_rt::Runtime;
use spread_trace::{SimDuration, SpanKind};

/// The outcome of one Somier run.
#[derive(Clone, Debug)]
pub struct SomierReport {
    /// Implementation label (Table II row).
    pub label: String,
    /// Devices used (Table I/II column).
    pub n_gpus: usize,
    /// Total virtual execution time (the tables' `time` cells).
    pub elapsed: SimDuration,
    /// Final center of mass (correctness witness).
    pub centers: [f64; 3],
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Number of DMA operations (the §VI-B granularity discussion).
    pub transfer_ops: usize,
    /// Number of kernel launches.
    pub kernel_launches: usize,
    /// Footprint races observed (expected 0 for One Buffer; non-zero
    /// halo races for the concurrent-halves versions).
    pub races: usize,
}

impl SomierReport {
    /// Collect statistics from a finished runtime.
    pub fn collect(label: &str, n_gpus: usize, rt: &Runtime, centers: [f64; 3]) -> Self {
        let tl = rt.timeline();
        let mut h2d = 0u64;
        let mut d2h = 0u64;
        let mut ops = 0usize;
        let mut kernels = 0usize;
        for s in tl.spans() {
            match s.kind {
                SpanKind::TransferIn => {
                    h2d += s.bytes;
                    ops += 1;
                }
                SpanKind::TransferOut => {
                    d2h += s.bytes;
                    ops += 1;
                }
                SpanKind::Kernel => kernels += 1,
                _ => {}
            }
        }
        SomierReport {
            label: label.to_string(),
            n_gpus,
            elapsed: rt.elapsed(),
            centers,
            h2d_bytes: h2d,
            d2h_bytes: d2h,
            transfer_ops: ops,
            kernel_launches: kernels,
            races: rt.races().len(),
        }
    }
}
