//! Physics diagnostics: kinetic and elastic energy of the spring grid.
//!
//! Used by the test-suite as a physical sanity check on the dynamics:
//! with no damping, the total energy of the symplectically-naive Euler
//! integrator drifts slowly, and the drift per step is bounded — a far
//! stronger witness than "the numbers didn't blow up".

use crate::config::Physics;
use crate::physics::idx;

/// Kinetic energy `Σ ½ m |v|²` over the whole grid.
pub fn kinetic_energy(phys: &Physics, v: &[Vec<f64>; 3]) -> f64 {
    let mut e = 0.0;
    for c in 0..3 {
        for &vi in &v[c] {
            e += vi * vi;
        }
    }
    0.5 * phys.mass * e
}

/// Elastic (spring) energy `Σ ½ k (|d| − L0)²` over every lattice edge.
/// Each of the three axis-neighbour families is visited once.
pub fn elastic_energy(phys: &Physics, n: usize, x: &[Vec<f64>; 3]) -> f64 {
    let mut e = 0.0;
    let mut edge = |a: usize, b: usize| {
        let d0 = x[0][b] - x[0][a];
        let d1 = x[1][b] - x[1][a];
        let d2 = x[2][b] - x[2][a];
        let dist = (d0 * d0 + d1 * d1 + d2 * d2).sqrt();
        let stretch = dist - phys.rest_len;
        e += 0.5 * phys.k * stretch * stretch;
    };
    for xx in 0..n {
        for y in 0..n {
            for z in 0..n {
                let i = idx(n, xx, y, z);
                if xx + 1 < n {
                    edge(i, idx(n, xx + 1, y, z));
                }
                if y + 1 < n {
                    edge(i, idx(n, xx, y + 1, z));
                }
                if z + 1 < n {
                    edge(i, idx(n, xx, y, z + 1));
                }
            }
        }
    }
    e
}

/// Total mechanical energy.
pub fn total_energy(phys: &Physics, n: usize, x: &[Vec<f64>; 3], v: &[Vec<f64>; 3]) -> f64 {
    kinetic_energy(phys, v) + elastic_energy(phys, n, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SomierConfig;
    use crate::physics::initial_position;
    use crate::reference::run_reference;

    fn initial_state(n: usize) -> ([Vec<f64>; 3], [Vec<f64>; 3]) {
        let x = [0, 1, 2].map(|c| {
            (0..n * n * n)
                .map(|i| initial_position(n, c, i))
                .collect::<Vec<f64>>()
        });
        let v = [0, 1, 2].map(|_| vec![0.0; n * n * n]);
        (x, v)
    }

    #[test]
    fn unperturbed_lattice_has_zero_energy() {
        let n = 6;
        let phys = Physics::default();
        let x = [0, 1, 2].map(|c| {
            (0..n * n * n)
                .map(|i| {
                    let z = i % n;
                    let y = (i / n) % n;
                    let xx = i / (n * n);
                    [xx, y, z][c] as f64
                })
                .collect::<Vec<f64>>()
        });
        let v = [0, 1, 2].map(|_| vec![0.0; n * n * n]);
        assert!(elastic_energy(&phys, n, &x) < 1e-18);
        assert_eq!(kinetic_energy(&phys, &v), 0.0);
    }

    #[test]
    fn perturbed_lattice_stores_elastic_energy() {
        let n = 8;
        let phys = Physics::default();
        let (x, v) = initial_state(n);
        let e = total_energy(&phys, n, &x, &v);
        assert!(e > 0.0, "the perturbation must store energy: {e}");
    }

    #[test]
    fn energy_drift_per_step_is_small() {
        // Forward Euler gains a little energy per step; over a short run
        // the relative drift must stay well-bounded at dt = 1e-3, k = 10.
        let n = 10;
        let cfg = SomierConfig::test_small(n, 50);
        let phys = cfg.physics;
        let (x0, v0) = initial_state(n);
        let e0 = total_energy(&phys, n, &x0, &v0);
        let s = run_reference(&cfg, n);
        let e1 = total_energy(&phys, n, &s.x, &s.v);
        let drift = (e1 - e0).abs() / e0;
        assert!(drift < 0.01, "relative energy drift {drift} over 50 steps");
    }

    #[test]
    fn energy_flows_from_elastic_to_kinetic() {
        // The initial state is all elastic; after some steps the grid is
        // moving: kinetic energy must have appeared.
        let n = 10;
        let cfg = SomierConfig::test_small(n, 30);
        let s = run_reference(&cfg, n);
        let ke = kinetic_energy(&cfg.physics, &s.v);
        assert!(ke > 0.0, "oscillation converts elastic → kinetic energy");
    }
}
