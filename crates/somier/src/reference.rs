//! The sequential CPU reference.
//!
//! Replicates the *buffered* processing order of the device
//! implementations (per time step, buffers of `buffer_planes` planes are
//! processed front to back, each running forces → accelerations →
//! velocities → positions → centers over its planes), using exactly the
//! shared physics routines. The One Buffer device runs must match this
//! bit for bit; the Two Buffers / Double Buffering variants match to a
//! tolerance (their concurrent halves read boundary halos at slightly
//! different times — a looseness the original application tolerates and
//! our race detector reports).

use crate::config::SomierConfig;
use crate::physics::{idx, plane_sum, spring_force};

/// Final state of a reference run.
pub struct RefState {
    /// Positions.
    pub x: [Vec<f64>; 3],
    /// Velocities.
    pub v: [Vec<f64>; 3],
    /// Center of mass of the final step (sum X / n³ per component).
    pub centers: [f64; 3],
}

/// Run the buffered reference: `timesteps` steps with buffers of
/// `buffer_planes` planes.
pub fn run_reference(cfg: &SomierConfig, buffer_planes: usize) -> RefState {
    let n = cfg.n;
    let n2 = n * n;
    let elems = n2 * n;
    let phys = cfg.physics;
    let inv_m = 1.0 / phys.mass;
    let dt = phys.dt;

    let mut x: [Vec<f64>; 3] = [0, 1, 2].map(|c| {
        (0..elems)
            .map(|i| crate::physics::initial_position(n, c, i))
            .collect()
    });
    let mut v: [Vec<f64>; 3] = [0, 1, 2].map(|_| vec![0.0; elems]);
    let mut a: [Vec<f64>; 3] = [0, 1, 2].map(|_| vec![0.0; elems]);
    let mut f: [Vec<f64>; 3] = [0, 1, 2].map(|_| vec![0.0; elems]);
    let mut centers = [0.0f64; 3];

    for _step in 0..cfg.timesteps {
        let mut sums = [0.0f64; 3];
        let mut b0 = 0usize;
        while b0 < n {
            let b1 = (b0 + buffer_planes).min(n);
            // forces over the buffer's planes (reads X with ±1 halo).
            for p in b0..b1 {
                for y in 0..n {
                    for z in 0..n {
                        let i = idx(n, p, y, z);
                        match spring_force(&phys, n, p, y, z, |c, j| x[c][j]) {
                            Some(force) => {
                                for c in 0..3 {
                                    f[c][i] = force[c];
                                }
                            }
                            None => {
                                for c in 0..3 {
                                    f[c][i] = 0.0;
                                }
                            }
                        }
                    }
                }
            }
            // accelerations.
            for c in 0..3 {
                for i in b0 * n2..b1 * n2 {
                    a[c][i] = f[c][i] * inv_m;
                }
            }
            // velocities.
            for c in 0..3 {
                for i in b0 * n2..b1 * n2 {
                    v[c][i] += a[c][i] * dt;
                }
            }
            // positions (interior only).
            for p in b0..b1 {
                if p == 0 || p == n - 1 {
                    continue;
                }
                for y in 1..n - 1 {
                    for z in 1..n - 1 {
                        let i = idx(n, p, y, z);
                        for c in 0..3 {
                            x[c][i] += v[c][i] * dt;
                        }
                    }
                }
            }
            // centers partials.
            for p in b0..b1 {
                for c in 0..3 {
                    sums[c] += plane_sum(n, p, |i| x[c][i]);
                }
            }
            b0 = b1;
        }
        for c in 0..3 {
            centers[c] = sums[c] / elems as f64;
        }
    }
    RefState { x, v, centers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic() {
        let cfg = SomierConfig::test_small(10, 3);
        let a = run_reference(&cfg, 4);
        let b = run_reference(&cfg, 4);
        assert_eq!(a.x[0], b.x[0]);
        assert_eq!(a.centers, b.centers);
    }

    /// With the whole grid in one buffer, the buffered reference equals
    /// the unbuffered one (single pass).
    #[test]
    fn one_big_buffer_is_canonical() {
        let cfg = SomierConfig::test_small(10, 2);
        let whole = run_reference(&cfg, 10);
        let again = run_reference(&cfg, 100);
        assert_eq!(whole.x[2], again.x[2]);
    }

    /// Buffered runs differ from the single-buffer run only through the
    /// stale right-halo effect — bounded and small over a few steps.
    #[test]
    fn buffering_staleness_is_small() {
        let cfg = SomierConfig::test_small(12, 3);
        let whole = run_reference(&cfg, 12);
        let buffered = run_reference(&cfg, 4);
        let max_diff = whole.x[2]
            .iter()
            .zip(&buffered.x[2])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff > 0.0, "buffering must change something");
        assert!(max_diff < 1e-6, "…but only slightly: {max_diff}");
    }

    /// Physics sanity: the perturbed grid oscillates — positions move,
    /// centers stay near the lattice center (symmetry is only
    /// approximate, so just bound the drift).
    #[test]
    fn grid_moves_but_does_not_explode() {
        let cfg = SomierConfig::test_small(10, 20);
        let s = run_reference(&cfg, 10);
        let n = 10usize;
        let lattice_center = (n as f64 - 1.0) / 2.0;
        for c in 0..3 {
            assert!(
                (s.centers[c] - lattice_center).abs() < 0.1,
                "center[{c}] = {} vs {lattice_center}",
                s.centers[c]
            );
        }
        // Velocities are non-zero (it's oscillating)…
        assert!(s.v[2].iter().any(|&v| v.abs() > 1e-9));
        // …and bounded (no instability at dt = 1e-3, k = 10).
        assert!(s.v[2].iter().all(|&v| v.abs() < 1.0));
    }
}
