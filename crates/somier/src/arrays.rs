//! The Somier state arrays.

use spread_rt::{HostArray, Runtime};

use crate::config::SomierConfig;
use crate::physics::initial_position;

/// Axis labels for the three components of each variable.
pub const COMPONENTS: [&str; 3] = ["x", "y", "z"];

/// The 12 state grids (4 variables × 3 components) plus the per-plane
/// partial-sum arrays used by the manual centers reduction.
#[derive(Clone, Copy)]
pub struct SomierArrays {
    /// Positions.
    pub x: [HostArray; 3],
    /// Velocities.
    pub v: [HostArray; 3],
    /// Accelerations.
    pub a: [HostArray; 3],
    /// Forces.
    pub f: [HostArray; 3],
    /// Per-plane partial sums of the positions (manual reduction).
    pub partials: [HostArray; 3],
}

impl SomierArrays {
    /// Register and initialize all arrays on `rt` for configuration
    /// `cfg`: positions on a perturbed lattice, everything else zero.
    pub fn create(rt: &mut Runtime, cfg: &SomierConfig) -> Self {
        let n = cfg.n;
        let elems = n * n * n;
        let mk3 = |rt: &mut Runtime, name: &str, len: usize| -> [HostArray; 3] {
            [0, 1, 2].map(|c| rt.host_array(format!("{name}{}", COMPONENTS[c]), len))
        };
        let arrays = SomierArrays {
            x: mk3(rt, "X", elems),
            v: mk3(rt, "V", elems),
            a: mk3(rt, "A", elems),
            f: mk3(rt, "F", elems),
            partials: mk3(rt, "P", n),
        };
        for c in 0..3 {
            rt.fill_host(arrays.x[c], |i| initial_position(n, c, i));
        }
        arrays
    }

    /// The 12 state grids in canonical order (X, V, A, F × x,y,z).
    pub fn grids(&self) -> [HostArray; 12] {
        [
            self.x[0], self.x[1], self.x[2], self.v[0], self.v[1], self.v[2], self.a[0], self.a[1],
            self.a[2], self.f[0], self.f[1], self.f[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_registers_all_arrays() {
        let cfg = SomierConfig::test_small(8, 1);
        let mut rt = cfg.runtime(1);
        let arr = SomierArrays::create(&mut rt, &cfg);
        assert_eq!(arr.grids().len(), 12);
        for g in arr.grids() {
            assert_eq!(g.len(), 8 * 8 * 8);
        }
        for p in arr.partials {
            assert_eq!(p.len(), 8);
        }
        // Positions initialized (non-zero), velocities zero.
        let xs = rt.snapshot_host(arr.x[0]);
        assert!(xs.iter().any(|&v| v != 0.0));
        let vs = rt.snapshot_host(arr.v[0]);
        assert!(vs.iter().all(|&v| v == 0.0));
    }
}
