//! The spring-grid physics, written once and shared by the device
//! kernels and the CPU reference (so comparisons are bit-exact).
//!
//! The grid is `n³` nodes on a unit lattice; each interior node is
//! connected to its 6 axis neighbours by springs of stiffness `k` and
//! rest length `rest_len`. Boundary nodes are fixed. The element index
//! of node `(x, y, z)` is `(x·n + y)·n + z`; `x` is the *outermost*
//! dimension, so a "plane" `x = p` is the contiguous element range
//! `[p·n², (p+1)·n²)` — the unit of buffering, chunking and halos.

use crate::config::Physics;

/// Flattened index of node `(x, y, z)`.
#[inline]
pub fn idx(n: usize, x: usize, y: usize, z: usize) -> usize {
    (x * n + y) * n + z
}

/// The deterministic initial position of node `i`'s component `c`:
/// lattice coordinate plus a smooth interior perturbation that makes the
/// spring forces non-trivial (the lattice alone is an equilibrium).
pub fn initial_position(n: usize, c: usize, i: usize) -> f64 {
    let z = i % n;
    let y = (i / n) % n;
    let x = i / (n * n);
    let coord = [x, y, z][c] as f64;
    let boundary = x == 0 || x == n - 1 || y == 0 || y == n - 1 || z == 0 || z == n - 1;
    if boundary {
        return coord;
    }
    let (xf, yf, zf) = (x as f64, y as f64, z as f64);
    let wobble = match c {
        0 => (0.7 * xf).sin() * (0.9 * yf).cos(),
        1 => (0.8 * yf).sin() * (1.1 * zf).cos(),
        _ => (0.6 * zf).sin() * (1.3 * xf).cos(),
    };
    coord + 0.05 * wobble
}

/// The spring force on node `(x, y, z)` given a position accessor
/// `pos(component, element_index)`; `None` is returned for boundary
/// nodes (they are fixed, force 0).
///
/// The neighbour visit order (−x, +x, −y, +y, −z, +z) is part of the
/// contract: the device kernels and the CPU reference must accumulate in
/// the same order for bit-exact results.
#[inline]
pub fn spring_force(
    phys: &Physics,
    n: usize,
    x: usize,
    y: usize,
    z: usize,
    pos: impl Fn(usize, usize) -> f64,
) -> Option<[f64; 3]> {
    if x == 0 || x == n - 1 || y == 0 || y == n - 1 || z == 0 || z == n - 1 {
        return None;
    }
    let me = idx(n, x, y, z);
    let p0 = [pos(0, me), pos(1, me), pos(2, me)];
    let mut f = [0.0f64; 3];
    let neighbours = [
        idx(n, x - 1, y, z),
        idx(n, x + 1, y, z),
        idx(n, x, y - 1, z),
        idx(n, x, y + 1, z),
        idx(n, x, y, z - 1),
        idx(n, x, y, z + 1),
    ];
    for nb in neighbours {
        let d = [pos(0, nb) - p0[0], pos(1, nb) - p0[1], pos(2, nb) - p0[2]];
        let dist = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        // Spring: k · (dist − L0) along the unit vector. dist is never 0
        // for distinct lattice nodes with the bounded perturbation.
        let scale = phys.k * (dist - phys.rest_len) / dist;
        f[0] += scale * d[0];
        f[1] += scale * d[1];
        f[2] += scale * d[2];
    }
    Some(f)
}

/// Center-of-plane partial: the sum of one position component over plane
/// `p`, given an accessor.
#[inline]
pub fn plane_sum(n: usize, p: usize, get: impl Fn(usize) -> f64) -> f64 {
    let base = p * n * n;
    let mut s = 0.0;
    for off in 0..n * n {
        s += get(base + off);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layout_planes_are_contiguous() {
        let n = 10;
        assert_eq!(idx(n, 0, 0, 0), 0);
        assert_eq!(idx(n, 0, 0, 9), 9);
        assert_eq!(idx(n, 0, 1, 0), 10);
        assert_eq!(idx(n, 1, 0, 0), 100);
        // Plane p occupies [p·n², (p+1)·n²).
        for y in 0..n {
            for z in 0..n {
                let i = idx(n, 3, y, z);
                assert!((300..400).contains(&i));
            }
        }
    }

    #[test]
    fn unperturbed_lattice_is_equilibrium_on_boundary_adjacent_axis() {
        // A node whose neighbours sit exactly at rest length feels no
        // force. Build an unperturbed lattice accessor directly.
        let n = 5;
        let phys = Physics::default();
        let pos = |c: usize, i: usize| {
            let z = i % n;
            let y = (i / n) % n;
            let x = i / (n * n);
            [x, y, z][c] as f64
        };
        let f = spring_force(&phys, n, 2, 2, 2, pos).unwrap();
        for c in 0..3 {
            assert!(f[c].abs() < 1e-12, "component {c}: {}", f[c]);
        }
    }

    #[test]
    fn boundary_nodes_have_no_force() {
        let n = 5;
        let phys = Physics::default();
        let pos = |c: usize, i: usize| initial_position(n, c, i);
        assert!(spring_force(&phys, n, 0, 2, 2, pos).is_none());
        assert!(spring_force(&phys, n, 4, 2, 2, pos).is_none());
        assert!(spring_force(&phys, n, 2, 0, 2, pos).is_none());
        assert!(spring_force(&phys, n, 2, 2, 4, pos).is_none());
    }

    #[test]
    fn perturbed_lattice_has_forces() {
        let n = 8;
        let phys = Physics::default();
        let pos = |c: usize, i: usize| initial_position(n, c, i);
        let mut any = false;
        for x in 1..n - 1 {
            let f = spring_force(&phys, n, x, 3, 3, pos).unwrap();
            if f.iter().any(|&v| v.abs() > 1e-9) {
                any = true;
            }
        }
        assert!(any, "perturbation must produce non-zero forces");
    }

    #[test]
    fn stretched_spring_pulls_back() {
        // Displace one node +0.5 in z from an unperturbed lattice: the
        // net force must point back in −z.
        let n = 5;
        let phys = Physics::default();
        let moved = idx(n, 2, 2, 2);
        let pos = |c: usize, i: usize| {
            let z = i % n;
            let y = (i / n) % n;
            let x = i / (n * n);
            let mut v = [x, y, z][c] as f64;
            if i == moved && c == 2 {
                v += 0.5;
            }
            v
        };
        let f = spring_force(&phys, n, 2, 2, 2, pos).unwrap();
        assert!(f[2] < -1.0, "restoring force, got {}", f[2]);
        assert!(f[0].abs() < 1e-9);
        assert!(f[1].abs() < 1e-9);
    }

    #[test]
    fn plane_sum_sums_one_plane() {
        let n = 4;
        let data: Vec<f64> = (0..n * n * n).map(|i| i as f64).collect();
        let s = plane_sum(n, 1, |i| data[i]);
        let expect: f64 = (16..32).map(|i| i as f64).sum();
        assert_eq!(s, expect);
    }

    #[test]
    fn initial_positions_deterministic_and_bounded() {
        let n = 6;
        for c in 0..3 {
            for i in 0..n * n * n {
                let a = initial_position(n, c, i);
                let b = initial_position(n, c, i);
                assert_eq!(a, b);
                let z = i % n;
                let y = (i / n) % n;
                let x = i / (n * n);
                let coord = [x, y, z][c] as f64;
                assert!((a - coord).abs() <= 0.05 + 1e-12);
            }
        }
    }
}
