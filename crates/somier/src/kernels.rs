//! The five Somier device kernels as [`KernelSpec`]s.
//!
//! A kernel *iteration* is one plane (`n²` nodes) of the outermost
//! dimension — the same granularity the directives chunk and map, so the
//! `section_of` expressions below are exactly the paper's
//! `omp_spread_start`/`omp_spread_size` arithmetic, scaled from plane
//! index to element index by `n²`.
//!
//! Argument layout conventions (positions in the arg list):
//!
//! | kernel | args 0–2 | args 3–5 |
//! |---|---|---|
//! | forces | X (read, ±1-plane halo) | F (write) |
//! | accelerations | F (read) | A (write) |
//! | velocities | A (read) | V (read-write) |
//! | positions | V (read) | X (read-write) |
//! | centers | X (read) | per-plane partials (write) |

use std::ops::Range;

use spread_rt::kernel::{KernelArg, KernelSpec};

use crate::arrays::SomierArrays;
use crate::config::SomierConfig;
use crate::physics::{idx, plane_sum, spring_force};

/// Plane range → element range.
fn elems(n2: usize) -> impl Fn(Range<usize>) -> Range<usize> + Clone + Send + Sync {
    move |r: Range<usize>| r.start * n2..r.end * n2
}

/// Plane range → element range with a ±1-plane halo clamped to `[0, n]`.
fn elems_halo(n: usize, n2: usize) -> impl Fn(Range<usize>) -> Range<usize> + Clone + Send + Sync {
    move |r: Range<usize>| r.start.saturating_sub(1) * n2..(r.end + 1).min(n) * n2
}

/// The forces kernel: the 6-neighbour spring stencil.
pub fn forces(cfg: &SomierConfig, arr: &SomierArrays) -> KernelSpec {
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let phys = cfg.physics;
    let mut spec = KernelSpec::new(
        "forces",
        cfg.plane_cost(cfg.costs.forces),
        move |planes, v| {
            for p in planes {
                for y in 0..n {
                    for z in 0..n {
                        let i = idx(n, p, y, z);
                        match spring_force(&phys, n, p, y, z, |c, j| v.get(c, j)) {
                            Some(f) => {
                                for c in 0..3 {
                                    v.set(3 + c, i, f[c]);
                                }
                            }
                            None => {
                                for c in 0..3 {
                                    v.set(3 + c, i, 0.0);
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    for c in 0..3 {
        spec = spec.arg(KernelArg::read(arr.x[c], elems_halo(n, n2)));
    }
    for c in 0..3 {
        spec = spec.arg(KernelArg::write(arr.f[c], elems(n2)));
    }
    spec
}

/// The accelerations kernel: `A = F / m`.
pub fn accelerations(cfg: &SomierConfig, arr: &SomierArrays) -> KernelSpec {
    let n2 = cfg.plane_elems();
    let inv_m = 1.0 / cfg.physics.mass;
    let mut spec = KernelSpec::new(
        "accelerations",
        cfg.plane_cost(cfg.costs.accel),
        move |planes, v| {
            for c in 0..3 {
                let range = planes.start * n2..planes.end * n2;
                let f = v.row(c, range.clone());
                let a = v.row_mut(3 + c, range);
                for (ai, &fi) in a.iter_mut().zip(f) {
                    *ai = fi * inv_m;
                }
            }
        },
    );
    for c in 0..3 {
        spec = spec.arg(KernelArg::read(arr.f[c], elems(n2)));
    }
    for c in 0..3 {
        spec = spec.arg(KernelArg::write(arr.a[c], elems(n2)));
    }
    spec
}

/// The velocities kernel: `V += A · dt`.
pub fn velocities(cfg: &SomierConfig, arr: &SomierArrays) -> KernelSpec {
    let n2 = cfg.plane_elems();
    let dt = cfg.physics.dt;
    let mut spec = KernelSpec::new(
        "velocities",
        cfg.plane_cost(cfg.costs.velocity),
        move |planes, v| {
            for c in 0..3 {
                let range = planes.start * n2..planes.end * n2;
                let a = v.row(c, range.clone());
                let vel = v.row_mut(3 + c, range);
                for (vi, &ai) in vel.iter_mut().zip(a) {
                    *vi += ai * dt;
                }
            }
        },
    );
    for c in 0..3 {
        spec = spec.arg(KernelArg::read(arr.a[c], elems(n2)));
    }
    for c in 0..3 {
        spec = spec.arg(KernelArg::read_write(arr.v[c], elems(n2)));
    }
    spec
}

/// The positions kernel: `X += V · dt`, interior nodes only (the grid
/// boundary is clamped).
pub fn positions(cfg: &SomierConfig, arr: &SomierArrays) -> KernelSpec {
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let dt = cfg.physics.dt;
    let mut spec = KernelSpec::new(
        "positions",
        cfg.plane_cost(cfg.costs.position),
        move |planes, v| {
            for p in planes {
                if p == 0 || p == n - 1 {
                    continue; // whole plane is fixed boundary
                }
                for y in 1..n - 1 {
                    for z in 1..n - 1 {
                        let i = idx(n, p, y, z);
                        for c in 0..3 {
                            let x = v.get(3 + c, i);
                            v.set(3 + c, i, x + v.get(c, i) * dt);
                        }
                    }
                }
            }
        },
    );
    for c in 0..3 {
        spec = spec.arg(KernelArg::read(arr.v[c], elems(n2)));
    }
    for c in 0..3 {
        spec = spec.arg(KernelArg::read_write(arr.x[c], elems(n2)));
    }
    spec
}

/// The centers kernel: per-plane position sums into the partials arrays
/// — the paper's *manual* reduction (§V: "we implemented a manual
/// reduction for this kernel").
pub fn centers(cfg: &SomierConfig, arr: &SomierArrays) -> KernelSpec {
    let n = cfg.n;
    let n2 = cfg.plane_elems();
    let mut spec = KernelSpec::new(
        "centers",
        cfg.plane_cost(cfg.costs.centers),
        move |planes, v| {
            for p in planes {
                for c in 0..3 {
                    let s = plane_sum(n, p, |i| v.get(c, i));
                    v.set(3 + c, p, s);
                }
            }
        },
    );
    let _ = n2;
    for c in 0..3 {
        spec = spec.arg(KernelArg::read(arr.x[c], elems(cfg.plane_elems())));
    }
    for c in 0..3 {
        spec = spec.arg(KernelArg::write(arr.partials[c], |r| r));
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_exprs() {
        let e = elems(100);
        assert_eq!(e(2..5), 200..500);
        let h = elems_halo(10, 100);
        assert_eq!(h(2..5), 100..600);
        assert_eq!(h(0..3), 0..400, "left clamp");
        assert_eq!(h(7..10), 600..1000, "right clamp");
    }

    #[test]
    fn kernels_have_six_args() {
        let cfg = SomierConfig::test_small(8, 1);
        let mut rt = cfg.runtime(1);
        let arr = SomierArrays::create(&mut rt, &cfg);
        for k in [
            forces(&cfg, &arr),
            accelerations(&cfg, &arr),
            velocities(&cfg, &arr),
            positions(&cfg, &arr),
            centers(&cfg, &arr),
        ] {
            assert_eq!(k.args.len(), 6, "{}", k.name);
            assert!(k.work_per_iter_ns > 0.0);
        }
    }
}
