//! Implementation 2: *Two Buffers* (§V-B, Listing 11).
//!
//! Half-sized buffers are processed two at a time through a `taskloop`,
//! hoping transfers of one half overlap computation of the other. The
//! paper's `num_tasks(2)` bounds the number of simultaneous halves to
//! two; its description ("a GPU could be receiving data from two
//! *consecutive* buffers at the same time") corresponds to a *strided*
//! assignment of halves to the two workers (worker 0 → halves 0, 2, 4…;
//! worker 1 → halves 1, 3, 5…). Each worker is an asynchronous chain of
//! half-buffer pipelines (a pipeline's completion continuation launches
//! the worker's next half), so the two chains genuinely interleave.
//!
//! On one GPU the concurrently mapped halo sections of consecutive
//! halves overlap and the runtime rejects the mapping as an array
//! extension — the restriction §V-B describes; with ≥ 2 GPUs the
//! round-robin schedule leaves a gap between the sections on each
//! device.

use std::cell::RefCell;
use std::rc::Rc;

use spread_rt::{RtError, Runtime, Scope};

use crate::arrays::SomierArrays;
use crate::config::SomierConfig;
use crate::one_buffer::build_range_pipeline;
use crate::report::SomierReport;

/// Launch the pipeline for half `h` of worker `stride`-spaced chain;
/// the completion continuation launches half `h + 2`.
fn chain_half(
    s: &mut Scope<'_>,
    cfg: Rc<SomierConfig>,
    arr: SomierArrays,
    devices: Rc<Vec<u32>>,
    half: usize,
    h: usize,
    sums: Rc<RefCell<[f64; 3]>>,
) {
    let n = cfg.n;
    let b0 = h * half;
    if b0 >= n {
        return;
    }
    let b1 = (b0 + half).min(n);
    let chunk = (b1 - b0).div_ceil(devices.len());
    let next: crate::one_buffer::Hook = {
        let cfg = Rc::clone(&cfg);
        let devices = Rc::clone(&devices);
        let sums = Rc::clone(&sums);
        Box::new(move |s: &mut Scope<'_>| {
            chain_half(s, cfg, arr, devices, half, h + 2, sums);
        })
    };
    if let Err(e) = build_range_pipeline(
        s,
        &cfg,
        &arr,
        &devices,
        b0,
        b1,
        chunk,
        sums,
        None,
        Some(next),
    ) {
        s.fail(e);
    }
}

/// Run the Two Buffers implementation on `n_gpus` devices.
pub fn run(rt: &mut Runtime, cfg: &SomierConfig, n_gpus: usize) -> Result<SomierReport, RtError> {
    let arr = SomierArrays::create(rt, cfg);
    let n = cfg.n;
    let half = cfg.half_planes(n_gpus);
    let devices = Rc::new((0..n_gpus as u32).collect::<Vec<u32>>());
    let mut centers = [0.0f64; 3];
    let cfg_rc = Rc::new(cfg.clone());

    rt.run(|s| {
        for _step in 0..cfg_rc.timesteps {
            let sums = Rc::new(RefCell::new([0.0f64; 3]));
            // The taskloop's implicit taskgroup is the step barrier; the
            // two strided chains run inside it.
            s.taskgroup(|s| {
                for worker in 0..2usize {
                    chain_half(
                        s,
                        Rc::clone(&cfg_rc),
                        arr,
                        Rc::clone(&devices),
                        half,
                        worker,
                        Rc::clone(&sums),
                    );
                }
            })?;
            let sums = sums.borrow();
            for c in 0..3 {
                centers[c] = sums[c] / (n * cfg_rc.plane_elems()) as f64;
            }
        }
        Ok(())
    })?;
    Ok(SomierReport::collect(
        crate::SomierImpl::TwoBuffers.label(),
        n_gpus,
        rt,
        centers,
    ))
}
