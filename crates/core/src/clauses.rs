//! The unified spread clause surface: one [`ClauseSet`] core shared by
//! every spread builder, exposed through the [`SpreadClausesExt`]
//! extension trait.
//!
//! # The canonical clause reference
//!
//! Every spread directive builder — [`TargetSpread`], the four
//! data-management builders ([`TargetDataSpread`],
//! [`TargetEnterDataSpread`], [`TargetExitDataSpread`],
//! [`TargetUpdateSpread`]) and the shared [`SpreadClauses`] core — now
//! carries the *same* clause storage and accepts the *same* builder
//! methods, documented once, here. A clause that a particular directive
//! cannot honor is **rejected at launch** with
//! [`RtError::InvalidDirective`] naming the clause, never silently
//! dropped; the composition rules live in the DESIGN.md clause matrix
//! and in each method's documentation below.
//!
//! | Clause (paper / extension) | Method | Default |
//! |---|---|---|
//! | `spread_schedule(…)` (§III-B.1, §IX) | [`with_schedule`](SpreadClausesExt::with_schedule) | `static,1` on `target spread`; `chunk_size` round-robin on data directives |
//! | `spread_resilience(…)` (extension) | [`with_resilience`](SpreadClausesExt::with_resilience) | [`ResiliencePolicy::FailStop`] |
//! | `spread_pressure(…)` (extension) | [`with_pressure`](SpreadClausesExt::with_pressure) | [`PressurePolicy::Fail`] |
//! | `spread_straggler(…)` (extension) | [`with_straggler`](SpreadClausesExt::with_straggler) | [`StragglerPolicy::Wait`] |
//! | `spread_straggler_beta(β)` (extension) | [`with_straggler_beta`](SpreadClausesExt::with_straggler_beta) | `4.0` |
//! | `spread_integrity(…)` (extension) | [`with_integrity`](SpreadClausesExt::with_integrity) | [`IntegrityMode::Off`] |
//! | `spread_overlap(…)` (extension) | [`with_overlap`](SpreadClausesExt::with_overlap) | [`OverlapPolicy::Off`] |
//! | `spread_plan_cache(key)` (extension) | [`with_plan_cache`](SpreadClausesExt::with_plan_cache) | off |
//!
//! The old per-builder inherent `spread_*` forwarders served their one
//! deprecation release and are gone; this trait is the only clause
//! surface.
//!
//! [`TargetSpread`]: crate::target_spread::TargetSpread
//! [`TargetDataSpread`]: crate::data_spread::TargetDataSpread
//! [`TargetEnterDataSpread`]: crate::data_spread::TargetEnterDataSpread
//! [`TargetExitDataSpread`]: crate::data_spread::TargetExitDataSpread
//! [`TargetUpdateSpread`]: crate::data_spread::TargetUpdateSpread
//! [`SpreadClauses`]: crate::data_spread::SpreadClauses
//! [`RtError::InvalidDirective`]: spread_rt::RtError::InvalidDirective

use spread_rt::{IntegrityMode, RtError};

use crate::pressure::PressurePolicy;
use crate::resilience::ResiliencePolicy;
use crate::schedule::SpreadSchedule;
use crate::straggler::StragglerPolicy;

/// The `spread_overlap(…)` clause: software-pipelined transfer/compute
/// overlap within each device's chunk.
///
/// Under `spread_overlap(depth)` the runtime splits every device piece
/// into `depth` contiguous sub-slices and pipelines
/// copy-in → kernel → copy-out at sub-slice granularity on
/// runtime-allocated streams, so stage *j*'s H2D transfer rides under
/// stage *j−1*'s kernel and stage *j*'s D2H rides under stage *j+1*'s
/// kernel. Externally the piece is unchanged: results stay staged until
/// the whole piece drains, commits stay all-or-nothing through the
/// [`CommitGate`](spread_rt::CommitGate), and integrity digests /
/// straggler rescues / resilience replays all see whole pieces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverlapPolicy {
    /// Default: one sub-slice per piece — the pre-existing
    /// whole-piece copy-in → kernel → copy-out serialization.
    #[default]
    Off,
    /// Pipeline each piece over exactly `depth` sub-slices
    /// (`depth ≥ 1`; `Depth(1)` is equivalent to `Off`, `Depth(0)` is
    /// rejected at launch).
    Depth(u32),
    /// Profile-guided: the [`ProfileStore`] behind
    /// `spread_schedule(auto)` learns the best depth per construct key
    /// (explore, then exponentially-weighted argmin). Requires
    /// `spread_schedule(auto)` on the same construct.
    ///
    /// [`ProfileStore`]: spread_rt::profile::ProfileStore
    Auto,
}

impl OverlapPolicy {
    /// The concrete pipeline depth, if this policy names one.
    pub fn depth(&self) -> Option<u32> {
        match self {
            OverlapPolicy::Off => Some(1),
            OverlapPolicy::Depth(d) => Some(*d),
            OverlapPolicy::Auto => None,
        }
    }
}

/// The clause storage shared by every spread builder.
///
/// Builders embed one `ClauseSet` and expose it through
/// [`SpreadClausesExt`]; directive-specific launch code validates the
/// set against what that directive supports and rejects the rest with
/// [`RtError::InvalidDirective`].
#[derive(Clone, Debug)]
pub struct ClauseSet {
    /// `spread_schedule(…)` — `None` means the directive's own default
    /// (`static,1` for `target spread`, `chunk_size` round-robin for
    /// the data directives).
    pub(crate) schedule: Option<SpreadSchedule>,
    /// `spread_resilience(…)`.
    pub(crate) resilience: ResiliencePolicy,
    /// `spread_pressure(…)`.
    pub(crate) pressure: PressurePolicy,
    /// `spread_straggler(…)`.
    pub(crate) straggler: StragglerPolicy,
    /// `spread_straggler_beta(β)`, clamped to ≥ 1.
    pub(crate) straggler_beta: f64,
    /// `spread_integrity(…)`.
    pub(crate) integrity: IntegrityMode,
    /// `spread_overlap(…)`.
    pub(crate) overlap: OverlapPolicy,
    /// `spread_plan_cache(key)` — `None` (the default) plans every
    /// launch from scratch.
    pub(crate) plan_key: Option<String>,
}

impl Default for ClauseSet {
    fn default() -> Self {
        ClauseSet {
            schedule: None,
            resilience: ResiliencePolicy::FailStop,
            pressure: PressurePolicy::Fail,
            straggler: StragglerPolicy::Wait,
            straggler_beta: 4.0,
            integrity: IntegrityMode::Off,
            overlap: OverlapPolicy::Off,
            plan_key: None,
        }
    }
}

/// What a directive's launch path supports; everything else in the
/// [`ClauseSet`] must still be at its default or the launch is
/// rejected.
#[derive(Clone, Copy, Default)]
pub(crate) struct Supports {
    pub schedule: bool,
    pub resilience: bool,
    pub pressure: bool,
    pub straggler: bool,
    pub integrity: bool,
    pub overlap: bool,
    pub plan: bool,
}

impl ClauseSet {
    /// Reject every non-default clause the directive does not support.
    /// `directive` names the pragma in the error message.
    pub(crate) fn reject_unsupported(
        &self,
        directive: &str,
        allow: Supports,
    ) -> Result<(), RtError> {
        let bad = |clause: &str| {
            Err(RtError::InvalidDirective(format!(
                "{directive}: the {clause} clause is not supported on this directive"
            )))
        };
        if !allow.schedule && self.schedule.is_some() {
            return bad("spread_schedule(…)");
        }
        if !allow.resilience && self.resilience != ResiliencePolicy::FailStop {
            return bad("spread_resilience(…)");
        }
        if !allow.pressure && self.pressure != PressurePolicy::Fail {
            return bad("spread_pressure(…)");
        }
        if !allow.straggler && self.straggler != StragglerPolicy::Wait {
            return bad("spread_straggler(…)");
        }
        if !allow.integrity && self.integrity != IntegrityMode::Off {
            return bad("spread_integrity(…)");
        }
        if !allow.overlap && self.overlap != OverlapPolicy::Off {
            return bad("spread_overlap(…)");
        }
        if !allow.plan && self.plan_key.is_some() {
            return bad("spread_plan_cache(…)");
        }
        Ok(())
    }
}

/// The unified clause surface of every spread builder.
///
/// This trait is the **canonical reference** for the spread clause set:
/// each method documents one clause — its semantics, default, and
/// composition rules. All spread builders ([`TargetSpread`], the four
/// data-directive builders, and the shared [`SpreadClauses`] core)
/// implement it over one embedded [`ClauseSet`], so the surface is
/// identical everywhere; clauses a given directive cannot honor are
/// rejected at launch, never silently ignored.
///
/// ```
/// use spread_core::prelude::*;
///
/// let t = TargetSpread::devices([0, 1])
///     .with_schedule(SpreadSchedule::static_chunk(8))
///     .with_resilience(ResiliencePolicy::Redistribute)
///     .with_integrity(IntegrityMode::Verify)
///     .with_overlap(OverlapPolicy::Depth(4));
/// # let _ = t;
/// ```
///
/// [`TargetSpread`]: crate::target_spread::TargetSpread
/// [`SpreadClauses`]: crate::data_spread::SpreadClauses
pub trait SpreadClausesExt: Sized {
    /// Access the builder's embedded clause storage (implementation
    /// plumbing — use the `with_*` methods).
    #[doc(hidden)]
    fn clause_set_mut(&mut self) -> &mut ClauseSet;

    /// The `spread_schedule(…)` clause (paper §III-B.1; extensions
    /// §IX): how the iteration space (or `range`) is carved into chunks
    /// and distributed round-robin over the `devices(…)` list.
    ///
    /// Default: `static,1` on `target spread`; on the data directives
    /// the `chunk_size(c)` round-robin. Data directives require a
    /// *static* distribution ([`SpreadSchedule::Static`] /
    /// [`SpreadSchedule::StaticWeighted`]) — dynamic placement is
    /// undecidable at mapping time and `auto` resolves only against an
    /// executable construct's profile history.
    fn with_schedule(mut self, s: SpreadSchedule) -> Self {
        self.clause_set_mut().schedule = Some(s);
        self
    }

    /// The `spread_resilience(…)` clause: what the directive does when
    /// one of its devices is permanently lost mid-run (default:
    /// [`ResiliencePolicy::FailStop`]). Under
    /// [`Redistribute`](ResiliencePolicy::Redistribute) an executable
    /// construct rebuilds the lost device's pieces on the survivors
    /// from the unharmed host image; data directives skip the lost
    /// device's chunks and absorb in-flight loss. Requires a static
    /// schedule; incompatible with `spread_pressure(split|spill)`.
    fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.clause_set_mut().resilience = policy;
        self
    }

    /// The `spread_pressure(…)` clause: what an executable construct
    /// does when a chunk's mapped footprint exceeds available device
    /// memory (default: [`PressurePolicy::Fail`]). See the
    /// [`pressure`](crate::pressure) module for the degradation ladder
    /// (admission control → split → host spill). Requires a static
    /// schedule and a blocking construct; incompatible with
    /// `spread_resilience(redistribute)`, `spread_integrity(heal)` and
    /// `spread_overlap(…)`.
    fn with_pressure(mut self, policy: PressurePolicy) -> Self {
        self.clause_set_mut().pressure = policy;
        self
    }

    /// The `spread_straggler(…)` clause: what an executable construct
    /// does about a piece lagging far behind its siblings (default:
    /// [`StragglerPolicy::Wait`]). See the
    /// [`straggler`](crate::straggler) module for the deadline rule and
    /// the first-commit-wins rescue protocol; rescues always re-execute
    /// **whole pieces**, even when the original piece was pipelined by
    /// `spread_overlap`. Requires a static schedule and a blocking
    /// construct.
    fn with_straggler(mut self, policy: StragglerPolicy) -> Self {
        self.clause_set_mut().straggler = policy;
        self
    }

    /// The `spread_straggler_beta(β)` clause: the straggler detection
    /// threshold (default 4) — a piece is a straggler if its kernel is
    /// still running β× past the construct's first kernel completion.
    /// Non-finite values reset to the default; finite values clamp to
    /// ≥ 1.
    fn with_straggler_beta(mut self, beta: f64) -> Self {
        self.clause_set_mut().straggler_beta = if beta.is_finite() { beta.max(1.0) } else { 4.0 };
        self
    }

    /// The `spread_integrity(…)` clause: whether device payloads are
    /// CRC32C-digested at their source and re-verified where device
    /// bytes become authoritative — the staged-commit drain and the
    /// peer-copy receive (default: [`IntegrityMode::Off`]). `verify`
    /// fails the construct on a mismatch; `heal` re-executes the
    /// tainted piece from the unharmed host image (see the
    /// [`integrity`](crate::integrity) module). Digests always cover
    /// **whole pieces**: under `spread_overlap` the per-sub-slice
    /// drains are digested individually at their source and verified at
    /// the same whole-piece commit boundary. `heal` requires a static
    /// schedule and a blocking construct and is incompatible with
    /// `spread_straggler(steal|replicate)` and
    /// `spread_pressure(split|spill)`.
    fn with_integrity(mut self, mode: IntegrityMode) -> Self {
        self.clause_set_mut().integrity = mode;
        self
    }

    /// The `spread_overlap(…)` clause: pipeline each device piece over
    /// `depth` sub-slices so transfers overlap compute (default:
    /// [`OverlapPolicy::Off`]). See [`OverlapPolicy`] for the pipeline
    /// shape. Only executable constructs pipeline; requires a static
    /// schedule and a blocking construct (`nowait` rejects), and
    /// `OverlapPolicy::Auto` additionally requires
    /// `spread_schedule(auto)` on the same construct. Incompatible with
    /// `spread_pressure(split|spill)` (admission plans whole pieces).
    /// Composes with resilience, straggler rescue and integrity — all
    /// of which keep seeing whole-piece commits.
    fn with_overlap(mut self, policy: OverlapPolicy) -> Self {
        self.clause_set_mut().overlap = policy;
        self
    }

    /// The `spread_plan_cache(key)` clause: cache this construct's
    /// launch plan — chunking, admission planning, map/dep section
    /// evaluation, overlap stage boundaries — under `key`, and replay
    /// it on later launches whose directive shape fingerprint and
    /// topology epoch still match, skipping the planner entirely.
    ///
    /// `key` is the construct-site identity, like an OpenMP lexical
    /// construct: **every launch under one key must describe the same
    /// directive shape** (same range/devices/schedule/maps/deps
    /// modulo the values the fingerprint captures). The runtime guards
    /// the contract anyway — a shape change fingerprints differently
    /// and re-plans, a topology or adaptive-state change bumps the
    /// epoch and invalidates, and debug builds re-plan every hit from
    /// scratch and assert the cached plan identical.
    ///
    /// Only `target spread` supports the clause (data directives
    /// reject it); dynamic schedules and auto-scheduled constructs
    /// never hit (their plans depend on claim-time or per-launch
    /// adaptive state). Default: no key, every launch cold-plans.
    fn with_plan_cache(mut self, key: impl Into<String>) -> Self {
        self.clause_set_mut().plan_key = Some(key.into());
        self
    }
}
