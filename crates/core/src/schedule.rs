//! Spread schedules: how a loop's iteration space is carved into chunks
//! and distributed over the `devices(…)` list.
//!
//! The paper ships `spread_schedule(static, chunk)` — chunks assigned
//! round-robin in *device-list order* (not device-id order). The
//! future-work section calls for irregular chunk sizes and a dynamic
//! schedule; both are implemented here as extensions
//! ([`SpreadSchedule::StaticWeighted`], [`SpreadSchedule::Dynamic`]).

use std::ops::Range;

/// The `spread_schedule` clause.
#[derive(Clone, Debug, PartialEq)]
pub enum SpreadSchedule {
    /// `spread_schedule(static, chunk)` — fixed-size chunks, round-robin
    /// over the device list (the paper's only schedule).
    Static {
        /// Chunk size in iterations.
        chunk: usize,
    },
    /// Extension (§IX): one chunk per device per round, sized
    /// proportionally to the device's weight. Useful for heterogeneous
    /// devices.
    StaticWeighted {
        /// Iterations per round (split according to `weights`).
        round: usize,
        /// Relative device weights (same order as the device list).
        weights: Vec<f64>,
    },
    /// Extension (§IX): chunks are claimed by the first idle device at
    /// run time instead of being pre-assigned.
    Dynamic {
        /// Chunk size in iterations.
        chunk: usize,
    },
    /// Extension (§IX): profile-guided. At `parallel_for` time the
    /// runtime resolves this into a concrete [`StaticWeighted`] plan
    /// using the weights learned from previous launches of the same
    /// `key` (equal split on the first launch), and records a
    /// per-device profile of the launch to adapt the next one.
    ///
    /// `Auto` never reaches [`distribute`] — it must be resolved first,
    /// so everything downstream (§V-B chunk-gap ordering, resilience,
    /// pressure, the conformance oracle) sees an ordinary static plan.
    ///
    /// [`StaticWeighted`]: SpreadSchedule::StaticWeighted
    Auto {
        /// Stable construct key: launches sharing a key share a learned
        /// weight vector.
        key: String,
    },
}

impl SpreadSchedule {
    /// The paper's `spread_schedule(static, chunk)`.
    pub fn static_chunk(chunk: usize) -> Self {
        SpreadSchedule::Static { chunk }
    }

    /// The dynamic extension.
    pub fn dynamic(chunk: usize) -> Self {
        SpreadSchedule::Dynamic { chunk }
    }

    /// The profile-guided extension: `spread_schedule(auto)` keyed by a
    /// stable construct name.
    pub fn auto(key: impl Into<String>) -> Self {
        SpreadSchedule::Auto { key: key.into() }
    }
}

/// One distributed chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Sequence number in iteration order.
    pub index: usize,
    /// Position in the `devices(…)` list (`None` for dynamic chunks,
    /// which are claimed at run time).
    pub device_pos: Option<usize>,
    /// Physical device id (`None` for dynamic chunks).
    pub device: Option<u32>,
    /// First iteration.
    pub start: usize,
    /// Iteration count.
    pub len: usize,
}

impl Chunk {
    /// The chunk's iteration range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }
}

/// Distribute `range` over `devices` according to `schedule`.
///
/// For static schedules every chunk carries its device assignment; for
/// the dynamic extension the chunks come back unassigned (the directive
/// assigns them to idle devices at run time).
///
/// Distribution order follows the *position in the device list*, as the
/// paper specifies: `devices(2,0,1)` sends the first chunk to device 2.
pub fn distribute(range: Range<usize>, devices: &[u32], schedule: &SpreadSchedule) -> Vec<Chunk> {
    assert!(!devices.is_empty(), "devices(…) must not be empty");
    let n = range.end.saturating_sub(range.start);
    let mut chunks = Vec::new();
    if n == 0 {
        return chunks;
    }
    match schedule {
        SpreadSchedule::Static { chunk } => {
            assert!(*chunk > 0, "spread_schedule chunk must be >= 1");
            let mut start = range.start;
            let mut index = 0usize;
            while start < range.end {
                let len = (*chunk).min(range.end - start);
                let pos = index % devices.len();
                chunks.push(Chunk {
                    index,
                    device_pos: Some(pos),
                    device: Some(devices[pos]),
                    start,
                    len,
                });
                start += len;
                index += 1;
            }
        }
        SpreadSchedule::StaticWeighted { round, weights } => {
            assert!(*round > 0, "round size must be >= 1");
            assert_eq!(
                weights.len(),
                devices.len(),
                "one weight per device in the list"
            );
            let total_w: f64 = weights.iter().sum();
            assert!(total_w > 0.0, "weights must sum to a positive value");
            let mut start = range.start;
            let mut index = 0usize;
            'outer: loop {
                // Split one round proportionally (largest-remainder-free
                // simple scheme: cumulative rounding keeps the round size
                // exact).
                let round_len = (*round).min(range.end - start);
                let mut given = 0usize;
                let mut acc = 0.0f64;
                for (pos, w) in weights.iter().enumerate() {
                    acc += w;
                    let upto = ((acc / total_w) * round_len as f64).round() as usize;
                    let len = upto.saturating_sub(given).min(round_len - given);
                    if len > 0 {
                        chunks.push(Chunk {
                            index,
                            device_pos: Some(pos),
                            device: Some(devices[pos]),
                            start: start + given,
                            len,
                        });
                        index += 1;
                        given += len;
                    }
                }
                start += round_len;
                if start >= range.end {
                    break 'outer;
                }
            }
        }
        SpreadSchedule::Dynamic { chunk } => {
            assert!(*chunk > 0, "spread_schedule chunk must be >= 1");
            let mut start = range.start;
            let mut index = 0usize;
            while start < range.end {
                let len = (*chunk).min(range.end - start);
                chunks.push(Chunk {
                    index,
                    device_pos: None,
                    device: None,
                    start,
                    len,
                });
                start += len;
                index += 1;
            }
        }
        SpreadSchedule::Auto { key } => {
            panic!(
                "spread_schedule(auto) [key `{key}`] must be resolved to a \
                 concrete StaticWeighted plan before distribution"
            );
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §III-B.1, first example: `devices(2,0,1)`,
    /// `spread_schedule(static, 4)`, loop `for(i=1; i<N-1; i++)` with
    /// N=14 → iterations 1..13.
    #[test]
    fn paper_example_chunk4() {
        let chunks = distribute(1..13, &[2, 0, 1], &SpreadSchedule::static_chunk(4));
        assert_eq!(chunks.len(), 3);
        // Iterations 1,2,3,4 → device 2.
        assert_eq!(chunks[0].range(), 1..5);
        assert_eq!(chunks[0].device, Some(2));
        // Iterations 5,6,7,8 → device 0.
        assert_eq!(chunks[1].range(), 5..9);
        assert_eq!(chunks[1].device, Some(0));
        // Iterations 9,10,11,12 → device 1.
        assert_eq!(chunks[2].range(), 9..13);
        assert_eq!(chunks[2].device, Some(1));
    }

    /// §III-B.1, second example: same but chunk 2.
    #[test]
    fn paper_example_chunk2() {
        let chunks = distribute(1..13, &[2, 0, 1], &SpreadSchedule::static_chunk(2));
        let got: Vec<(Range<usize>, u32)> = chunks
            .iter()
            .map(|c| (c.range(), c.device.unwrap()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1..3, 2),
                (3..5, 0),
                (5..7, 1),
                (7..9, 2),
                (9..11, 0),
                (11..13, 1),
            ]
        );
    }

    #[test]
    fn tail_chunk_is_short() {
        let chunks = distribute(0..10, &[0, 1], &SpreadSchedule::static_chunk(4));
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].range(), 8..10);
        assert_eq!(chunks[2].len, 2);
        assert_eq!(chunks[2].device, Some(0), "round-robin wraps");
    }

    #[test]
    fn chunks_partition_iteration_space() {
        for (range, devs, chunk) in [
            (0..100, vec![0u32, 1, 2], 7),
            (5..6, vec![3], 10),
            (10..1000, vec![1, 0], 1),
        ] {
            let chunks = distribute(range.clone(), &devs, &SpreadSchedule::static_chunk(chunk));
            let mut seen = vec![false; range.len()];
            for c in &chunks {
                for i in c.range() {
                    assert!(!seen[i - range.start], "iteration {i} duplicated");
                    seen[i - range.start] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "iteration space covered");
        }
    }

    #[test]
    fn empty_range_no_chunks() {
        assert!(distribute(5..5, &[0, 1], &SpreadSchedule::static_chunk(4)).is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_devices_rejected() {
        distribute(0..10, &[], &SpreadSchedule::static_chunk(4));
    }

    #[test]
    #[should_panic(expected = "chunk must be >= 1")]
    fn zero_chunk_rejected() {
        distribute(0..10, &[0], &SpreadSchedule::static_chunk(0));
    }

    #[test]
    fn weighted_distribution_respects_ratios() {
        let chunks = distribute(
            0..100,
            &[0, 1],
            &SpreadSchedule::StaticWeighted {
                round: 100,
                weights: vec![3.0, 1.0],
            },
        );
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len, 75);
        assert_eq!(chunks[0].device, Some(0));
        assert_eq!(chunks[1].len, 25);
        assert_eq!(chunks[1].device, Some(1));
    }

    #[test]
    fn weighted_multi_round_partitions() {
        let chunks = distribute(
            0..103,
            &[0, 1, 2],
            &SpreadSchedule::StaticWeighted {
                round: 30,
                weights: vec![1.0, 2.0, 3.0],
            },
        );
        let total: usize = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 103);
        // Contiguous, ordered, non-overlapping.
        let mut cursor = 0;
        for c in &chunks {
            assert_eq!(c.start, cursor);
            cursor += c.len;
        }
    }

    #[test]
    #[should_panic(expected = "must be resolved")]
    fn unresolved_auto_rejected() {
        distribute(0..10, &[0, 1], &SpreadSchedule::auto("k"));
    }

    #[test]
    fn dynamic_chunks_unassigned() {
        let chunks = distribute(0..10, &[0, 1], &SpreadSchedule::dynamic(3));
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.device.is_none()));
        let total: usize = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 10);
    }
}
