//! The `target spread` executable directive (standalone and combined).
//!
//! `target spread` offloads a loop across multiple devices: the
//! iteration space is split into chunks by the `spread_schedule`, chunks
//! are distributed round-robin over the `devices(…)` list, and each
//! chunk becomes one single-device offload whose `map`/`depend` clauses
//! are evaluated with that chunk's `omp_spread_start`/`omp_spread_size`
//! (paper §III-B.1, Listing 3).
//!
//! Adding `num_teams`/`num_threads` gives the combined
//! `target spread teams distribute parallel for` (Listing 4): the
//! intra-device clauses apply *per device*.
//!
//! Without `nowait` the directive blocks until every chunk completes
//! (the "implicit taskgroup" design option of §IX); with `nowait` the
//! chunk tasks run asynchronously and synchronize through `depend`
//! clauses and enclosing `taskgroup`s, exactly like the paper's Somier
//! implementations.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::rc::Rc;

use spread_rt::directives::Target;
use spread_rt::{IntegrityMode, KernelSpec, RtError, Scope, Section, TaskId};

use crate::chunk::ChunkCtx;
use crate::clauses::{ClauseSet, OverlapPolicy, SpreadClausesExt};
use crate::plan::{ChunkSections, Fingerprint, LaunchPlan, PlanBody};
use crate::pressure::{self, Placement, PressureCoordinator, PressurePolicy};
use crate::resilience::{Coordinator, ResiliencePolicy};
use crate::schedule::{distribute, SpreadSchedule};
use crate::spread_map::{SectionOf, SpreadMap};
use crate::straggler::StragglerPolicy;

/// A `depend` clause item over the spread placeholders.
#[derive(Clone)]
pub(crate) struct SpreadDep {
    pub array: spread_rt::HostArray,
    pub expr: SectionOf,
}

impl SpreadDep {
    pub(crate) fn at(&self, c: ChunkCtx) -> Section {
        Section::from_range(self.array.id(), (self.expr)(c))
    }
}

/// Builder for `#pragma omp target spread [teams distribute parallel
/// for]`.
#[derive(Clone)]
pub struct TargetSpread {
    devices: Vec<u32>,
    clauses: ClauseSet,
    maps: Vec<SpreadMap>,
    nowait: bool,
    dep_ins: Vec<SpreadDep>,
    dep_outs: Vec<SpreadDep>,
    num_teams: Option<u32>,
    num_threads: Option<u32>,
    serial: bool,
    drop_last_spill_slice: bool,
    force_rescue_double_commit: bool,
    force_overlap_leak: bool,
}

impl SpreadClausesExt for TargetSpread {
    fn clause_set_mut(&mut self) -> &mut ClauseSet {
        &mut self.clauses
    }
}

impl TargetSpread {
    /// Start building with the `devices(…)` clause. The distribution
    /// order is the list order, not the device-id order.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetSpread {
            devices: devices.into_iter().collect(),
            clauses: ClauseSet {
                schedule: Some(SpreadSchedule::static_chunk(1)),
                ..ClauseSet::default()
            },
            maps: Vec::new(),
            nowait: false,
            dep_ins: Vec::new(),
            dep_outs: Vec::new(),
            num_teams: None,
            num_threads: None,
            serial: false,
            drop_last_spill_slice: false,
            force_rescue_double_commit: false,
            force_overlap_leak: false,
        }
    }

    /// Add a spread map item.
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.maps.extend(items);
        self
    }

    /// `nowait` — chunk tasks run asynchronously.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// `depend(in: a[expr])` — per-chunk input dependence (the
    /// data-driven dependence style of §III-B.1).
    pub fn depend_in(
        mut self,
        array: spread_rt::HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_ins.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// `depend(out: a[expr])` — per-chunk output dependence.
    pub fn depend_out(
        mut self,
        array: spread_rt::HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_outs.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// `num_teams(n)` — applied per device (combined directive).
    pub fn num_teams(mut self, n: u32) -> Self {
        self.num_teams = Some(n);
        self
    }

    /// Threads per team — applied per device (combined directive).
    pub fn num_threads(mut self, n: u32) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Standalone `target spread` (no `teams distribute parallel for`):
    /// the chunk loop runs on a single device lane.
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// The active resilience policy.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.clauses.resilience
    }

    /// The active pressure policy.
    pub fn pressure(&self) -> PressurePolicy {
        self.clauses.pressure
    }

    /// The active straggler policy.
    pub fn straggler(&self) -> StragglerPolicy {
        self.clauses.straggler
    }

    /// The active integrity mode.
    pub fn integrity(&self) -> IntegrityMode {
        self.clauses.integrity
    }

    /// The active overlap policy (`spread_overlap(…)`; see
    /// [`OverlapPolicy`]).
    pub fn overlap(&self) -> OverlapPolicy {
        self.clauses.overlap
    }

    /// The active straggler detection threshold β.
    pub(crate) fn straggler_beta(&self) -> f64 {
        self.clauses.straggler_beta
    }

    /// Whether the rescue double-commit canary is armed.
    pub(crate) fn force_rescue_double_commit(&self) -> bool {
        self.force_rescue_double_commit
    }

    /// Setter behind the `testing` module's injection hook (see
    /// [`crate::testing`]); the field stays module-private.
    pub(crate) fn set_force_rescue_double_commit(&mut self) {
        self.force_rescue_double_commit = true;
    }

    /// Setter behind the `testing` module's injection hook (see
    /// [`crate::testing`]); the field stays module-private.
    pub(crate) fn set_drop_last_spill_slice(&mut self) {
        self.drop_last_spill_slice = true;
    }

    /// Setter behind the `testing` module's injection hook (see
    /// [`crate::testing`]): arm the overlap sub-slice leak canary, which
    /// makes pipelined pieces commit one staged sub-slice *early* (a
    /// deliberate bug the `--overlap` fuzz mode must catch).
    pub(crate) fn set_force_overlap_leak(&mut self) {
        self.force_overlap_leak = true;
    }

    /// The mapped-footprint bytes of the piece `[start, start + len)` —
    /// the sum over the construct's map clauses of their section lengths
    /// × 8 (halo arithmetic included). This is the figure the pressure
    /// planner budgets against device headroom; tooling (the
    /// `spread-check` oracle) calls it to predict admission exactly.
    pub fn footprint_bytes(&self, start: usize, len: usize) -> u64 {
        let c = ChunkCtx::new(start, len);
        self.maps.iter().map(|m| (m.expr)(c).len() as u64 * 8).sum()
    }

    /// The `devices(…)` list, in distribution order (introspection for
    /// tooling such as the `spread-check` conformance harness).
    pub fn device_list(&self) -> &[u32] {
        &self.devices
    }

    /// The active `spread_schedule(…)` clause.
    pub fn schedule(&self) -> &SpreadSchedule {
        self.clauses
            .schedule
            .as_ref()
            .expect("TargetSpread always carries a schedule")
    }

    /// Whether `nowait` was requested.
    pub fn is_nowait(&self) -> bool {
        self.nowait
    }

    /// The chunks this construct would create for `range` — the exact
    /// `distribute` call `parallel_for` makes for static schedules, so a
    /// model (or a pretty-printer) can predict chunk → device placement
    /// without launching anything. Dynamic schedules return chunks with
    /// `device == None` (assignment happens at claim time).
    pub fn plan_chunks(&self, range: Range<usize>) -> Vec<crate::schedule::Chunk> {
        distribute(range, &self.devices, self.schedule())
    }

    /// The construct's launch-plan fingerprint: a structural hash of
    /// everything the plan depends on, computed **without** evaluating
    /// a single map/dep closure. Covers the range, device list,
    /// schedule (including `StaticWeighted` weight bits), every clause,
    /// the map/dep shape (count, types, arrays), the per-device
    /// knobs and the test canaries; the pressure path adds the live
    /// headroom vector so a cached admission plan is only replayed when
    /// admission would decide identically. Closure identity is the
    /// `spread_plan_cache(key)` contract (checked outright in debug
    /// builds and by the cache-parity suite).
    fn plan_fingerprint(&self, range: &Range<usize>, headroom: Option<&HashMap<u32, u64>>) -> u64 {
        let mut fp = Fingerprint::new();
        fp.usize(range.start).usize(range.end);
        fp.usize(self.devices.len());
        for &d in &self.devices {
            fp.u64(d as u64);
        }
        match self.schedule() {
            SpreadSchedule::Static { chunk } => {
                fp.u64(0).usize(*chunk);
            }
            SpreadSchedule::StaticWeighted { round, weights } => {
                fp.u64(1).usize(*round).usize(weights.len());
                for &w in weights {
                    fp.f64(w);
                }
            }
            SpreadSchedule::Dynamic { chunk } => {
                fp.u64(2).usize(*chunk);
            }
            SpreadSchedule::Auto { .. } => {
                // Resolved to StaticWeighted before dispatch; tagged for
                // completeness.
                fp.u64(3);
            }
        }
        fp.u64(match self.clauses.resilience {
            ResiliencePolicy::FailStop => 0,
            ResiliencePolicy::Redistribute => 1,
        });
        fp.u64(match self.clauses.pressure {
            PressurePolicy::Fail => 0,
            PressurePolicy::Split => 1,
            PressurePolicy::Spill => 2,
        });
        fp.u64(match self.clauses.straggler {
            StragglerPolicy::Wait => 0,
            StragglerPolicy::Steal => 1,
            StragglerPolicy::Replicate => 2,
        });
        fp.f64(self.clauses.straggler_beta);
        fp.u64(match self.clauses.integrity {
            IntegrityMode::Off => 0,
            IntegrityMode::Verify => 1,
            IntegrityMode::Heal => 2,
        });
        fp.u64(match self.clauses.overlap {
            OverlapPolicy::Off => 0,
            OverlapPolicy::Depth(d) => 1 + d as u64,
            OverlapPolicy::Auto => u64::MAX,
        });
        fp.bool(self.nowait).bool(self.serial);
        fp.u64(self.num_teams.map_or(u64::MAX, u64::from));
        fp.u64(self.num_threads.map_or(u64::MAX, u64::from));
        fp.bool(self.drop_last_spill_slice)
            .bool(self.force_rescue_double_commit)
            .bool(self.force_overlap_leak);
        fp.usize(self.maps.len());
        for m in &self.maps {
            fp.u64(match m.map_type {
                spread_rt::MapType::To => 0,
                spread_rt::MapType::From => 1,
                spread_rt::MapType::ToFrom => 2,
                spread_rt::MapType::Alloc => 3,
                spread_rt::MapType::Release => 4,
                spread_rt::MapType::Delete => 5,
            });
            fp.u64(m.array.id().0 as u64);
        }
        fp.usize(self.dep_ins.len());
        for d in &self.dep_ins {
            fp.u64(d.array.id().0 as u64);
        }
        fp.usize(self.dep_outs.len());
        for d in &self.dep_outs {
            fp.u64(d.array.id().0 as u64);
        }
        match headroom {
            None => {
                fp.bool(false);
            }
            Some(h) => {
                fp.bool(true);
                for &d in &self.devices {
                    fp.u64(h.get(&d).copied().unwrap_or(0));
                }
            }
        }
        fp.finish()
    }

    /// Look up a cached [`LaunchPlan`] for this construct, when it
    /// carries a plan key. Returns the plan together with the
    /// fingerprint to store a cold plan under.
    fn plan_lookup(
        &self,
        scope: &Scope<'_>,
        range: &Range<usize>,
        headroom: Option<&HashMap<u32, u64>>,
        started: std::time::Instant,
    ) -> (Option<u64>, Option<Rc<LaunchPlan>>) {
        let Some(key) = &self.clauses.plan_key else {
            return (None, None);
        };
        let fp = self.plan_fingerprint(range, headroom);
        let cached = scope
            .plan_cache_lookup(key, fp, started)
            .and_then(|p| p.downcast::<LaunchPlan>().ok());
        (Some(fp), cached)
    }

    /// Evaluate every `map`/`depend` section expression for one chunk —
    /// the per-chunk planning work the launch-plan cache elides on a
    /// warm launch.
    pub(crate) fn chunk_sections(&self, c: ChunkCtx) -> ChunkSections {
        ChunkSections {
            maps: self.maps.iter().map(|m| m.at(c)).collect(),
            dep_ins: self.dep_ins.iter().map(|d| d.at(c)).collect(),
            dep_outs: self.dep_outs.iter().map(|d| d.at(c)).collect(),
        }
    }

    pub(crate) fn build_target(&self, device: u32, c: ChunkCtx) -> Target {
        self.build_target_from(device, &self.chunk_sections(c))
    }

    /// [`Self::build_target`] over pre-evaluated sections: the warm
    /// launch path, which replays cached [`ChunkSections`] without
    /// calling a single map/dep closure.
    pub(crate) fn build_target_from(&self, device: u32, secs: &ChunkSections) -> Target {
        let mut t = Target::device(device)
            .nowait()
            .integrity(self.clauses.integrity);
        if let Some(depth) = self.clauses.overlap.depth() {
            if depth > 1 {
                t = t.overlap(depth);
                if self.force_overlap_leak {
                    t = t.overlap_leak();
                }
            }
        }
        if self.serial {
            t = t.serial();
        } else {
            if let Some(n) = self.num_teams {
                t = t.num_teams(n);
            }
            if let Some(n) = self.num_threads {
                t = t.num_threads(n);
            }
        }
        for m in &secs.maps {
            t = t.map(m.clone());
        }
        for &d in &secs.dep_ins {
            t = t.depend_in(d);
        }
        for &d in &secs.dep_outs {
            t = t.depend_out(d);
        }
        t
    }

    /// Like [`Self::build_target`] but *without* the construct's
    /// `depend` clauses: a speculative rescue must race the original
    /// piece, not queue behind the dependences it publishes. Downstream
    /// synchronization still flows through the original's exit. The
    /// `spread_overlap` clause is also stripped: a rescue re-executes
    /// the **whole piece** un-pipelined, so first-commit-wins
    /// arbitration only ever sees whole-piece commits.
    pub(crate) fn build_rescue_target(&self, device: u32, c: ChunkCtx) -> Target {
        let mut t = Target::device(device)
            .nowait()
            .integrity(self.clauses.integrity);
        if self.serial {
            t = t.serial();
        } else {
            if let Some(n) = self.num_teams {
                t = t.num_teams(n);
            }
            if let Some(n) = self.num_threads {
                t = t.num_threads(n);
            }
        }
        for m in &self.maps {
            t = t.map(m.at(c));
        }
        t
    }

    /// Offload `kernel` over `range`, distributed across the devices.
    /// Returns the per-chunk construct task ids (for static schedules) —
    /// in chunk order.
    pub fn parallel_for(
        mut self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
    ) -> Result<Vec<TaskId>, RtError> {
        if self.devices.is_empty() {
            return Err(RtError::InvalidDirective(
                "target spread: devices(…) must not be empty".into(),
            ));
        }
        // Resolve `spread_schedule(auto)` into a concrete StaticWeighted
        // plan before any further validation, so auto composes with
        // resilience/pressure exactly where StaticWeighted does.
        let auto = if let Some(SpreadSchedule::Auto { key }) = &self.clauses.schedule {
            let key = key.clone();
            if self.nowait {
                // The profile window closes at construct completion; a
                // nowait construct has no such point to observe.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_schedule(auto) requires a blocking construct".into(),
                ));
            }
            let weights = scope.adaptive_weights(&key, self.devices.len());
            let round = range.len().max(1);
            self.clauses.schedule = Some(SpreadSchedule::StaticWeighted {
                round,
                weights: weights.clone(),
            });
            Some((key, self.devices.clone(), weights, round, scope.now()))
        } else {
            None
        };
        // Resolve `spread_overlap(auto)` against the same construct key:
        // the ProfileStore explores depths {1, 2, 4} first, then keeps
        // the exponentially-weighted argmin of construct duration.
        let auto_depth = if self.clauses.overlap == OverlapPolicy::Auto {
            let Some((key, ..)) = &auto else {
                return Err(RtError::InvalidDirective(
                    "target spread: spread_overlap(auto) requires spread_schedule(auto) \
                     on the same construct"
                        .into(),
                ));
            };
            let depth = scope.adaptive_depth(key);
            self.clauses.overlap = OverlapPolicy::Depth(depth);
            Some((key.clone(), depth, scope.now()))
        } else {
            None
        };
        let ids = self.dispatch(scope, range, kernel)?;
        if let Some((key, devices, weights, round, t0)) = auto {
            scope.record_construct_profile(&key, &devices, &weights, round, t0);
        }
        if let Some((key, depth, t0)) = auto_depth {
            scope.record_overlap_depth(&key, depth, t0);
        }
        Ok(ids)
    }

    /// Validation + launch-path selection, on a concrete (never `Auto`)
    /// schedule.
    fn dispatch(
        self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
    ) -> Result<Vec<TaskId>, RtError> {
        if self.clauses.resilience == ResiliencePolicy::Redistribute
            && matches!(self.schedule(), SpreadSchedule::Dynamic { .. })
        {
            // Dynamic chunks have no pre-assigned device to route off;
            // the claim chains already absorb loss-shaped imbalance.
            return Err(RtError::InvalidDirective(
                "target spread: spread_resilience(redistribute) requires a static schedule".into(),
            ));
        }
        if self.clauses.plan_key.is_some()
            && matches!(self.schedule(), SpreadSchedule::Dynamic { .. })
        {
            // Dynamic placement happens at claim time — there is no
            // launch-time plan to cache. Rejected rather than silently
            // ignored, like every other clause misuse.
            return Err(RtError::InvalidDirective(
                "target spread: spread_plan_cache(…) requires a static schedule".into(),
            ));
        }
        match self.clauses.overlap {
            OverlapPolicy::Off => {}
            OverlapPolicy::Auto => {
                // `parallel_for` resolves Auto against the construct's
                // profile key before dispatch; reaching here means the
                // schedule was not `auto`.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_overlap(auto) requires spread_schedule(auto) \
                     on the same construct"
                        .into(),
                ));
            }
            OverlapPolicy::Depth(0) => {
                return Err(RtError::InvalidDirective(
                    "target spread: spread_overlap(0) is invalid (depth must be ≥ 1)".into(),
                ));
            }
            OverlapPolicy::Depth(_) => {
                if matches!(self.schedule(), SpreadSchedule::Dynamic { .. }) {
                    // Sub-slice planning works off the static chunk →
                    // device assignment.
                    return Err(RtError::InvalidDirective(
                        "target spread: spread_overlap(…) requires a static schedule".into(),
                    ));
                }
                if self.nowait {
                    // The pipeline's staged commits drain at the
                    // construct's blocking completion; a nowait
                    // construct has no such point.
                    return Err(RtError::InvalidDirective(
                        "target spread: spread_overlap(…) requires a blocking construct".into(),
                    ));
                }
                if self.clauses.pressure != PressurePolicy::Fail {
                    // Admission budgets whole pieces against headroom;
                    // splitting/spilling pieces mid-pipeline would
                    // invalidate both plans.
                    return Err(RtError::InvalidDirective(
                        "target spread: spread_overlap(…) is incompatible with \
                         spread_pressure(split|spill)"
                            .into(),
                    ));
                }
            }
        }
        if self.clauses.straggler != StragglerPolicy::Wait {
            if matches!(self.schedule(), SpreadSchedule::Dynamic { .. }) {
                // The deadline sweep and the least-loaded pick both work
                // off the static chunk → device assignment; dynamic
                // chunks already absorb imbalance through claim order.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_straggler(steal|replicate) requires a static schedule"
                        .into(),
                ));
            }
            if self.nowait {
                // The construct's blocking drain owns the rescue exits;
                // a nowait construct has no drain to hand them to.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_straggler(steal|replicate) requires a blocking \
                     construct"
                        .into(),
                ));
            }
        }
        if self.clauses.integrity == IntegrityMode::Heal {
            if matches!(self.schedule(), SpreadSchedule::Dynamic { .. }) {
                // Healing rebuilds the *same* piece on a known device;
                // dynamic chunks have no stable piece → device identity
                // to rebuild against.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_integrity(heal) requires a static schedule".into(),
                ));
            }
            if self.nowait {
                // The blocking drain owns the redo exits; a nowait
                // construct has no drain to absorb them into.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_integrity(heal) requires a blocking construct".into(),
                ));
            }
            if self.clauses.straggler != StragglerPolicy::Wait {
                // A rescue's first-commit-wins arbitration assumes every
                // commit is trustworthy; a healing redo racing a rescue
                // of the same piece would double-arbitrate it. `verify`
                // composes (a mismatch just fails the construct).
                return Err(RtError::InvalidDirective(
                    "target spread: spread_integrity(heal) is incompatible with \
                     spread_straggler(steal|replicate); use spread_integrity(verify)"
                        .into(),
                ));
            }
            if self.clauses.pressure != PressurePolicy::Fail {
                // Both clauses register recovery handlers on the same
                // construct phases; composing the two degradation
                // ladders is future work. `verify` composes.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_integrity(heal) is incompatible with \
                     spread_pressure(split|spill); use spread_integrity(verify)"
                        .into(),
                ));
            }
        }
        if self.clauses.pressure != PressurePolicy::Fail {
            if matches!(self.schedule(), SpreadSchedule::Dynamic { .. }) {
                // Admission plans against the static chunk → device
                // assignment; dynamic chunks have none until claim time.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_pressure(split|spill) requires a static schedule".into(),
                ));
            }
            if self.clauses.resilience == ResiliencePolicy::Redistribute {
                // Both clauses re-place chunks through their own
                // recovery coordinators; composing them is future work.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_pressure(split|spill) is incompatible with \
                     spread_resilience(redistribute)"
                        .into(),
                ));
            }
            if self.nowait {
                // The admission plan budgets the whole construct against
                // headroom sampled at launch; letting the caller race
                // more constructs in underneath would invalidate it.
                return Err(RtError::InvalidDirective(
                    "target spread: spread_pressure(split|spill) requires a blocking construct"
                        .into(),
                ));
            }
            return self.launch_pressure(scope, range, kernel);
        }
        if matches!(self.schedule(), SpreadSchedule::Dynamic { .. }) {
            self.launch_dynamic(scope, range, kernel)
        } else {
            self.launch_static(scope, range, kernel)
        }
    }

    /// The pressure-managed launch path: plan admission against live
    /// per-device headroom, record the degradation events the plan
    /// implies, then launch each piece — same-device pieces serialized
    /// enter-after-exit (which both bounds the real memory peak by one
    /// piece per device and re-establishes the §V-B gap ordering for
    /// halo-overlapping neighbors), host pieces through the spill
    /// executor. Each device piece is guarded for reactive splitting on
    /// post-retry [`RtError::OutOfMemory`].
    fn launch_pressure(
        self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
    ) -> Result<Vec<TaskId>, RtError> {
        let policy = self.clauses.pressure;
        // ── Planning phase (elided on a warm cache hit) ─────────────
        // The live headroom joins the fingerprint: a cached admission
        // plan is only replayed when admission would decide the exact
        // same ladder, so degradation events replay identically too.
        let headroom: HashMap<u32, u64> = self
            .devices
            .iter()
            .map(|&d| (d, scope.device_headroom(d)))
            .collect();
        let t_plan = std::time::Instant::now();
        let (fp, cached) = self.plan_lookup(scope, &range, Some(&headroom), t_plan);
        // As in `launch_static`: the plan stays behind its `Rc`; the
        // warm path replays the recorded degradation events but never
        // deep-copies the admission ladder or the sections.
        let plan: Rc<LaunchPlan> = match cached {
            Some(plan) => {
                let PlanBody::Pressure { pieces, events, .. } = &plan.body else {
                    return Err(RtError::InvalidDirective(
                        "target spread: spread_plan_cache(…) key is shared between a \
                         pressure-managed and a plain static construct"
                            .into(),
                    ));
                };
                #[cfg(debug_assertions)]
                {
                    let chunks = distribute(range.clone(), &self.devices, self.schedule());
                    let footprint = |start: usize, len: usize| self.footprint_bytes(start, len);
                    let fresh = pressure::plan_admission(
                        &chunks,
                        &self.devices,
                        &headroom,
                        &footprint,
                        policy,
                    )
                    .expect("plan cache replayed a plan admission would now reject");
                    assert_eq!(&fresh, pieces, "plan cache replayed a stale admission plan");
                }
                #[cfg(not(debug_assertions))]
                let _ = pieces;
                for ev in events.clone() {
                    scope.record_degradation(ev);
                }
                plan
            }
            None => {
                let chunks = distribute(range, &self.devices, self.schedule());
                let pieces = {
                    let footprint = |start: usize, len: usize| self.footprint_bytes(start, len);
                    pressure::plan_admission(&chunks, &self.devices, &headroom, &footprint, policy)?
                };
                let events = pressure::degradation_events(&pieces);
                for ev in events.clone() {
                    scope.record_degradation(ev);
                }
                let sections: Vec<Option<ChunkSections>> = pieces
                    .iter()
                    .map(|p| match p.placement {
                        Placement::Device(_) => {
                            Some(self.chunk_sections(ChunkCtx::new(p.start, p.len)))
                        }
                        Placement::Host => None,
                    })
                    .collect();
                let plan = Rc::new(LaunchPlan {
                    body: PlanBody::Pressure {
                        pieces,
                        events,
                        sections,
                    },
                });
                if let (Some(fp), Some(key)) = (fp, &self.clauses.plan_key) {
                    scope.plan_cache_store(
                        key,
                        fp,
                        Rc::clone(&plan) as Rc<dyn std::any::Any>,
                        t_plan,
                    );
                }
                plan
            }
        };
        let PlanBody::Pressure {
            pieces, sections, ..
        } = &plan.body
        else {
            unreachable!("shape checked above")
        };
        let drop_last = self.drop_last_spill_slice;
        // Straggler watch composes with pressure management over the
        // *device* pieces of the admission plan (host spills have no
        // kernel task to watch, and no commit to arbitrate).
        let distinct = {
            let mut ds: Vec<u32> = pieces
                .iter()
                .filter_map(|p| match p.placement {
                    Placement::Device(d) => Some(d),
                    Placement::Host => None,
                })
                .collect();
            ds.sort_unstable();
            ds.dedup();
            ds.len()
        };
        let device_pieces = pieces
            .iter()
            .filter(|p| matches!(p.placement, Placement::Device(_)))
            .count();
        let straggle =
            self.clauses.straggler != StragglerPolicy::Wait && device_pieces >= 2 && distinct >= 2;
        let this = Rc::new(self);
        let coord = PressureCoordinator::new(Rc::clone(&this), kernel.clone(), policy, drop_last);
        let monitor = straggle
            .then(|| crate::straggler::Monitor::new(Rc::clone(&this), kernel.clone(), scope.now()));
        let mut tail: HashMap<u32, TaskId> = HashMap::new();
        let mut ids = Vec::with_capacity(pieces.len());
        for (piece, secs) in pieces.iter().zip(sections) {
            match piece.placement {
                Placement::Device(d) => {
                    let secs = secs.as_ref().expect("device pieces carry sections");
                    let mut t = this
                        .build_target_from(d, secs)
                        .pressure_managed()
                        .after(tail.get(&d).copied());
                    let gate = if monitor.is_some() {
                        let g = spread_rt::CommitGate::new();
                        t = t.commit_gate(g.clone(), 0);
                        Some(g)
                    } else {
                        None
                    };
                    let phases = t.parallel_for_phases(scope, piece.range(), kernel.clone())?;
                    pressure::guard(scope, &coord, d, piece.start, piece.len, phases);
                    if let (Some(m), Some(g)) = (&monitor, gate) {
                        crate::straggler::watch(scope, m, d, piece.start, piece.len, phases, g);
                    }
                    tail.insert(d, phases.exit);
                    ids.push(phases.exit);
                }
                Placement::Host => {
                    let id = spread_rt::spill_chunk(
                        scope,
                        format!("spread-spill[{}..{})", piece.start, piece.start + piece.len),
                        piece.range(),
                        kernel.clone(),
                        Vec::new(),
                        drop_last,
                    );
                    ids.push(id);
                }
            }
        }
        for &id in &ids {
            scope.drain_task(id)?;
        }
        if let Some(m) = &monitor {
            loop {
                let pending = m.take_rescue_exits();
                if pending.is_empty() {
                    break;
                }
                for id in pending {
                    scope.drain_task(id)?;
                }
            }
        }
        Ok(ids)
    }

    fn launch_static(
        self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
    ) -> Result<Vec<TaskId>, RtError> {
        let nowait = self.nowait;
        let resilient = self.clauses.resilience == ResiliencePolicy::Redistribute;
        // ── Planning phase (elided on a warm cache hit) ─────────────
        let t_plan = std::time::Instant::now();
        let (fp, cached) = self.plan_lookup(scope, &range, None, t_plan);
        // The plan stays behind its `Rc` end to end — the warm path
        // must never deep-copy what it cached (that copy would eat the
        // very overhead the cache exists to remove).
        let plan: Rc<LaunchPlan> = match cached {
            Some(plan) => {
                let PlanBody::Static { chunks, sections } = &plan.body else {
                    return Err(RtError::InvalidDirective(
                        "target spread: spread_plan_cache(…) key is shared between a \
                         pressure-managed and a plain static construct"
                            .into(),
                    ));
                };
                #[cfg(debug_assertions)]
                {
                    // Debug builds pay the cold cost anyway to *prove*
                    // the replay: same chunks, same evaluated sections.
                    let fresh = distribute(range.clone(), &self.devices, self.schedule());
                    assert_eq!(&fresh, chunks, "plan cache replayed stale chunks");
                    for (i, ch) in fresh.iter().enumerate() {
                        let secs = self.chunk_sections(ChunkCtx::new(ch.start, ch.len));
                        assert_eq!(
                            secs, sections[i],
                            "plan cache replayed stale sections — is the plan key \
                             shared between two different constructs?"
                        );
                    }
                }
                #[cfg(not(debug_assertions))]
                let _ = (chunks, sections);
                plan
            }
            None => {
                let chunks = distribute(range, &self.devices, self.schedule());
                let sections: Vec<ChunkSections> = chunks
                    .iter()
                    .map(|ch| self.chunk_sections(ChunkCtx::new(ch.start, ch.len)))
                    .collect();
                let plan = Rc::new(LaunchPlan {
                    body: PlanBody::Static { chunks, sections },
                });
                if let (Some(fp), Some(key)) = (fp, &self.clauses.plan_key) {
                    scope.plan_cache_store(
                        key,
                        fp,
                        Rc::clone(&plan) as Rc<dyn std::any::Any>,
                        t_plan,
                    );
                }
                plan
            }
        };
        let PlanBody::Static { chunks, sections } = &plan.body else {
            unreachable!("shape checked above")
        };
        // Straggler rescue needs somewhere to rescue *to*: at least two
        // chunks spread over at least two distinct devices. Smaller
        // launches silently degrade to `wait`.
        let distinct = {
            let mut ds: Vec<u32> = chunks.iter().filter_map(|c| c.device).collect();
            ds.sort_unstable();
            ds.dedup();
            ds.len()
        };
        let straggle =
            self.clauses.straggler != StragglerPolicy::Wait && chunks.len() >= 2 && distinct >= 2;
        let heal = self.clauses.integrity == IntegrityMode::Heal;
        let this = Rc::new(self);
        // Under `spread_integrity(heal)` the healer subsumes the
        // resilience coordinator: its handler covers device loss (real
        // or quarantine) *and* integrity violations, because the runtime
        // keeps a single recovery registration per task.
        let coord =
            (resilient && !heal).then(|| Coordinator::new(Rc::clone(&this), kernel.clone()));
        let healer = heal
            .then(|| crate::integrity::Healer::new(Rc::clone(&this), kernel.clone(), resilient));
        let monitor = straggle
            .then(|| crate::straggler::Monitor::new(Rc::clone(&this), kernel.clone(), scope.now()));
        let mut ids = Vec::with_capacity(chunks.len());
        for (chunk, secs) in chunks.iter().zip(sections) {
            let device = chunk.device.expect("static chunks are assigned");
            let mut t = this.build_target_from(device, secs);
            let gate = if monitor.is_some() {
                let g = spread_rt::CommitGate::new();
                t = t.commit_gate(g.clone(), 0);
                Some(g)
            } else {
                None
            };
            if coord.is_some() || monitor.is_some() || healer.is_some() {
                let phases = t.parallel_for_phases(scope, chunk.range(), kernel.clone())?;
                if let Some(coord) = &coord {
                    crate::resilience::guard(scope, coord, device, chunk.start, chunk.len, phases);
                }
                if let Some(h) = &healer {
                    crate::integrity::guard(scope, h, device, chunk.start, chunk.len, phases);
                }
                if let (Some(m), Some(g)) = (&monitor, gate) {
                    crate::straggler::watch(scope, m, device, chunk.start, chunk.len, phases, g);
                }
                ids.push(phases.exit);
            } else {
                ids.push(t.parallel_for(scope, chunk.range(), kernel.clone())?);
            }
        }
        if !nowait {
            for &id in &ids {
                scope.drain_task(id)?;
            }
            if let Some(m) = &monitor {
                // Rescues launch from the deadline callback *during* the
                // drains above; wait for every one of them too (a rescue
                // cannot spawn further rescues, so one extra sweep per
                // batch converges).
                loop {
                    let pending = m.take_rescue_exits();
                    if pending.is_empty() {
                        break;
                    }
                    for id in pending {
                        scope.drain_task(id)?;
                    }
                }
            }
        }
        Ok(ids)
    }

    /// The dynamic-schedule extension: per device, an asynchronous chain
    /// of claim→offload→claim continuations over a shared chunk queue; a
    /// device takes the next chunk as soon as its previous one finishes,
    /// absorbing load imbalance. The returned task ids are per-device
    /// "drained" markers (one per device, finished when that device's
    /// chain runs dry).
    fn launch_dynamic(
        self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
    ) -> Result<Vec<TaskId>, RtError> {
        let chunks = distribute(range, &self.devices, self.schedule());
        let queue: Rc<RefCell<VecDeque<crate::schedule::Chunk>>> =
            Rc::new(RefCell::new(chunks.into_iter().collect()));
        let this = Rc::new(self);

        /// Claim the next chunk for `device`; on completion of its
        /// offload, claim again. `done_gate` collects the whole chain.
        fn claim_next(
            s: &mut Scope<'_>,
            this: &Rc<TargetSpread>,
            queue: &Rc<RefCell<VecDeque<crate::schedule::Chunk>>>,
            kernel: &KernelSpec,
            device: u32,
        ) {
            let next = queue.borrow_mut().pop_front();
            let Some(chunk) = next else { return };
            let c = ChunkCtx::new(chunk.start, chunk.len);
            let t = this.build_target(device, c); // nowait construct
            match t.parallel_for(s, chunk.range(), kernel.clone()) {
                Ok(construct_done) => {
                    let this = Rc::clone(this);
                    let queue = Rc::clone(queue);
                    let kernel = kernel.clone();
                    s.task_chained(
                        format!("spread-dyn-claim(dev{device})"),
                        vec![construct_done],
                        None,
                        move |s| claim_next(s, &this, &queue, &kernel, device),
                    );
                }
                Err(e) => s.fail(e),
            }
        }

        let start_chains = |scope: &mut Scope<'_>| {
            let mut chain_heads = Vec::with_capacity(this.devices.len());
            for &device in this.devices.iter() {
                let this2 = Rc::clone(&this);
                let queue = Rc::clone(&queue);
                let kernel = kernel.clone();
                let id = scope.task(format!("spread-dyn-start(dev{device})"), move |s| {
                    claim_next(s, &this2, &queue, &kernel, device);
                });
                chain_heads.push(id);
            }
            chain_heads
        };
        if this.nowait {
            // Chains join the caller's current taskgroup context; the
            // caller synchronizes with taskgroup/taskwait as usual.
            Ok(start_chains(scope))
        } else {
            // Blocking: a taskgroup waits for the chains and every
            // descendant claim/offload they spawn.
            scope.taskgroup(start_chains)
        }
    }

    /// Extension (§IX "support for reduction clauses among devices"):
    /// run the spread loop and reduce a per-iteration partials array
    /// across all devices on the host.
    ///
    /// `kernel` must write `partials[i]` for every iteration `i` (declare
    /// it as a `Write` arg with the identity section expression); this
    /// method appends the `map(from: partials[chunk])` clause, blocks
    /// until all chunks complete, and folds `partials[range]` with `op`.
    pub fn parallel_for_reduce(
        mut self,
        scope: &mut Scope<'_>,
        range: Range<usize>,
        kernel: KernelSpec,
        partials: spread_rt::HostArray,
        op: crate::reduction::ReduceOp,
    ) -> Result<f64, RtError> {
        self.nowait = false;
        self.maps
            .push(crate::spread_map::spread_from(partials, |c| c.range()));
        let fold_range = range.clone();
        self.parallel_for(scope, range, kernel)?;
        let value = scope.with_host(partials, |p| {
            fold_range
                .clone()
                .map(|i| p[i])
                .fold(op.identity(), |a, b| op.combine(a, b))
        });
        Ok(value)
    }
}
