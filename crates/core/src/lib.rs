//! # spread-core
//!
//! **The paper's contribution**: the `target spread` directive set — an
//! OpenMP extension for multi-device programming that distributes data
//! and/or workload across accelerators without explicit per-device code
//! (Torres, Ferrer, Teruel; IPPS 2022).
//!
//! The directives add a *multi-device* level of parallelism above the
//! existing offloading model:
//!
//! 1. multiple **devices** — `target spread` (this crate)
//! 2. multiple teams — `teams distribute`
//! 3. multiple threads — `parallel for`
//! 4. multiple vector lanes — `simd`
//!
//! | Pragma (paper) | Builder |
//! |---|---|
//! | `#pragma omp target spread devices(…) spread_schedule(static, c) map(…) nowait depend(…)` | [`TargetSpread`] |
//! | `… target spread teams distribute parallel for num_teams(…)` | [`TargetSpread::num_teams`] + [`TargetSpread::parallel_for`] |
//! | `#pragma omp target data spread devices(…) range(…) chunk_size(…)` | [`TargetDataSpread`] |
//! | `#pragma omp target enter data spread …` | [`TargetEnterDataSpread`] |
//! | `#pragma omp target exit data spread …` | [`TargetExitDataSpread`] |
//! | `#pragma omp target update spread …` | [`TargetUpdateSpread`] |
//!
//! The `omp_spread_start` / `omp_spread_size` placeholders become a
//! [`ChunkCtx`] passed to the section-expression closures of `map`,
//! `depend`, `to` and `from` clauses — halos are plain arithmetic on it,
//! exactly as in the paper's Listing 3.
//!
//! Extensions implemented from the paper's future-work section (§IX):
//! `depend` on the data-spread directives (Listing 13), a `dynamic`
//! spread schedule, weighted static chunking, and a cross-device
//! reduction helper. Beyond §IX, robustness extensions:
//! [`SpreadClausesExt::with_resilience`] ([`ResiliencePolicy`]) rebuilds
//! a permanently lost device's chunks on the surviving devices,
//! [`SpreadClausesExt::with_pressure`] ([`PressurePolicy`]) degrades
//! gracefully under device memory pressure — capacity-aware admission,
//! adaptive chunk splitting, and host spill (see [`pressure`]) — and
//! [`SpreadClausesExt::with_integrity`] ([`IntegrityMode`]) digests
//! device payloads end to end, catching silent corruption at the
//! staged-commit and peer-receive trust boundaries and (under `heal`)
//! re-executing tainted pieces from the unharmed host image (see
//! [`integrity`]).
//!
//! # Example
//!
//! The paper's Listing 3/4 — a halo stencil spread over three devices:
//!
//! ```
//! use spread_core::prelude::*;
//! use spread_rt::prelude::*;
//! use spread_rt::kernel::KernelArg;
//! use spread_devices::Topology;
//!
//! let mut rt = Runtime::new(RuntimeConfig::new(Topology::ctepower(3)));
//! let n = 14;
//! let a = rt.host_array("A", n);
//! let b = rt.host_array("B", n);
//! rt.fill_host(a, |i| i as f64);
//!
//! rt.run(|s| {
//!     TargetSpread::devices([2, 0, 1])
//!         .with_schedule(SpreadSchedule::static_chunk(4))
//!         .map(spread_to(a, |c| c.start() - 1..c.end() + 1))
//!         .map(spread_from(b, |c| c.range()))
//!         .parallel_for(s, 1..n - 1, KernelSpec::new("stencil", 2.0, |chunk, v| {
//!             for i in chunk {
//!                 v.set(1, i, v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1));
//!             }
//!         })
//!         .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
//!         .arg(KernelArg::write(b, |r| r)))?;
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(rt.snapshot_host(b)[5], 4.0 + 5.0 + 6.0);
//! ```

#![warn(missing_docs)]

pub mod chunk;
pub mod clauses;
pub mod data_spread;
pub mod integrity;
pub(crate) mod plan;
pub mod pressure;
pub mod reduction;
pub mod resilience;
pub mod schedule;
pub mod spread_map;
pub mod straggler;
pub mod target_spread;
#[doc(hidden)]
pub mod testing;

pub use chunk::ChunkCtx;
pub use clauses::{ClauseSet, OverlapPolicy, SpreadClausesExt};
pub use data_spread::{
    SpreadClauses, TargetDataSpread, TargetEnterDataSpread, TargetExitDataSpread,
    TargetUpdateSpread,
};
pub use pressure::{
    degradation_events, plan_admission, spec_admission, Placement, PlannedPiece, PressurePolicy,
};
pub use reduction::ReduceOp;
pub use resilience::ResiliencePolicy;
pub use schedule::{distribute, Chunk, SpreadSchedule};
pub use spread_map::{spread_alloc, spread_from, spread_to, spread_tofrom, SectionOf, SpreadMap};
pub use spread_rt::{ExchangeMode, IntegrityMode};
pub use straggler::StragglerPolicy;
pub use target_spread::TargetSpread;

/// Convenience re-exports for writing spread programs.
pub mod prelude {
    pub use crate::chunk::ChunkCtx;
    pub use crate::clauses::{ClauseSet, OverlapPolicy, SpreadClausesExt};
    pub use crate::data_spread::{
        SpreadClauses, TargetDataSpread, TargetEnterDataSpread, TargetExitDataSpread,
        TargetUpdateSpread,
    };
    pub use crate::pressure::PressurePolicy;
    pub use crate::reduction::ReduceOp;
    pub use crate::resilience::ResiliencePolicy;
    pub use crate::schedule::SpreadSchedule;
    pub use crate::spread_map::{spread_alloc, spread_from, spread_to, spread_tofrom};
    pub use crate::straggler::StragglerPolicy;
    pub use crate::target_spread::TargetSpread;
    pub use spread_rt::{ExchangeMode, IntegrityMode};
}
