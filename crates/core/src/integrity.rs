//! The `spread_integrity(…)` heal guard: construct re-execution after a
//! caught corruption.
//!
//! The runtime ([`spread_rt::integrity`]) owns detection — CRC32C
//! digests taken at the payload source, re-verified at the staged-commit
//! drain and the peer-copy receive. Under
//! [`IntegrityMode::Heal`](spread_rt::IntegrityMode::Heal) a commit-side
//! mismatch discards the tainted staged bytes and hands the construct
//! back through the recovery machinery; *this* module is the handler a
//! healing `target spread` registers for each per-chunk construct. It
//! rebuilds the piece as a fresh enter→kernel→exit from the unharmed
//! host image:
//!
//! * on the **same device** when it is still trusted — one flipped bit
//!   is not a diagnosis, and the mismatch streak in the runtime's
//!   circuit breaker decides when it becomes one;
//! * on a **surviving sibling** when the breaker has quarantined the
//!   offender (quarantine marks the device lost, so the loss-shaped
//!   recovery below applies).
//!
//! The healer also subsumes `spread_resilience(redistribute)` when both
//! clauses are given: the runtime keeps one recovery registration per
//! task, so a single handler covers genuine device loss and integrity
//! violations alike. Without `redistribute`, a genuine loss still
//! poisons the runtime — healing routes around lies, not around dead
//! hardware.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use spread_rt::{ConstructIds, IntegrityAction, KernelSpec, RtError, Scope, TaskId};
use spread_trace::{Lane, SpanKind};

use crate::chunk::ChunkCtx;
use crate::target_spread::TargetSpread;

/// Shared heal state for one `spread_integrity(heal)` launch.
pub(crate) struct Healer {
    spread: Rc<TargetSpread>,
    kernel: KernelSpec,
    /// Whether `spread_resilience(redistribute)` was also given: genuine
    /// device loss re-places the chunk instead of poisoning the runtime.
    redistribute: bool,
    /// Round-robin cursor over the device list for survivor picks.
    rr: Cell<usize>,
    /// Per device: exit ids of every construct placed on it (original or
    /// redo), in placement order. Redos serialize after all of them —
    /// the same gap-condition-by-ordering rule the resilience
    /// coordinator uses.
    exits: RefCell<HashMap<u32, Vec<TaskId>>>,
}

impl Healer {
    pub(crate) fn new(
        spread: Rc<TargetSpread>,
        kernel: KernelSpec,
        redistribute: bool,
    ) -> Rc<Self> {
        Rc::new(Healer {
            spread,
            kernel,
            redistribute,
            rr: Cell::new(0),
            exits: RefCell::new(HashMap::new()),
        })
    }

    /// Next live device in list order, or `None` if the whole
    /// `devices(…)` list is dead (or quarantined).
    fn pick_survivor(&self, s: &Scope<'_>) -> Option<u32> {
        let devices = self.spread.device_list();
        for _ in 0..devices.len() {
            let i = self.rr.get() % devices.len();
            self.rr.set(i + 1);
            let d = devices[i];
            if !s.is_device_lost(d) {
                return Some(d);
            }
        }
        None
    }
}

/// Put a per-chunk construct under the healer's protection: remember its
/// exit for serialization and register the integrity recovery handler
/// for all three phases (which also covers the loss arm — quarantine
/// marks the device lost and must land here too).
pub(crate) fn guard(
    scope: &mut Scope<'_>,
    healer: &Rc<Healer>,
    device: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
) {
    healer
        .exits
        .borrow_mut()
        .entry(device)
        .or_default()
        .push(ids.exit);
    let healer = Rc::clone(healer);
    scope.on_task_integrity(&ids.all(), device, move |s, faulted, err| {
        heal(s, &healer, device, start, len, ids, faulted, err);
    });
}

/// The heal handler: pick where the redo goes, clear the dead
/// construct's traces, rebuild the chunk from the host image, and chain
/// the original construct's completion behind the redo's exit.
#[allow(clippy::too_many_arguments)]
fn heal(
    s: &mut Scope<'_>,
    healer: &Rc<Healer>,
    home: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
    faulted: TaskId,
    err: RtError,
) {
    let corrupt = matches!(err, RtError::IntegrityViolation { .. });
    // A quarantine looks like a loss to every other construct on the
    // device; the Quarantined event (recorded before the runtime marks
    // the device lost) tells those victims apart from real hardware
    // death.
    let quarantined = |s: &Scope<'_>| {
        s.integrity_events()
            .iter()
            .any(|e| e.device == home && e.action == IntegrityAction::Quarantined)
    };
    let target = if corrupt && !s.is_device_lost(home) {
        // The commit drain caught rot but the breaker still trusts the
        // device: redo in place from the unharmed host image.
        Some(home)
    } else if corrupt || healer.redistribute || quarantined(s) {
        // Quarantined (corrupt + lost, or a sibling chunk evicted by
        // the quarantine) — or a genuine loss under composed
        // redistribution. Either way: route to a survivor.
        healer.pick_survivor(s)
    } else {
        // Genuine device loss without spread_resilience(redistribute):
        // healing covers lies, not dead hardware — fail-stop.
        None
    };
    let Some(target) = target else {
        s.fail(err);
        return;
    };
    // The faulted drain's staged writes were discarded; erase the
    // construct's footprints so the redo can re-map the same sections
    // without tripping the race detector, and neutralize phases that
    // never ran (the loss arm can catch the construct pre-kernel).
    s.forgive_task_footprints(faulted);
    for id in ids.all() {
        if id != faulted {
            s.forgive_task_footprints(id);
            s.neutralize_task(id);
        }
    }
    let now = s.now();
    s.trace().record(
        Lane::compute(target),
        SpanKind::Heal,
        format!(
            "heal-redo [{start}..{}) dev{home}->dev{target}",
            start + len
        ),
        now,
        now,
        0,
    );
    // An in-place redo replaces a piece whose mappings were already
    // compatible with every sibling on its device — no serialization
    // needed (and waiting on the device's other exits would deadlock:
    // this construct's own exit is among them). A *re-routed* redo
    // serializes after every construct already placed on the target,
    // re-establishing the §V-B gap condition by ordering.
    let preds = if target == home {
        Vec::new()
    } else {
        healer
            .exits
            .borrow()
            .get(&target)
            .cloned()
            .unwrap_or_default()
    };
    let c = ChunkCtx::new(start, len);
    let t = healer.spread.build_target(target, c).after(preds);
    match t.parallel_for_phases(s, start..start + len, healer.kernel.clone()) {
        Ok(redo) => {
            // The redo is itself checked and guarded: a second flip
            // heals again, and a streak walks the breaker to quarantine.
            guard(s, healer, target, start, len, redo);
            // Only once the redo's exit has landed clean bytes on the
            // host may the original construct complete and release its
            // downstream dependences.
            s.task_chained(
                format!("spread-heal-done(dev{target})"),
                vec![redo.exit],
                None,
                move |s| s.force_complete(faulted),
            );
        }
        Err(e) => s.fail(e),
    }
}
