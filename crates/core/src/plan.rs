//! Launch plans and their cache fingerprints.
//!
//! A `target spread` launch spends its planning phase on three things:
//! carving the range into chunks ([`distribute`]), evaluating every
//! `map`/`depend` section expression once per chunk, and — under
//! `spread_pressure` — admission-planning the chunks against live
//! headroom. For a construct relaunched every timestep (Somier: five
//! constructs × N steps) that work is identical every time. A construct
//! that opts in with `spread_plan_cache(key)` stores the finished
//! [`LaunchPlan`] in the runtime's
//! [`plan_cache`](spread_rt::plan_cache) and replays it while the
//! fingerprint and topology epoch still match.
//!
//! ## What makes replay sound
//!
//! * [`distribute`] is a pure function of `(range, devices, schedule)`
//!   — all fingerprinted — so cached chunks are exact.
//! * Map/dep section expressions are pure `Fn`s evaluated over the
//!   chunk context alone. Closure *identity* is not fingerprinted —
//!   that is the `spread_plan_cache(key)` contract (one key ⇔ one
//!   lexical construct shape) — but debug builds re-evaluate everything
//!   on every hit and assert the cached sections identical, and the
//!   `spread-check` cache-parity suite runs every fuzz mode cold vs
//!   warm and demands bit-identical observables.
//! * The pressure admission plan additionally depends on live headroom,
//!   so the headroom vector joins the fingerprint: a plan is only
//!   replayed when admission would decide exactly the same ladder.
//! * Everything else a launch depends on (device liveness, adaptive
//!   weights/depths) is covered by the topology epoch, which the
//!   runtime bumps on loss, quarantine and every adaptive update.
//!
//! [`distribute`]: crate::schedule::distribute

use spread_rt::{MapClause, Section};

use crate::pressure::PlannedPiece;
use crate::schedule::Chunk;
use spread_rt::DegradationEvent;

/// The per-chunk result of evaluating a construct's `map` and `depend`
/// section expressions — everything [`build_target_from`] needs to
/// assemble the chunk's offload without touching a closure.
///
/// [`build_target_from`]: crate::target_spread::TargetSpread::build_target_from
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct ChunkSections {
    /// Evaluated `map` items, in clause order.
    pub maps: Vec<MapClause>,
    /// Evaluated `depend(in: …)` sections, in clause order.
    pub dep_ins: Vec<Section>,
    /// Evaluated `depend(out: …)` sections, in clause order.
    pub dep_outs: Vec<Section>,
}

/// The cached product of one launch path's planning phase.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum PlanBody {
    /// The static launch path: chunks and their evaluated sections.
    Static {
        chunks: Vec<Chunk>,
        sections: Vec<ChunkSections>,
    },
    /// The pressure-managed path: the admission plan, the degradation
    /// events it implies (replayed in order on every launch), and the
    /// evaluated sections of each device piece (`None` for host-spill
    /// pieces, which map nothing).
    Pressure {
        pieces: Vec<PlannedPiece>,
        events: Vec<DegradationEvent>,
        sections: Vec<Option<ChunkSections>>,
    },
}

/// A complete cached launch plan — the opaque payload behind the
/// runtime cache's `Rc<dyn Any>`.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct LaunchPlan {
    pub body: PlanBody,
}

/// The fingerprint accumulator: word-at-a-time multiply-xor-rotate
/// mixing (one multiply per 8-byte field, FxHash-style). The
/// fingerprint is recomputed on *every* keyed launch — it sits squarely
/// inside the warm window the plan cache exists to shrink — so it mixes
/// whole words, not bytes: a construct fingerprints ~40 fields, and a
/// byte-granular chain would pay 320 dependent multiplies where this
/// pays 40. Deterministic across runs, order-sensitive, and good enough
/// for a cache whose misdraws cost a re-plan, not correctness — a hit
/// must *also* match the stored key and epoch, and debug builds verify
/// the replayed plan outright.
pub(crate) struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// 2^64 / φ, the usual Fibonacci-hashing multiplier.
    const PRIME: u64 = 0x9e37_79b9_7f4a_7c15;

    pub fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::PRIME);
        self
    }

    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u64(v as u64)
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_sensitive_and_deterministic() {
        let mut a = Fingerprint::new();
        a.u64(1).u64(2);
        let mut b = Fingerprint::new();
        b.u64(2).u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.u64(1).u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn fingerprint_separates_zero_runs() {
        // u64(0) must not collide with two empty writes — every write
        // mixes all eight bytes.
        let mut a = Fingerprint::new();
        a.u64(0);
        assert_ne!(a.finish(), Fingerprint::new().finish());
    }
}
