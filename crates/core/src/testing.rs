//! Test-only failure-injection hooks.
//!
//! These exist solely for the `spread-check` conformance harness's
//! *canaries* — deliberately broken runtime behaviors that prove the
//! harness catches real bugs. They are not part of the directive API:
//! the module is `#[doc(hidden)]` and nothing in this workspace outside
//! spread-check may use it.

use crate::target_spread::TargetSpread;

/// Injection hooks on [`TargetSpread`], importable only by spelling out
/// `spread_core::testing::TargetSpreadTestingExt`.
pub trait TargetSpreadTestingExt {
    /// Silently drop the staged writes of the last slice of every
    /// spilled piece — the `--inject spill` canary. Never use outside
    /// the harness.
    fn inject_drop_last_spill_slice(self) -> Self;

    /// Let the *losing* copy of every straggler rescue commit its
    /// staged writes anyway (first element perturbed) — the
    /// `--inject rescue` canary proving the harness catches a broken
    /// first-commit-wins gate. Never use outside the harness.
    fn inject_rescue_double_commit(self) -> Self;

    /// Commit one staged sub-slice of every pipelined piece *early*
    /// (first element perturbed), before the whole-piece commit point —
    /// the `--inject overlap` canary proving the harness catches a
    /// pipeline that leaks partial results. Never use outside the
    /// harness.
    fn inject_overlap_leak(self) -> Self;
}

impl TargetSpreadTestingExt for TargetSpread {
    fn inject_drop_last_spill_slice(mut self) -> Self {
        self.set_drop_last_spill_slice();
        self
    }

    fn inject_rescue_double_commit(mut self) -> Self {
        self.set_force_rescue_double_commit();
        self
    }

    fn inject_overlap_leak(mut self) -> Self {
        self.set_force_overlap_leak();
        self
    }
}
