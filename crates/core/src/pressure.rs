//! The `spread_pressure(…)` clause: graceful degradation of a
//! `target spread` construct under device memory pressure.
//!
//! The paper's directives assume the mapped sections fit; this module
//! is the robustness extension for when they do not. Three escalating
//! mechanisms keep a construct completing — more slowly, but
//! deterministically and bit-identically — instead of failing:
//!
//! 1. **Capacity-aware admission** — before launching anything, the
//!    planner asks every device for its *headroom* (capacity minus live
//!    program allocations minus every outstanding OOM-pressure window,
//!    see `Scope::device_headroom`) and re-places chunks whose mapped
//!    footprint (halo arithmetic included) does not fit their scheduled
//!    device, round-robin over the rest of the `devices(…)` list.
//! 2. **Adaptive chunk splitting** — a chunk that fits nowhere is split
//!    in half and each half is placed recursively (rotating the
//!    preferred device), down to single-iteration pieces. The same
//!    mechanism runs *reactively*: if a pressure-managed enter still
//!    hits [`RtError::OutOfMemory`] after its bounded retries (e.g.
//!    fragmentation — the byte count fits but no contiguous hole does),
//!    the recovery handler splits the piece in place.
//! 3. **Host spill** — under [`PressurePolicy::Spill`], a piece that no
//!    device can hold executes through the bounded host staging buffer
//!    (`spread_rt::spill_chunk`) instead.
//!
//! Pieces placed on the same device are serialized (each piece's enter
//! waits for the previous piece's exit), which simultaneously
//! re-establishes the §V-B gap condition by ordering — adjacent pieces'
//! halo maps overlap and may never be co-resident — and makes the
//! planner's conservative budget sound: a device never holds more than
//! one piece of the construct at a time.
//!
//! Every decision is recorded as a [`DegradationEvent`]
//! (`admission_shrunk` / `chunk_split` / `spilled_bytes`); the
//! `spread-check` oracle re-runs the same pure planner and predicts the
//! exact event sequence.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::rc::Rc;

use spread_rt::{
    ConstructIds, DegradationEvent, DegradationKind, KernelSpec, RtError, Scope, TaskId,
};

use crate::chunk::ChunkCtx;
use crate::schedule::Chunk;
use crate::target_spread::TargetSpread;

/// What a `target spread` construct does when a chunk's mapped
/// footprint exceeds the available device memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PressurePolicy {
    /// Default: no admission control; an allocation that does not fit
    /// fails with [`RtError::OutOfMemory`] (or parks, under allocation
    /// backpressure) exactly as before.
    #[default]
    Fail,
    /// Admission control plus adaptive chunk splitting. If even a
    /// single-iteration piece fits nowhere, the construct fails with
    /// [`RtError::Degraded`].
    Split,
    /// Everything `Split` does, plus the last rung: a piece that no
    /// device can hold executes through the bounded host staging
    /// buffer. The construct always completes.
    Spill,
}

/// Where the admission planner placed one piece of the iteration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// On a device (possibly not the one the schedule assigned).
    Device(u32),
    /// Through the host staging buffer.
    Host,
}

/// One piece of a pressure-planned construct: a chunk, or a fragment of
/// a split chunk, with its placement decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedPiece {
    /// Index of the originating chunk in schedule order.
    pub chunk_index: usize,
    /// The device the schedule originally assigned to that chunk.
    pub scheduled_device: u32,
    /// Where this piece actually runs.
    pub placement: Placement,
    /// First iteration of the piece.
    pub start: usize,
    /// Iteration count of the piece.
    pub len: usize,
    /// Mapped-footprint bytes of the piece (halo arithmetic included).
    pub bytes: u64,
    /// True if this piece is a proper fragment of its chunk.
    pub split: bool,
}

impl PlannedPiece {
    /// The piece's iteration range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }
}

/// Plan the admission of `chunks` against per-device `headroom`.
///
/// Pure and deterministic: given the same inputs it returns the same
/// pieces, which is what lets the `spread-check` oracle predict
/// degradation exactly. `footprint(start, len)` must return the mapped
/// bytes of the piece `[start, start+len)` — the sum over the
/// construct's map clauses of their section lengths times 8.
///
/// The budget is *per piece*, not per construct: a piece is admitted to
/// a device iff its own footprint fits that device's headroom. Because
/// the runtime serializes same-device pieces (enter waits for the
/// previous piece's exit, which has freed its mappings), a device never
/// holds more than one piece of the construct at a time — so the plan
/// is sound even when the sum of a device's pieces exceeds its
/// headroom. Degradation trades parallelism for completion: under
/// severe pressure many pieces may queue on the one device that still
/// has room, slower but deterministic and exact.
pub fn plan_admission(
    chunks: &[Chunk],
    devices: &[u32],
    headroom: &HashMap<u32, u64>,
    footprint: &dyn Fn(usize, usize) -> u64,
    policy: PressurePolicy,
) -> Result<Vec<PlannedPiece>, RtError> {
    let mut out = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let device = chunk
            .device
            .expect("pressure planning requires a static schedule");
        let pos = devices
            .iter()
            .position(|&d| d == device)
            .expect("scheduled device is in the device list");
        place(
            devices,
            headroom,
            footprint,
            policy,
            chunk.index,
            device,
            pos,
            chunk.start,
            chunk.len,
            false,
            &mut out,
        )?;
    }
    Ok(out)
}

/// Recursive placement of one piece (see [`plan_admission`]).
#[allow(clippy::too_many_arguments)]
fn place(
    devices: &[u32],
    headroom: &HashMap<u32, u64>,
    footprint: &dyn Fn(usize, usize) -> u64,
    policy: PressurePolicy,
    chunk_index: usize,
    scheduled_device: u32,
    preferred_pos: usize,
    start: usize,
    len: usize,
    split: bool,
    out: &mut Vec<PlannedPiece>,
) -> Result<(), RtError> {
    let bytes = footprint(start, len);
    // Preferred device first, then round-robin over the rest of the
    // list — the same wrap order the schedule itself uses.
    for k in 0..devices.len() {
        let pos = (preferred_pos + k) % devices.len();
        let d = devices[pos];
        let h = headroom.get(&d).expect("headroom for every device");
        if bytes <= *h {
            out.push(PlannedPiece {
                chunk_index,
                scheduled_device,
                placement: Placement::Device(d),
                start,
                len,
                bytes,
                split,
            });
            return Ok(());
        }
    }
    // Nothing holds the whole piece. If no device could hold even a
    // single iteration, splitting cannot help: spill the piece whole
    // (one staged pass) rather than fragmenting it into hundreds of
    // single-iteration spills.
    let max_headroom = devices.iter().map(|d| headroom[d]).max().unwrap_or(0);
    let hopeless = max_headroom < footprint(start, 1);
    if len > 1 && !hopeless {
        let left = len / 2;
        place(
            devices,
            headroom,
            footprint,
            policy,
            chunk_index,
            scheduled_device,
            preferred_pos,
            start,
            left,
            true,
            out,
        )?;
        place(
            devices,
            headroom,
            footprint,
            policy,
            chunk_index,
            scheduled_device,
            (preferred_pos + 1) % devices.len(),
            start + left,
            len - left,
            true,
            out,
        )?;
        return Ok(());
    }
    match policy {
        PressurePolicy::Spill => {
            out.push(PlannedPiece {
                chunk_index,
                scheduled_device,
                placement: Placement::Host,
                start,
                len,
                bytes,
                split,
            });
            Ok(())
        }
        _ => Err(RtError::Degraded {
            device: scheduled_device,
            what: format!("chunk piece [{start}..{})", start + len),
            bytes,
        }),
    }
}

/// Derive the degradation events of a plan, in piece order: a host
/// piece spilled; a fragment records a split; an intact chunk that
/// moved off its scheduled device records an admission shrink; a chunk
/// placed where the schedule put it records nothing.
pub fn degradation_events(pieces: &[PlannedPiece]) -> Vec<DegradationEvent> {
    pieces
        .iter()
        .filter_map(|p| {
            let (kind, device) = match (p.placement, p.split) {
                (Placement::Host, _) => (DegradationKind::Spilled, None),
                (Placement::Device(d), true) => (DegradationKind::ChunkSplit, Some(d)),
                (Placement::Device(d), false) if d != p.scheduled_device => {
                    (DegradationKind::AdmissionShrunk, Some(d))
                }
                _ => return None,
            };
            Some(DegradationEvent {
                kind,
                device,
                start: p.start,
                len: p.len,
                bytes: p.bytes,
            })
        })
        .collect()
}

/// [`plan_admission`] + [`degradation_events`] with the verdict lifted
/// into the `spread-semantics` vocabulary: the `S-Admit` event list, or
/// the `S-Degrade` error, ready to slot into a
/// `spread_semantics::Directive::SpreadConstruct`'s `admission` field.
///
/// This is the one boundary where the spec consumes the planner: the
/// admission computation (budgets, round-robin wrap, recursive halving)
/// is runtime scheduling policy and lives here; the semantics crate
/// only defines what its verdict *means*.
pub fn spec_admission(
    chunks: &[Chunk],
    devices: &[u32],
    headroom: &HashMap<u32, u64>,
    footprint: &dyn Fn(usize, usize) -> u64,
    policy: PressurePolicy,
) -> Result<Vec<spread_semantics::Degradation>, spread_semantics::SemError> {
    match plan_admission(chunks, devices, headroom, footprint, policy) {
        Ok(pieces) => Ok(degradation_events(&pieces)
            .into_iter()
            .map(|e| spread_semantics::Degradation {
                kind: match e.kind {
                    DegradationKind::AdmissionShrunk => spread_semantics::DegKind::AdmissionShrunk,
                    DegradationKind::ChunkSplit => spread_semantics::DegKind::ChunkSplit,
                    DegradationKind::Spilled => spread_semantics::DegKind::Spilled,
                    DegradationKind::StragglerRescued | DegradationKind::CorruptionHealed => {
                        unreachable!("the admission planner never emits rescue or heal events")
                    }
                },
                device: e.device,
                start: e.start,
                len: e.len,
                bytes: e.bytes,
            })
            .collect()),
        Err(RtError::Degraded {
            device,
            what,
            bytes,
        }) => Err(spread_semantics::SemError::Degraded {
            device,
            what,
            bytes,
        }),
        Err(other) => unreachable!("plan_admission only fails with Degraded: {other:?}"),
    }
}

/// Shared state of one pressure-managed spread launch: what the
/// reactive recovery handlers need to rebuild a piece.
pub(crate) struct PressureCoordinator {
    spread: Rc<TargetSpread>,
    kernel: KernelSpec,
    policy: PressurePolicy,
    /// Failure-injection hook forwarded to the spill executor.
    drop_last_spill_slice: bool,
    /// Recursion guard: reactive splits outstanding (diagnostics only).
    splits: RefCell<u32>,
}

impl PressureCoordinator {
    pub(crate) fn new(
        spread: Rc<TargetSpread>,
        kernel: KernelSpec,
        policy: PressurePolicy,
        drop_last_spill_slice: bool,
    ) -> Rc<Self> {
        Rc::new(PressureCoordinator {
            spread,
            kernel,
            policy,
            drop_last_spill_slice,
            splits: RefCell::new(0),
        })
    }

    pub(crate) fn drop_last_spill_slice(&self) -> bool {
        self.drop_last_spill_slice
    }
}

/// Register the reactive pressure handler for one piece's construct.
pub(crate) fn guard(
    scope: &mut Scope<'_>,
    coord: &Rc<PressureCoordinator>,
    device: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
) {
    let coord = Rc::clone(coord);
    scope.on_task_oom(&ids.all(), device, move |s, faulted, err| {
        recover(s, &coord, device, start, len, ids, faulted, err);
    });
}

/// The reactive recovery handler: a pressure-managed enter exhausted
/// its OOM retries (typically fragmentation — admission's byte budget
/// is blind to holes). Neutralize the piece's phases and re-run it as
/// two serialized halves on the *same* device — sequential halves need
/// smaller contiguous blocks and free between themselves. At one
/// iteration, escalate to the policy's last rung.
///
/// Replacements take no predecessors from the construct's serialization
/// chain: the faulted enter *started*, so everything before it already
/// finished (and freed its memory); everything after it is gated on the
/// faulted piece's exit, which completes only behind the replacements.
/// That structure is acyclic by construction.
#[allow(clippy::too_many_arguments)]
fn recover(
    s: &mut Scope<'_>,
    coord: &Rc<PressureCoordinator>,
    device: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
    faulted: TaskId,
    err: RtError,
) {
    s.forgive_task_footprints(faulted);
    for id in ids.all() {
        if id != faulted {
            s.neutralize_task(id);
        }
    }
    if len <= 1 {
        match coord.policy {
            PressurePolicy::Spill => {
                let bytes = coord.spread.footprint_bytes(start, len);
                s.record_degradation(DegradationEvent {
                    kind: DegradationKind::Spilled,
                    device: None,
                    start,
                    len,
                    bytes,
                });
                let spill_id = spread_rt::spill_chunk(
                    s,
                    format!("spread-spill[{start}..{})", start + len),
                    start..start + len,
                    coord.kernel.clone(),
                    Vec::new(),
                    coord.drop_last_spill_slice(),
                );
                s.task_chained(
                    format!("spread-pressure-done(dev{device})"),
                    vec![spill_id],
                    None,
                    move |s| s.force_complete(faulted),
                );
            }
            _ => s.fail(err),
        }
        return;
    }
    *coord.splits.borrow_mut() += 1;
    let halves = [(start, len / 2), (start + len / 2, len - len / 2)];
    let mut prev_exit: Option<TaskId> = None;
    let mut exits = Vec::with_capacity(2);
    for (h_start, h_len) in halves {
        let bytes = coord.spread.footprint_bytes(h_start, h_len);
        s.record_degradation(DegradationEvent {
            kind: DegradationKind::ChunkSplit,
            device: Some(device),
            start: h_start,
            len: h_len,
            bytes,
        });
        let c = ChunkCtx::new(h_start, h_len);
        let t = coord
            .spread
            .build_target(device, c)
            .pressure_managed()
            .after(prev_exit);
        match t.parallel_for_phases(s, h_start..h_start + h_len, coord.kernel.clone()) {
            Ok(redo) => {
                // Halves can still be too big: they are themselves
                // guarded and split recursively down to one iteration.
                guard(s, coord, device, h_start, h_len, redo);
                prev_exit = Some(redo.exit);
                exits.push(redo.exit);
            }
            Err(e) => {
                s.fail(e);
                return;
            }
        }
    }
    s.task_chained(
        format!("spread-pressure-done(dev{device})"),
        exits,
        None,
        move |s| s.force_complete(faulted),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{distribute, SpreadSchedule};

    fn flat_footprint(per_iter: u64) -> impl Fn(usize, usize) -> u64 {
        move |_start, len| len as u64 * per_iter
    }

    fn plan(
        n: usize,
        chunk: usize,
        devices: &[u32],
        room: &[u64],
        per_iter: u64,
        policy: PressurePolicy,
    ) -> Result<Vec<PlannedPiece>, RtError> {
        let chunks = distribute(0..n, devices, &SpreadSchedule::static_chunk(chunk));
        let headroom: HashMap<u32, u64> =
            devices.iter().copied().zip(room.iter().copied()).collect();
        plan_admission(
            &chunks,
            devices,
            &headroom,
            &flat_footprint(per_iter),
            policy,
        )
    }

    #[test]
    fn everything_fits_nothing_degrades() {
        let pieces = plan(20, 10, &[0, 1], &[1000, 1000], 8, PressurePolicy::Split).unwrap();
        assert_eq!(pieces.len(), 2);
        assert!(pieces.iter().all(|p| !p.split));
        assert_eq!(pieces[0].placement, Placement::Device(0));
        assert_eq!(pieces[1].placement, Placement::Device(1));
        assert!(degradation_events(&pieces).is_empty());
    }

    #[test]
    fn admission_moves_chunk_off_full_device() {
        // Device 0 has no room: its chunk re-homes to device 1.
        let pieces = plan(20, 10, &[0, 1], &[0, 1000], 8, PressurePolicy::Split).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].placement, Placement::Device(1));
        assert!(!pieces[0].split);
        let ev = degradation_events(&pieces);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, DegradationKind::AdmissionShrunk);
        assert_eq!(ev[0].device, Some(1));
        assert_eq!((ev[0].start, ev[0].len), (0, 10));
    }

    #[test]
    fn oversized_chunk_splits_across_devices() {
        // One 10-iteration chunk of 80 B; each device holds 40 B.
        let pieces = plan(10, 10, &[0, 1], &[40, 40], 8, PressurePolicy::Split).unwrap();
        assert_eq!(pieces.len(), 2);
        assert!(pieces.iter().all(|p| p.split));
        assert_eq!(pieces[0].placement, Placement::Device(0));
        assert_eq!(pieces[0].range(), 0..5);
        assert_eq!(pieces[1].placement, Placement::Device(1));
        assert_eq!(pieces[1].range(), 5..10);
        let ev = degradation_events(&pieces);
        assert_eq!(ev.len(), 2);
        assert!(ev.iter().all(|e| e.kind == DegradationKind::ChunkSplit));
    }

    #[test]
    fn split_recurses_to_fit() {
        // 16 iterations, 128 B; rooms 16/16/64: the chunk splits twice
        // before its 32 B quarters fit device 2.
        let rooms = [16u64, 16, 64];
        let pieces = plan(16, 16, &[0, 1, 2], &rooms, 8, PressurePolicy::Split).unwrap();
        let total: usize = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, 16);
        // Contiguous, ordered pieces.
        let mut cursor = 0;
        for p in &pieces {
            assert_eq!(p.start, cursor);
            cursor += p.len;
        }
        // The per-piece budget holds: every piece individually fits the
        // headroom of the device it landed on (same-device pieces run
        // serialized, so that is the real peak).
        for p in &pieces {
            let Placement::Device(d) = p.placement else {
                panic!("split policy never spills: {p:?}");
            };
            assert!(p.bytes <= rooms[d as usize], "{p:?}");
            assert!(p.split);
        }
    }

    #[test]
    fn split_policy_fails_when_hopeless() {
        let err = plan(10, 10, &[0, 1], &[0, 0], 8, PressurePolicy::Split).unwrap_err();
        assert!(matches!(err, RtError::Degraded { .. }));
    }

    #[test]
    fn spill_takes_whole_piece_when_no_device_has_any_room() {
        // Nothing fits anywhere: the chunk spills whole, not as ten
        // single-iteration fragments.
        let pieces = plan(10, 10, &[0, 1], &[0, 0], 8, PressurePolicy::Spill).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].placement, Placement::Host);
        assert_eq!(pieces[0].range(), 0..10);
        let ev = degradation_events(&pieces);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, DegradationKind::Spilled);
        assert_eq!(ev[0].bytes, 80);
    }

    #[test]
    fn spill_mixes_with_device_placement_across_chunks() {
        // Iterations past 5 are 100× heavier (think a fat halo): the
        // first chunk fits a device, the second is hopeless and spills
        // whole — one plan, both rungs of the ladder.
        let devices = [0u32, 1];
        let chunks = distribute(0..10, &devices, &SpreadSchedule::static_chunk(5));
        let headroom: HashMap<u32, u64> = [(0, 40), (1, 40)].into();
        let footprint = |start: usize, len: usize| {
            if start < 5 {
                len as u64 * 8
            } else {
                len as u64 * 100
            }
        };
        let pieces = plan_admission(
            &chunks,
            &devices,
            &headroom,
            &footprint,
            PressurePolicy::Spill,
        )
        .unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].placement, Placement::Device(0));
        assert_eq!(pieces[0].range(), 0..5);
        assert_eq!(pieces[1].placement, Placement::Host);
        assert_eq!(pieces[1].range(), 5..10);
        assert_eq!(pieces[1].bytes, 500);
    }

    #[test]
    fn planner_is_deterministic() {
        let a = plan(
            100,
            7,
            &[2, 0, 1],
            &[100, 200, 50],
            8,
            PressurePolicy::Spill,
        )
        .unwrap();
        let b = plan(
            100,
            7,
            &[2, 0, 1],
            &[100, 200, 50],
            8,
            PressurePolicy::Spill,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
