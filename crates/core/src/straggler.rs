//! The `spread_straggler(…)` clause: per-construct progress deadlines
//! with speculative re-execution of lagging pieces.
//!
//! A multi-device spread is only as fast as its slowest piece. When one
//! device computes far slower than its siblings (thermal throttling,
//! a contended MIG slice — modeled by
//! [`PlannedFault::ComputeSlowdown`](spread_sim::PlannedFault)), the
//! construct's blocking drain waits on a straggler while healthy
//! devices idle. This module adds the rescue path:
//!
//! 1. **Detection.** When the construct's *first* piece finishes its
//!    kernel at `t1`, the whole construct gets a progress deadline
//!    `t0 + β·(t1 − t0)` (launch time `t0`, default β = 4). Any piece
//!    whose kernel has still not finished at the deadline is a
//!    straggler.
//! 2. **Rescue.** The straggling piece is re-executed as a fresh
//!    enter→kernel→exit construct on the least-loaded healthy sibling
//!    of the `devices(…)` list. Under
//!    [`StragglerPolicy::Steal`] the original's in-flight kernel is
//!    additionally cancelled (only a *running* kernel: its eager body
//!    already ran, so the device bytes are whole and the original exit
//!    still cleans up its mappings); under
//!    [`StragglerPolicy::Replicate`] both copies run to completion.
//! 3. **First-commit-wins.** Both copies share a
//!    [`CommitGate`]: whichever exit finishes first lands its staged
//!    D2H writes on the host, the loser discards its snapshot. Both
//!    copies compute bit-identical bytes from the same host input, so
//!    the race never changes results — and the *recorded* winner is
//!    made schedule-independent by a deterministic same-instant
//!    tie-break (lower copy index wins).
//!
//! Rescues serialize after every construct already placed on their
//! target device (the §V-B gap condition by ordering, exactly like
//! [`resilience`](crate::resilience) replacements), and are reported
//! through [`Runtime::rescues`](spread_rt::Runtime::rescues) plus a
//! `StragglerRescued` degradation event per rescue.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use spread_rt::{CommitGate, ConstructIds, KernelSpec, RescueRecord, Scope, TaskId};
use spread_trace::{SimDuration, SimTime};

use crate::chunk::ChunkCtx;
use crate::target_spread::TargetSpread;

/// What a `target spread` construct does about a piece that lags far
/// behind its siblings (detected by the β-deadline above).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StragglerPolicy {
    /// Default: wait for the straggler (the pre-existing behavior).
    #[default]
    Wait,
    /// Cancel the straggler's in-flight kernel and re-execute the piece
    /// on the least-loaded healthy sibling; the cancelled copy is
    /// disqualified from committing. Falls back to `Replicate` behavior
    /// when the cancel misses (the kernel was queued or already done).
    Steal,
    /// Leave the straggler running and race a speculative copy on the
    /// least-loaded healthy sibling; first commit wins.
    Replicate,
}

/// One piece under straggler watch.
struct Watched {
    device: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
    gate: CommitGate,
    rescued: Cell<bool>,
}

/// Shared monitor state for one spread launch with
/// `spread_straggler(steal|replicate)`.
pub(crate) struct Monitor {
    spread: Rc<TargetSpread>,
    kernel: KernelSpec,
    policy: StragglerPolicy,
    beta: f64,
    t0: SimTime,
    /// Set once the first kernel completion arms the deadline.
    armed: Cell<bool>,
    watched: RefCell<Vec<Watched>>,
    /// Per device: exit ids of every construct placed on it (original
    /// or rescue), in placement order — rescues serialize after them.
    exits: RefCell<HashMap<u32, Vec<TaskId>>>,
    /// Iterations already rescued *onto* each device (load accounting
    /// for the least-loaded pick).
    rescue_load: RefCell<HashMap<u32, u64>>,
    /// Exits of launched rescues not yet handed to the blocking drain.
    pending_rescue_exits: RefCell<Vec<TaskId>>,
    /// Canary: force losing commits through (see
    /// [`crate::testing::TargetSpreadTestingExt`]).
    force_double: bool,
}

impl Monitor {
    pub(crate) fn new(spread: Rc<TargetSpread>, kernel: KernelSpec, t0: SimTime) -> Rc<Self> {
        let policy = spread.straggler();
        let beta = spread.straggler_beta();
        let force_double = spread.force_rescue_double_commit();
        Rc::new(Monitor {
            spread,
            kernel,
            policy,
            beta,
            t0,
            armed: Cell::new(false),
            watched: RefCell::new(Vec::new()),
            exits: RefCell::new(HashMap::new()),
            rescue_load: RefCell::new(HashMap::new()),
            pending_rescue_exits: RefCell::new(Vec::new()),
            force_double,
        })
    }

    /// Rescue exits launched since the last call (the blocking drain
    /// loops on this until it runs dry).
    pub(crate) fn take_rescue_exits(&self) -> Vec<TaskId> {
        std::mem::take(&mut *self.pending_rescue_exits.borrow_mut())
    }

    /// First kernel completion arms the construct's progress deadline.
    fn kernel_finished(self: &Rc<Self>, s: &mut Scope<'_>) {
        if self.armed.get() {
            return;
        }
        self.armed.set(true);
        let span = (s.now() - self.t0).max(SimDuration::from_nanos(1));
        let deadline = self.t0 + span * self.beta;
        let m = Rc::clone(self);
        s.at(deadline, move |s| m.deadline(s));
    }

    /// The deadline: every piece whose kernel still has not finished is
    /// a straggler — rescue each one.
    fn deadline(self: Rc<Self>, s: &mut Scope<'_>) {
        let n = self.watched.borrow().len();
        for i in 0..n {
            let (device, start, len, ids, gate, rescued) = {
                let ws = self.watched.borrow();
                let w = &ws[i];
                (
                    w.device,
                    w.start,
                    w.len,
                    w.ids,
                    w.gate.clone(),
                    w.rescued.get(),
                )
            };
            if rescued || s.is_task_finished(ids.kernel) {
                continue;
            }
            self.watched.borrow()[i].rescued.set(true);
            self.rescue(s, device, start, len, ids, gate);
        }
    }

    /// The least-loaded healthy sibling: lowest outstanding iteration
    /// count (own unfinished pieces + rescues already routed there),
    /// ties broken by `devices(…)` list order. Deterministic — every
    /// input is construct-launch state, never an event race.
    fn pick_target(&self, s: &Scope<'_>, from: u32) -> Option<u32> {
        let watched = self.watched.borrow();
        let rescue_load = self.rescue_load.borrow();
        let mut best: Option<(u64, u32)> = None;
        for &d in self.spread.device_list() {
            if d == from || s.is_device_lost(d) {
                continue;
            }
            let mut load: u64 = rescue_load.get(&d).copied().unwrap_or(0);
            for w in watched.iter() {
                if w.device == d && !s.is_task_finished(w.ids.exit) {
                    load += w.len as u64;
                }
            }
            if best.is_none_or(|(bl, _)| load < bl) {
                best = Some((load, d));
            }
        }
        best.map(|(_, d)| d)
    }

    /// Speculatively re-execute one straggling piece on a sibling.
    fn rescue(
        self: &Rc<Self>,
        s: &mut Scope<'_>,
        from: u32,
        start: usize,
        len: usize,
        ids: ConstructIds,
        gate: CommitGate,
    ) {
        let Some(to) = self.pick_target(s, from) else {
            // No healthy sibling — nothing to do but wait after all.
            return;
        };
        let stolen = self.policy == StragglerPolicy::Steal && s.cancel_kernel(from, ids.kernel);
        if stolen {
            gate.disqualify(0);
        }
        // The rescue's construct covers the same host sections as the
        // original; the commit gate (not task ordering) arbitrates the
        // host write, so the original's footprints must not read as a
        // race against the speculative copy.
        for id in ids.all() {
            s.forgive_task_footprints(id);
        }
        let idx = s.record_rescue(RescueRecord {
            start,
            len,
            from,
            to,
            winner: None,
            commits: 0,
            stolen,
        });
        gate.set_log_idx(idx);
        if self.force_double {
            gate.force_duplicate();
        }
        let preds = self.exits.borrow().get(&to).cloned().unwrap_or_default();
        let c = ChunkCtx::new(start, len);
        // No depend clauses on the rescue: it must *race* the original
        // construct, not queue behind its publishes; downstream
        // synchronization still goes through the original's exit.
        let t = self
            .spread
            .build_rescue_target(to, c)
            .commit_gate(gate, 1)
            .after(preds);
        match t.parallel_for_phases(s, start..start + len, self.kernel.clone()) {
            Ok(redo) => {
                self.exits
                    .borrow_mut()
                    .entry(to)
                    .or_default()
                    .push(redo.exit);
                *self.rescue_load.borrow_mut().entry(to).or_default() += len as u64;
                self.pending_rescue_exits.borrow_mut().push(redo.exit);
                if stolen {
                    // The cancelled kernel's completion will never fire;
                    // its device-side effects already ran at op start.
                    // Completing it lets the original exit run its
                    // (disqualified, cleanup-only) course.
                    s.force_complete(ids.kernel);
                }
            }
            Err(e) => s.fail(e),
        }
    }
}

/// Put one piece under the monitor's watch: remember its identity for
/// the deadline sweep and chain a probe on its kernel so the first
/// finisher arms the deadline.
pub(crate) fn watch(
    scope: &mut Scope<'_>,
    monitor: &Rc<Monitor>,
    device: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
    gate: CommitGate,
) {
    monitor.watched.borrow_mut().push(Watched {
        device,
        start,
        len,
        ids,
        gate,
        rescued: Cell::new(false),
    });
    monitor
        .exits
        .borrow_mut()
        .entry(device)
        .or_default()
        .push(ids.exit);
    let m = Rc::clone(monitor);
    scope.task_chained(
        format!("straggler-probe(dev{device})"),
        vec![ids.kernel],
        None,
        move |s| m.kernel_finished(s),
    );
}
