//! The spread data-management directives: `target data spread`,
//! `target enter/exit data spread`, `target update spread`
//! (paper §III-B.3–5).
//!
//! All of them distribute mappings with a *static round-robin* policy
//! driven by the `range(start:len)` and `chunk_size(c)` clauses — the
//! paper deliberately omits a `spread_schedule` clause here. The
//! unstructured directives support `nowait`; the `depend` clause on them
//! is this reproduction's implementation of the paper's future work
//! (§IX, Listing 13) and is disabled unless explicitly used.
//!
//! The four builders share one clause core, [`SpreadClauses`] —
//! devices / range / chunk_size / optional explicit schedule / map list —
//! so distribution and validation live in exactly one place. The
//! directive-specific methods are thin forwarding wrappers, keeping the
//! paper's per-pragma spelling at call sites.

use std::ops::Range;

use spread_rt::directives::{ExchangeMode, TargetEnterData, TargetExitData, TargetUpdate};
use spread_rt::map::MapType;
use spread_rt::{HostArray, IntegrityMode, MapClause, RtError, Scope, Section, TaskId};

use crate::chunk::ChunkCtx;
use crate::clauses::{ClauseSet, SpreadClausesExt, Supports};
use crate::resilience::ResiliencePolicy;
use crate::schedule::{distribute, Chunk, SpreadSchedule};
use crate::spread_map::{SectionOf, SpreadMap};
use crate::target_spread::SpreadDep;

/// Under `spread_resilience(redistribute)`, absorb a chunk task's
/// device-loss failure: the staged-write discipline left the host image
/// untouched, so the task is dropped (footprints forgiven, dependents
/// released) and the program continues from the host copy. Data-spread
/// directives need no replacement construct — a later resilient spread
/// re-maps what it needs from the host.
fn guard_chunk_task(scope: &mut Scope<'_>, id: TaskId, device: u32) {
    scope.on_task_fault(&[id], device, move |s, faulted, _err| {
        s.forgive_task_footprints(faulted);
        s.force_complete(faulted);
    });
}

/// The clause core shared by every spread data-management directive:
/// `devices(…)`, `range(start:len)`, `chunk_size(c)`, an optional
/// explicit static `spread_schedule(…)`, and the spread map list.
///
/// [`chunks`](SpreadClauses::chunks) performs the shared validation and
/// distribution; the directive builders embed a `SpreadClauses` and
/// forward their clause methods to it.
#[derive(Clone)]
pub struct SpreadClauses {
    devices: Vec<u32>,
    range: Option<Range<usize>>,
    chunk_size: Option<usize>,
    set: ClauseSet,
    maps: Vec<SpreadMap>,
}

impl SpreadClausesExt for SpreadClauses {
    fn clause_set_mut(&mut self) -> &mut ClauseSet {
        &mut self.set
    }
}

impl SpreadClauses {
    /// Start with the `devices(…)` clause. The distribution order is
    /// the list order, not the device-id order.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        SpreadClauses {
            devices: devices.into_iter().collect(),
            range: None,
            chunk_size: None,
            set: ClauseSet::default(),
            maps: Vec::new(),
        }
    }

    /// `range(start:len)` — the iteration-space range being distributed.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.range = Some(start..start + len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.chunk_size = Some(c);
        self
    }

    /// Add a spread map item.
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.maps.extend(items);
        self
    }

    /// The map list.
    pub fn map_list(&self) -> &[SpreadMap] {
        &self.maps
    }

    /// The `devices(…)` list, in distribution order.
    pub fn device_list(&self) -> &[u32] {
        &self.devices
    }

    /// Validate the clause set and distribute the range into chunks —
    /// the single distribution path of all four data directives.
    pub fn chunks(&self) -> Result<Vec<Chunk>, RtError> {
        if self.devices.is_empty() {
            return Err(RtError::InvalidDirective(
                "devices(…) must not be empty".into(),
            ));
        }
        let range = self
            .range
            .clone()
            .ok_or_else(|| RtError::InvalidDirective("range clause is required".into()))?;
        // §IX: "Once [more schedules] are implemented, we will integrate
        // them into the syntax of the target spread data transfer
        // directives via the spread_schedule clause." — an explicit
        // static schedule may replace the default `chunk_size`
        // round-robin. Dynamic schedules cannot place data (the
        // chunk→device assignment must be known when the mapping is
        // created), and `auto` resolves against a *construct's* profile
        // history, which a standalone data directive does not have.
        if let Some(s) = &self.set.schedule {
            if matches!(s, SpreadSchedule::Dynamic { .. }) {
                return Err(RtError::InvalidDirective(
                    "data spread directives require a static distribution                  (dynamic placement is undecidable at mapping time)"
                        .into(),
                ));
            }
            if matches!(s, SpreadSchedule::Auto { .. }) {
                return Err(RtError::InvalidDirective(
                    "data spread directives require a static distribution \
                     (spread_schedule(auto) only resolves on executable constructs)"
                        .into(),
                ));
            }
            return Ok(distribute(range, &self.devices, s));
        }
        let chunk = self
            .chunk_size
            .ok_or_else(|| RtError::InvalidDirective("chunk_size clause is required".into()))?;
        if chunk == 0 {
            return Err(RtError::InvalidDirective("chunk_size must be >= 1".into()));
        }
        Ok(distribute(
            range,
            &self.devices,
            &SpreadSchedule::Static { chunk },
        ))
    }
}

/// `#pragma omp target enter data spread`.
#[derive(Clone)]
pub struct TargetEnterDataSpread {
    clauses: SpreadClauses,
    nowait: bool,
    dep_ins: Vec<SpreadDep>,
    dep_outs: Vec<SpreadDep>,
}

impl SpreadClausesExt for TargetEnterDataSpread {
    fn clause_set_mut(&mut self) -> &mut ClauseSet {
        &mut self.clauses.set
    }
}

impl TargetEnterDataSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetEnterDataSpread {
            clauses: SpreadClauses::devices(devices),
            nowait: false,
            dep_ins: Vec::new(),
            dep_outs: Vec::new(),
        }
    }

    /// `range(start:len)` — the iteration-space range being distributed.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.clauses = self.clauses.range(start, len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.clauses = self.clauses.chunk_size(c);
        self
    }

    /// Add a spread map item (`to`/`alloc`).
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.clauses = self.clauses.map(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.clauses = self.clauses.maps(items);
        self
    }

    /// `nowait` — asynchronous transfers.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// **Extension** (paper §IX, Listing 13): `depend(out: a[expr])` per
    /// chunk, letting kernels synchronize with data transfers at chunk
    /// level instead of through a `taskgroup` barrier.
    pub fn depend_out(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_outs.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// **Extension**: `depend(in: a[expr])` per chunk.
    pub fn depend_in(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_ins.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// Issue the directive: one enter-data task per chunk.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<Vec<TaskId>, RtError> {
        self.clauses.set.reject_unsupported(
            "target enter data spread",
            Supports {
                schedule: true,
                resilience: true,
                ..Supports::default()
            },
        )?;
        let chunks = self.clauses.chunks()?;
        let resilient = self.clauses.set.resilience == ResiliencePolicy::Redistribute;
        let mut ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let c = ChunkCtx::new(chunk.start, chunk.len);
            let device = chunk.device.expect("static chunks are assigned");
            if resilient && scope.is_device_lost(device) {
                continue;
            }
            let mut b = TargetEnterData::device(device)
                .nowait()
                .label(format!("enter-spread(dev{device})[{}]", chunk.index));
            for m in self.clauses.map_list() {
                b = b.map(m.at(c));
            }
            for d in &self.dep_ins {
                b = b.depend_in(d.at(c));
            }
            for d in &self.dep_outs {
                b = b.depend_out(d.at(c));
            }
            let id = b.launch(scope)?;
            if resilient {
                guard_chunk_task(scope, id, device);
            }
            ids.push(id);
        }
        if !self.nowait {
            for &id in &ids {
                scope.drain_task(id)?;
            }
        }
        Ok(ids)
    }
}

/// `#pragma omp target exit data spread`.
#[derive(Clone)]
pub struct TargetExitDataSpread {
    clauses: SpreadClauses,
    nowait: bool,
    dep_ins: Vec<SpreadDep>,
    dep_outs: Vec<SpreadDep>,
}

impl SpreadClausesExt for TargetExitDataSpread {
    fn clause_set_mut(&mut self) -> &mut ClauseSet {
        &mut self.clauses.set
    }
}

impl TargetExitDataSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetExitDataSpread {
            clauses: SpreadClauses::devices(devices),
            nowait: false,
            dep_ins: Vec::new(),
            dep_outs: Vec::new(),
        }
    }

    /// `range(start:len)`.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.clauses = self.clauses.range(start, len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.clauses = self.clauses.chunk_size(c);
        self
    }

    /// Add a spread map item (`from`/`release`/`delete`).
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.clauses = self.clauses.map(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.clauses = self.clauses.maps(items);
        self
    }

    /// `nowait`.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// **Extension** (paper §IX): `depend(in: a[expr])` per chunk —
    /// typically "wait for the kernel that produced this chunk".
    pub fn depend_in(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_ins.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// **Extension**: `depend(out: a[expr])` per chunk.
    pub fn depend_out(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_outs.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// Issue the directive: one exit-data task per chunk.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<Vec<TaskId>, RtError> {
        self.clauses.set.reject_unsupported(
            "target exit data spread",
            Supports {
                schedule: true,
                resilience: true,
                ..Supports::default()
            },
        )?;
        let chunks = self.clauses.chunks()?;
        let resilient = self.clauses.set.resilience == ResiliencePolicy::Redistribute;
        let mut ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let c = ChunkCtx::new(chunk.start, chunk.len);
            let device = chunk.device.expect("static chunks are assigned");
            if resilient && scope.is_device_lost(device) {
                continue;
            }
            let mut b = TargetExitData::device(device)
                .nowait()
                .label(format!("exit-spread(dev{device})[{}]", chunk.index));
            for m in self.clauses.map_list() {
                b = b.map(m.at(c));
            }
            for d in &self.dep_ins {
                b = b.depend_in(d.at(c));
            }
            for d in &self.dep_outs {
                b = b.depend_out(d.at(c));
            }
            let id = b.launch(scope)?;
            if resilient {
                guard_chunk_task(scope, id, device);
            }
            ids.push(id);
        }
        if !self.nowait {
            for &id in &ids {
                scope.drain_task(id)?;
            }
        }
        Ok(ids)
    }
}

/// `#pragma omp target update spread`.
#[derive(Clone)]
pub struct TargetUpdateSpread {
    clauses: SpreadClauses,
    to_items: Vec<(HostArray, SectionOf)>,
    from_items: Vec<(HostArray, SectionOf)>,
    nowait: bool,
    exchange: ExchangeMode,
}

impl SpreadClausesExt for TargetUpdateSpread {
    fn clause_set_mut(&mut self) -> &mut ClauseSet {
        &mut self.clauses.set
    }
}

impl TargetUpdateSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetUpdateSpread {
            clauses: SpreadClauses::devices(devices),
            to_items: Vec::new(),
            from_items: Vec::new(),
            nowait: false,
            // The spread-level default: a `to(…)` section already valid
            // on a sibling device goes device-to-device, host path
            // otherwise — the paper's host round-trip is recovered with
            // `exchange(host)`.
            exchange: ExchangeMode::Auto,
        }
    }

    /// `exchange(peer|host|auto)` — how `to(…)` refreshes reach the
    /// devices. `auto` (the default) pulls from a sibling device that
    /// already holds the bytes bit-identical to the host image and
    /// falls back to the host path otherwise; `peer` demands the direct
    /// route and fails with `InvalidDirective` where it cannot hold.
    pub fn exchange(mut self, mode: ExchangeMode) -> Self {
        self.exchange = mode;
        self
    }

    /// `range(start:len)`.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.clauses = self.clauses.range(start, len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.clauses = self.clauses.chunk_size(c);
        self
    }

    /// `to(a[expr])` — refresh device images from the host.
    pub fn to(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.to_items.push((array, std::sync::Arc::new(expr)));
        self
    }

    /// `from(a[expr])` — refresh the host from device images.
    pub fn from(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.from_items.push((array, std::sync::Arc::new(expr)));
        self
    }

    /// `nowait`.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// Issue the directive: one update task per chunk.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<Vec<TaskId>, RtError> {
        self.clauses.set.reject_unsupported(
            "target update spread",
            Supports {
                schedule: true,
                resilience: true,
                integrity: true,
                ..Supports::default()
            },
        )?;
        let resilience = self.clauses.set.resilience;
        let integrity = self.clauses.set.integrity;
        if self.exchange == ExchangeMode::Peer && resilience == ResiliencePolicy::Redistribute {
            // `peer` forbids the host fallback that redistribution's
            // "replay from the staged host image" contract relies on.
            return Err(RtError::InvalidDirective(
                "exchange(peer) cannot compose with spread_resilience(redistribute): \
                 a lost peer leaves no permitted route"
                    .into(),
            ));
        }
        if integrity == IntegrityMode::Heal && !self.from_items.is_empty() {
            // A `from(…)` drain makes the host the destination; healing
            // re-reads the very device bytes that failed verification.
            return Err(RtError::InvalidDirective(
                "target update spread: spread_integrity(heal) cannot compose with from(…) \
                 items (the host image is being overwritten — nothing unharmed to heal \
                 from); use spread_integrity(verify)"
                    .into(),
            ));
        }
        let chunks = self.clauses.chunks()?;
        let resilient = resilience == ResiliencePolicy::Redistribute;
        let mut ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let c = ChunkCtx::new(chunk.start, chunk.len);
            let device = chunk.device.expect("static chunks are assigned");
            if resilient && scope.is_device_lost(device) {
                continue;
            }
            let mut b = TargetUpdate::device(device)
                .nowait()
                .exchange(self.exchange)
                .integrity(integrity);
            for (a, expr) in &self.to_items {
                b = b.to(Section::from_range(a.id(), expr(c)));
            }
            for (a, expr) in &self.from_items {
                b = b.from(Section::from_range(a.id(), expr(c)));
            }
            let id = b.launch(scope)?;
            if resilient {
                guard_chunk_task(scope, id, device);
            }
            ids.push(id);
        }
        if !self.nowait {
            for &id in &ids {
                scope.drain_task(id)?;
            }
        }
        Ok(ids)
    }
}

/// `#pragma omp target data spread { … }` — the structured variant:
/// distributed mappings valid for the region's duration. As in the
/// paper, there is no `nowait` and no `depend` (§III-B.3).
#[derive(Clone)]
pub struct TargetDataSpread {
    clauses: SpreadClauses,
}

impl SpreadClausesExt for TargetDataSpread {
    fn clause_set_mut(&mut self) -> &mut ClauseSet {
        &mut self.clauses.set
    }
}

impl TargetDataSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetDataSpread {
            clauses: SpreadClauses::devices(devices),
        }
    }

    /// `range(start:len)`.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.clauses = self.clauses.range(start, len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.clauses = self.clauses.chunk_size(c);
        self
    }

    /// Add a spread map item.
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.clauses = self.clauses.map(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.clauses = self.clauses.maps(items);
        self
    }

    /// Run the structured region: blocking distributed enter, body,
    /// blocking distributed exit.
    pub fn region<R>(
        self,
        scope: &mut Scope<'_>,
        f: impl FnOnce(&mut Scope<'_>) -> Result<R, RtError>,
    ) -> Result<R, RtError> {
        self.clauses.set.reject_unsupported(
            "target data spread",
            Supports {
                schedule: true,
                resilience: true,
                ..Supports::default()
            },
        )?;
        let enter_maps: Vec<SpreadMap> = self
            .clauses
            .map_list()
            .iter()
            .map(|m| SpreadMap {
                map_type: match m.map_type {
                    MapType::From => MapType::Alloc,
                    t => t,
                },
                array: m.array,
                expr: std::sync::Arc::clone(&m.expr),
            })
            .collect();
        let exit_maps: Vec<SpreadMap> = self
            .clauses
            .map_list()
            .iter()
            .map(|m| SpreadMap {
                map_type: match m.map_type {
                    MapType::From | MapType::ToFrom => MapType::From,
                    MapType::To | MapType::Alloc => MapType::Release,
                    t => t,
                },
                array: m.array,
                expr: std::sync::Arc::clone(&m.expr),
            })
            .collect();
        // The structured region forwards its clause set (schedule and
        // resilience) to both halves, keeping placement coherent.
        let enter_clauses = SpreadClauses {
            maps: enter_maps,
            ..self.clauses.clone()
        };
        let exit_clauses = SpreadClauses {
            maps: exit_maps,
            ..self.clauses
        };
        TargetEnterDataSpread {
            clauses: enter_clauses,
            nowait: false,
            dep_ins: Vec::new(),
            dep_outs: Vec::new(),
        }
        .launch(scope)?;
        let r = f(scope)?;
        TargetExitDataSpread {
            clauses: exit_clauses,
            nowait: false,
            dep_ins: Vec::new(),
            dep_outs: Vec::new(),
        }
        .launch(scope)?;
        Ok(r)
    }
}

/// Evaluate a [`MapClause`] list for a chunk (testing helper).
pub fn evaluate_maps(maps: &[SpreadMap], c: ChunkCtx) -> Vec<MapClause> {
    maps.iter().map(|m| m.at(c)).collect()
}
