//! The spread data-management directives: `target data spread`,
//! `target enter/exit data spread`, `target update spread`
//! (paper §III-B.3–5).
//!
//! All of them distribute mappings with a *static round-robin* policy
//! driven by the `range(start:len)` and `chunk_size(c)` clauses — the
//! paper deliberately omits a `spread_schedule` clause here. The
//! unstructured directives support `nowait`; the `depend` clause on them
//! is this reproduction's implementation of the paper's future work
//! (§IX, Listing 13) and is disabled unless explicitly used.

use std::ops::Range;

use spread_rt::directives::{TargetEnterData, TargetExitData, TargetUpdate};
use spread_rt::map::MapType;
use spread_rt::{HostArray, MapClause, RtError, Scope, Section, TaskId};

use crate::chunk::ChunkCtx;
use crate::schedule::{distribute, Chunk, SpreadSchedule};
use crate::spread_map::{SectionOf, SpreadMap};
use crate::target_spread::SpreadDep;

fn spread_chunks(
    devices: &[u32],
    range: Option<Range<usize>>,
    chunk_size: Option<usize>,
    schedule: Option<&SpreadSchedule>,
) -> Result<Vec<Chunk>, RtError> {
    if devices.is_empty() {
        return Err(RtError::InvalidDirective(
            "devices(…) must not be empty".into(),
        ));
    }
    let range =
        range.ok_or_else(|| RtError::InvalidDirective("range clause is required".into()))?;
    // §IX: "Once [more schedules] are implemented, we will integrate them
    // into the syntax of the target spread data transfer directives via
    // the spread_schedule clause." — an explicit static schedule may
    // replace the default `chunk_size` round-robin. Dynamic schedules
    // cannot place data (the chunk→device assignment must be known when
    // the mapping is created).
    if let Some(s) = schedule {
        if matches!(s, SpreadSchedule::Dynamic { .. }) {
            return Err(RtError::InvalidDirective(
                "data spread directives require a static distribution                  (dynamic placement is undecidable at mapping time)"
                    .into(),
            ));
        }
        return Ok(distribute(range, devices, s));
    }
    let chunk = chunk_size
        .ok_or_else(|| RtError::InvalidDirective("chunk_size clause is required".into()))?;
    if chunk == 0 {
        return Err(RtError::InvalidDirective("chunk_size must be >= 1".into()));
    }
    Ok(distribute(
        range,
        devices,
        &SpreadSchedule::Static { chunk },
    ))
}

/// `#pragma omp target enter data spread`.
#[derive(Clone)]
pub struct TargetEnterDataSpread {
    devices: Vec<u32>,
    range: Option<Range<usize>>,
    chunk_size: Option<usize>,
    schedule: Option<SpreadSchedule>,
    maps: Vec<SpreadMap>,
    nowait: bool,
    dep_ins: Vec<SpreadDep>,
    dep_outs: Vec<SpreadDep>,
}

impl TargetEnterDataSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetEnterDataSpread {
            devices: devices.into_iter().collect(),
            range: None,
            chunk_size: None,
            schedule: None,
            maps: Vec::new(),
            nowait: false,
            dep_ins: Vec::new(),
            dep_outs: Vec::new(),
        }
    }

    /// **Extension** (§IX): an explicit static spread schedule replacing
    /// the default `chunk_size` round-robin — e.g. weighted chunks for
    /// heterogeneous devices. Must match the executable directive's
    /// schedule for coherent placement.
    pub fn spread_schedule(mut self, s: SpreadSchedule) -> Self {
        self.schedule = Some(s);
        self
    }

    /// `range(start:len)` — the iteration-space range being distributed.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.range = Some(start..start + len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.chunk_size = Some(c);
        self
    }

    /// Add a spread map item (`to`/`alloc`).
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.maps.extend(items);
        self
    }

    /// `nowait` — asynchronous transfers.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// **Extension** (paper §IX, Listing 13): `depend(out: a[expr])` per
    /// chunk, letting kernels synchronize with data transfers at chunk
    /// level instead of through a `taskgroup` barrier.
    pub fn depend_out(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_outs.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// **Extension**: `depend(in: a[expr])` per chunk.
    pub fn depend_in(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_ins.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// Issue the directive: one enter-data task per chunk.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<Vec<TaskId>, RtError> {
        let chunks = spread_chunks(
            &self.devices,
            self.range.clone(),
            self.chunk_size,
            self.schedule.as_ref(),
        )?;
        let mut ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let c = ChunkCtx::new(chunk.start, chunk.len);
            let device = chunk.device.expect("static chunks are assigned");
            let mut b = TargetEnterData::device(device)
                .nowait()
                .label(format!("enter-spread(dev{device})[{}]", chunk.index));
            for m in &self.maps {
                b = b.map(m.at(c));
            }
            for d in &self.dep_ins {
                b = b.depend_in(d.at(c));
            }
            for d in &self.dep_outs {
                b = b.depend_out(d.at(c));
            }
            ids.push(b.launch(scope)?);
        }
        if !self.nowait {
            for &id in &ids {
                scope.drain_task(id)?;
            }
        }
        Ok(ids)
    }
}

/// `#pragma omp target exit data spread`.
#[derive(Clone)]
pub struct TargetExitDataSpread {
    devices: Vec<u32>,
    range: Option<Range<usize>>,
    chunk_size: Option<usize>,
    schedule: Option<SpreadSchedule>,
    maps: Vec<SpreadMap>,
    nowait: bool,
    dep_ins: Vec<SpreadDep>,
    dep_outs: Vec<SpreadDep>,
}

impl TargetExitDataSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetExitDataSpread {
            devices: devices.into_iter().collect(),
            range: None,
            chunk_size: None,
            schedule: None,
            maps: Vec::new(),
            nowait: false,
            dep_ins: Vec::new(),
            dep_outs: Vec::new(),
        }
    }

    /// **Extension** (§IX): an explicit static spread schedule replacing
    /// the default `chunk_size` round-robin — e.g. weighted chunks for
    /// heterogeneous devices. Must match the executable directive's
    /// schedule for coherent placement.
    pub fn spread_schedule(mut self, s: SpreadSchedule) -> Self {
        self.schedule = Some(s);
        self
    }

    /// `range(start:len)`.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.range = Some(start..start + len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.chunk_size = Some(c);
        self
    }

    /// Add a spread map item (`from`/`release`/`delete`).
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.maps.extend(items);
        self
    }

    /// `nowait`.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// **Extension** (paper §IX): `depend(in: a[expr])` per chunk —
    /// typically "wait for the kernel that produced this chunk".
    pub fn depend_in(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_ins.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// **Extension**: `depend(out: a[expr])` per chunk.
    pub fn depend_out(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.dep_outs.push(SpreadDep {
            array,
            expr: std::sync::Arc::new(expr),
        });
        self
    }

    /// Issue the directive: one exit-data task per chunk.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<Vec<TaskId>, RtError> {
        let chunks = spread_chunks(
            &self.devices,
            self.range.clone(),
            self.chunk_size,
            self.schedule.as_ref(),
        )?;
        let mut ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let c = ChunkCtx::new(chunk.start, chunk.len);
            let device = chunk.device.expect("static chunks are assigned");
            let mut b = TargetExitData::device(device)
                .nowait()
                .label(format!("exit-spread(dev{device})[{}]", chunk.index));
            for m in &self.maps {
                b = b.map(m.at(c));
            }
            for d in &self.dep_ins {
                b = b.depend_in(d.at(c));
            }
            for d in &self.dep_outs {
                b = b.depend_out(d.at(c));
            }
            ids.push(b.launch(scope)?);
        }
        if !self.nowait {
            for &id in &ids {
                scope.drain_task(id)?;
            }
        }
        Ok(ids)
    }
}

/// `#pragma omp target update spread`.
#[derive(Clone)]
pub struct TargetUpdateSpread {
    devices: Vec<u32>,
    range: Option<Range<usize>>,
    chunk_size: Option<usize>,
    to_items: Vec<(HostArray, SectionOf)>,
    from_items: Vec<(HostArray, SectionOf)>,
    nowait: bool,
}

impl TargetUpdateSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetUpdateSpread {
            devices: devices.into_iter().collect(),
            range: None,
            chunk_size: None,
            to_items: Vec::new(),
            from_items: Vec::new(),
            nowait: false,
        }
    }

    /// `range(start:len)`.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.range = Some(start..start + len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.chunk_size = Some(c);
        self
    }

    /// `to(a[expr])` — refresh device images from the host.
    pub fn to(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.to_items.push((array, std::sync::Arc::new(expr)));
        self
    }

    /// `from(a[expr])` — refresh the host from device images.
    pub fn from(
        mut self,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        self.from_items.push((array, std::sync::Arc::new(expr)));
        self
    }

    /// `nowait`.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// Issue the directive: one update task per chunk.
    pub fn launch(self, scope: &mut Scope<'_>) -> Result<Vec<TaskId>, RtError> {
        let chunks = spread_chunks(&self.devices, self.range.clone(), self.chunk_size, None)?;
        let mut ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let c = ChunkCtx::new(chunk.start, chunk.len);
            let device = chunk.device.expect("static chunks are assigned");
            let mut b = TargetUpdate::device(device).nowait();
            for (a, expr) in &self.to_items {
                b = b.to(Section::from_range(a.id(), expr(c)));
            }
            for (a, expr) in &self.from_items {
                b = b.from(Section::from_range(a.id(), expr(c)));
            }
            ids.push(b.launch(scope)?);
        }
        if !self.nowait {
            for &id in &ids {
                scope.drain_task(id)?;
            }
        }
        Ok(ids)
    }
}

/// `#pragma omp target data spread { … }` — the structured variant:
/// distributed mappings valid for the region's duration. As in the
/// paper, there is no `nowait` and no `depend` (§III-B.3).
#[derive(Clone)]
pub struct TargetDataSpread {
    devices: Vec<u32>,
    range: Option<Range<usize>>,
    chunk_size: Option<usize>,
    maps: Vec<SpreadMap>,
}

impl TargetDataSpread {
    /// Start building with the `devices(…)` clause.
    pub fn devices(devices: impl IntoIterator<Item = u32>) -> Self {
        TargetDataSpread {
            devices: devices.into_iter().collect(),
            range: None,
            chunk_size: None,
            maps: Vec::new(),
        }
    }

    /// `range(start:len)`.
    pub fn range(mut self, start: usize, len: usize) -> Self {
        self.range = Some(start..start + len);
        self
    }

    /// `chunk_size(c)`.
    pub fn chunk_size(mut self, c: usize) -> Self {
        self.chunk_size = Some(c);
        self
    }

    /// Add a spread map item.
    pub fn map(mut self, m: SpreadMap) -> Self {
        self.maps.push(m);
        self
    }

    /// Add several spread map items.
    pub fn maps(mut self, items: impl IntoIterator<Item = SpreadMap>) -> Self {
        self.maps.extend(items);
        self
    }

    /// Run the structured region: blocking distributed enter, body,
    /// blocking distributed exit.
    pub fn region<R>(
        self,
        scope: &mut Scope<'_>,
        f: impl FnOnce(&mut Scope<'_>) -> Result<R, RtError>,
    ) -> Result<R, RtError> {
        let enter_maps: Vec<SpreadMap> = self
            .maps
            .iter()
            .map(|m| SpreadMap {
                map_type: match m.map_type {
                    MapType::From => MapType::Alloc,
                    t => t,
                },
                array: m.array,
                expr: std::sync::Arc::clone(&m.expr),
            })
            .collect();
        let exit_maps: Vec<SpreadMap> = self
            .maps
            .iter()
            .map(|m| SpreadMap {
                map_type: match m.map_type {
                    MapType::From | MapType::ToFrom => MapType::From,
                    MapType::To | MapType::Alloc => MapType::Release,
                    t => t,
                },
                array: m.array,
                expr: std::sync::Arc::clone(&m.expr),
            })
            .collect();
        let range = self.range.clone();
        let chunk_size = self.chunk_size;
        {
            let mut b = TargetEnterDataSpread::devices(self.devices.clone());
            b.range = range.clone();
            b.chunk_size = chunk_size;
            b.schedule = None;
            b.maps = enter_maps;
            b.launch(scope)?;
        }
        let r = f(scope)?;
        {
            let mut b = TargetExitDataSpread::devices(self.devices);
            b.range = range;
            b.chunk_size = chunk_size;
            b.schedule = None;
            b.maps = exit_maps;
            b.launch(scope)?;
        }
        Ok(r)
    }
}

/// Evaluate a [`MapClause`] list for a chunk (testing helper).
pub fn evaluate_maps(maps: &[SpreadMap], c: ChunkCtx) -> Vec<MapClause> {
    maps.iter().map(|m| m.at(c)).collect()
}
