//! The spread placeholders: `omp_spread_start` and `omp_spread_size`.
//!
//! Inside the `map`/`depend`/`to`/`from` clauses of a spread directive,
//! the paper introduces two special identifiers that resolve per chunk at
//! execution time. Here they are the two fields of a [`ChunkCtx`] handed
//! to the clause's section-expression closure:
//!
//! ```text
//! map(to: A[omp_spread_start-1 : omp_spread_size+2])   // paper
//! .map(spread_to(a, |c| c.start() - 1 .. c.end() + 1)) // this crate
//! ```

use std::ops::Range;

/// The per-chunk evaluation context of the spread placeholders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkCtx {
    start: usize,
    size: usize,
}

impl ChunkCtx {
    /// Build from a chunk's start and size.
    pub fn new(start: usize, size: usize) -> Self {
        ChunkCtx { start, size }
    }

    /// `omp_spread_start` — first iteration of the chunk.
    pub fn start(&self) -> usize {
        self.start
    }

    /// `omp_spread_size` — number of iterations in the chunk.
    pub fn size(&self) -> usize {
        self.size
    }

    /// One past the last iteration (`start + size`).
    pub fn end(&self) -> usize {
        self.start + self.size
    }

    /// The chunk as a range — the common `map(from: B[start:size])`.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end()
    }

    /// The chunk extended by `before`/`after` halo elements (saturating
    /// at zero on the left) — the paper's halo arithmetic.
    pub fn halo(&self, before: usize, after: usize) -> Range<usize> {
        self.start.saturating_sub(before)..self.end() + after
    }

    /// Scale the chunk into another index space (e.g. plane index →
    /// element index with `factor = n²`).
    pub fn scaled(&self, factor: usize) -> ChunkCtx {
        ChunkCtx {
            start: self.start * factor,
            size: self.size * factor,
        }
    }
}

impl From<Range<usize>> for ChunkCtx {
    fn from(r: Range<usize>) -> Self {
        ChunkCtx::new(r.start, r.end.saturating_sub(r.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholders() {
        let c = ChunkCtx::new(5, 4);
        assert_eq!(c.start(), 5);
        assert_eq!(c.size(), 4);
        assert_eq!(c.end(), 9);
        assert_eq!(c.range(), 5..9);
    }

    #[test]
    fn listing3_halo_arithmetic() {
        // map(to: A[omp_spread_start-1 : omp_spread_size+2]) is the range
        // [start-1, start+size+1).
        let c = ChunkCtx::new(5, 4);
        assert_eq!(c.halo(1, 1), 4..10);
        assert_eq!(c.halo(1, 1).len(), c.size() + 2);
    }

    #[test]
    fn halo_saturates_at_zero() {
        let c = ChunkCtx::new(0, 4);
        assert_eq!(c.halo(1, 1), 0..5);
    }

    #[test]
    fn scaling_to_element_space() {
        // Plane chunk [2, 5) with n² = 100 elements per plane.
        let c = ChunkCtx::new(2, 3);
        let e = c.scaled(100);
        assert_eq!(e.range(), 200..500);
    }

    #[test]
    fn from_range() {
        let c: ChunkCtx = (7..12).into();
        assert_eq!(c, ChunkCtx::new(7, 5));
        let empty: ChunkCtx = (7..7).into();
        assert_eq!(empty.size(), 0);
    }
}
