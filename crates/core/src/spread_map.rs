//! Spread map clauses: map items whose sections are expressions over the
//! spread placeholders.

use std::ops::Range;
use std::sync::Arc;

use spread_rt::map::MapType;
use spread_rt::{HostArray, MapClause};

use crate::chunk::ChunkCtx;

/// A section expression over the spread placeholders.
pub type SectionOf = Arc<dyn Fn(ChunkCtx) -> Range<usize> + Send + Sync>;

/// One `map(type: array[expr(omp_spread_start, omp_spread_size)])` item.
#[derive(Clone)]
pub struct SpreadMap {
    /// The map type.
    pub map_type: MapType,
    /// The mapped array.
    pub array: HostArray,
    /// Section expression evaluated per chunk.
    pub expr: SectionOf,
}

impl SpreadMap {
    /// Build a map item from a closure over the chunk context.
    pub fn new(
        map_type: MapType,
        array: HostArray,
        expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
    ) -> Self {
        SpreadMap {
            map_type,
            array,
            expr: Arc::new(expr),
        }
    }

    /// Evaluate into a concrete [`MapClause`] for one chunk.
    pub fn at(&self, chunk: ChunkCtx) -> MapClause {
        MapClause::new(self.map_type, self.array, (self.expr)(chunk))
    }
}

/// `map(to: a[expr])`.
pub fn spread_to(
    array: HostArray,
    expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
) -> SpreadMap {
    SpreadMap::new(MapType::To, array, expr)
}

/// `map(from: a[expr])`.
pub fn spread_from(
    array: HostArray,
    expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
) -> SpreadMap {
    SpreadMap::new(MapType::From, array, expr)
}

/// `map(tofrom: a[expr])`.
pub fn spread_tofrom(
    array: HostArray,
    expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
) -> SpreadMap {
    SpreadMap::new(MapType::ToFrom, array, expr)
}

/// `map(alloc: a[expr])`.
pub fn spread_alloc(
    array: HostArray,
    expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
) -> SpreadMap {
    SpreadMap::new(MapType::Alloc, array, expr)
}

/// `map(release: a[expr])` (exit-data only).
pub fn spread_release(
    array: HostArray,
    expr: impl Fn(ChunkCtx) -> Range<usize> + Send + Sync + 'static,
) -> SpreadMap {
    SpreadMap::new(MapType::Release, array, expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_devices::Topology;
    use spread_rt::map::to;
    use spread_rt::{Runtime, RuntimeConfig};

    fn any_array() -> HostArray {
        let mut rt = Runtime::new(RuntimeConfig::new(Topology::ctepower(1)).with_trace(false));
        rt.host_array("A", 100)
    }

    #[test]
    fn listing3_maps_evaluate_per_chunk() {
        let a = any_array();
        // map(to: A[omp_spread_start-1 : omp_spread_size+2])
        let m = spread_to(a, |c| c.start() - 1..c.end() + 1);
        let clause = m.at(ChunkCtx::new(5, 4));
        assert_eq!(clause, to(a, 4..10));
        let clause2 = m.at(ChunkCtx::new(9, 4));
        assert_eq!(clause2, to(a, 8..14));
    }

    #[test]
    fn identity_map() {
        let a = any_array();
        // map(from: B[omp_spread_start : omp_spread_size])
        let m = spread_from(a, |c| c.range());
        let clause = m.at(ChunkCtx::new(0, 7));
        assert_eq!(clause.section, a.section(0..7));
        assert_eq!(clause.map_type, MapType::From);
    }

    #[test]
    fn all_constructors() {
        let a = any_array();
        assert_eq!(spread_to(a, |c| c.range()).map_type, MapType::To);
        assert_eq!(spread_from(a, |c| c.range()).map_type, MapType::From);
        assert_eq!(spread_tofrom(a, |c| c.range()).map_type, MapType::ToFrom);
        assert_eq!(spread_alloc(a, |c| c.range()).map_type, MapType::Alloc);
        assert_eq!(spread_release(a, |c| c.range()).map_type, MapType::Release);
    }
}
