//! The `spread_resilience(…)` clause: recovery from permanent device
//! loss inside a `target spread` construct.
//!
//! The paper's directives assume healthy devices; this module is the
//! robustness extension the fault-injection campaign exercises. A
//! resilient spread registers a recovery handler for every per-chunk
//! construct. When a device is permanently lost mid-run, each of its
//! in-flight chunks is rebuilt as a fresh enter→kernel→exit construct
//! on a surviving device (round-robin over the `devices(…)` list), and
//! the original construct's phases are neutralized so the runtime's
//! dependence cascade still releases downstream work in program order.
//!
//! Replacement constructs serialize after every construct already
//! placed on their survivor. That re-establishes the §V-B gap
//! condition by ordering rather than by spatial disjointness: the
//! survivor's own mappings are gone (exit done) before the replacement
//! re-maps sections that may overlap or extend them.
//!
//! Recovery routes around dead hardware, never around bugs: any task
//! failure other than "this construct's device is lost" still poisons
//! the runtime fail-stop.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use spread_rt::{ConstructIds, KernelSpec, RtError, Scope, TaskId};
use spread_trace::{Lane, SpanKind};

use crate::chunk::ChunkCtx;
use crate::target_spread::TargetSpread;

/// What a `target spread` construct does when one of its devices is
/// permanently lost mid-run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResiliencePolicy {
    /// Default: the loss poisons the runtime; the blocking drain (or
    /// the enclosing taskgroup) reports [`RtError::DeviceLost`].
    #[default]
    FailStop,
    /// Rebuild the lost device's chunks on the surviving devices of the
    /// `devices(…)` list, round-robin. The construct completes with
    /// results bit-identical to a fault-free run; only virtual time and
    /// the trace differ. Requires a static schedule.
    Redistribute,
}

/// Shared recovery state for one resilient spread launch.
pub(crate) struct Coordinator {
    spread: Rc<TargetSpread>,
    kernel: KernelSpec,
    /// Round-robin cursor over the device list for survivor picks.
    rr: Cell<usize>,
    /// Per device: exit ids of every construct placed on it (original
    /// or replacement), in placement order. Replacements serialize
    /// after all of them.
    exits: RefCell<HashMap<u32, Vec<TaskId>>>,
}

impl Coordinator {
    pub(crate) fn new(spread: Rc<TargetSpread>, kernel: KernelSpec) -> Rc<Self> {
        Rc::new(Coordinator {
            spread,
            kernel,
            rr: Cell::new(0),
            exits: RefCell::new(HashMap::new()),
        })
    }

    /// Next live device in list order, or `None` if the whole
    /// `devices(…)` list is dead.
    fn pick_survivor(&self, s: &Scope<'_>) -> Option<u32> {
        let devices = self.spread.device_list();
        for _ in 0..devices.len() {
            let i = self.rr.get() % devices.len();
            self.rr.set(i + 1);
            let d = devices[i];
            if !s.is_device_lost(d) {
                return Some(d);
            }
        }
        None
    }
}

/// Put a per-chunk construct under the coordinator's protection:
/// remember its exit for serialization and register the recovery
/// handler for all three phases.
pub(crate) fn guard(
    scope: &mut Scope<'_>,
    coord: &Rc<Coordinator>,
    device: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
) {
    coord
        .exits
        .borrow_mut()
        .entry(device)
        .or_default()
        .push(ids.exit);
    let coord = Rc::clone(coord);
    scope.on_task_fault(&ids.all(), device, move |s, faulted, err| {
        recover(s, &coord, device, start, len, ids, faulted, err);
    });
}

/// The recovery handler: neutralize the dead construct, rebuild the
/// chunk on a survivor, and chain the original construct's completion
/// behind the replacement's exit.
#[allow(clippy::too_many_arguments)]
fn recover(
    s: &mut Scope<'_>,
    coord: &Rc<Coordinator>,
    dead: u32,
    start: usize,
    len: usize,
    ids: ConstructIds,
    faulted: TaskId,
    err: RtError,
) {
    let Some(survivor) = coord.pick_survivor(s) else {
        // The whole devices(…) list is dead — nowhere left to route.
        s.fail(err);
        return;
    };
    // The faulted task's operation was aborted and the construct's
    // remaining phases must never touch the dead device. Erasing the
    // footprints keeps the race detector quiet about the replacement
    // covering the same sections.
    s.forgive_task_footprints(faulted);
    for id in ids.all() {
        if id != faulted {
            s.neutralize_task(id);
        }
    }
    let now = s.now();
    s.trace().record(
        Lane::compute(survivor),
        SpanKind::Redistribute,
        format!("redo [{start}..{}) dev{dead}->dev{survivor}", start + len),
        now,
        now,
        0,
    );
    // Rebuild the construct on the survivor, serialized after every
    // construct already placed there (gap condition by ordering).
    let preds = coord
        .exits
        .borrow()
        .get(&survivor)
        .cloned()
        .unwrap_or_default();
    let c = ChunkCtx::new(start, len);
    let t = coord.spread.build_target(survivor, c).after(preds);
    match t.parallel_for_phases(s, start..start + len, coord.kernel.clone()) {
        Ok(redo) => {
            // Survivors can die too: the replacement is itself guarded.
            guard(s, coord, survivor, start, len, redo);
            // Only once the replacement's exit has landed the chunk's
            // results on the host may the original construct complete
            // and release its downstream dependences.
            s.task_chained(
                format!("spread-redo-done(dev{survivor})"),
                vec![redo.exit],
                None,
                move |s| s.force_complete(faulted),
            );
        }
        Err(e) => s.fail(e),
    }
}
