//! Cross-device reductions — the paper's §IX extension ("the support for
//! reduction clauses among devices would facilitate even more the
//! implementation of complex algorithms").
//!
//! The baseline Somier implementation performs the centers reduction
//! *manually* (the paper: "We currently do not support a reduction
//! clause yet, so we implemented a manual reduction for this kernel").
//! [`ReduceOp`] plus [`crate::TargetSpread::parallel_for_reduce`] provide
//! the clause: the kernel writes a per-iteration partial; the runtime
//! maps the partials back per chunk and folds them on the host.

/// A reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// `reduction(+: …)`
    Sum,
    /// `reduction(max: …)`
    Max,
    /// `reduction(min: …)`
    Min,
}

impl ReduceOp {
    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// Combine two partial values.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Max.identity(), f64::NEG_INFINITY);
        assert_eq!(ReduceOp::Min.identity(), f64::INFINITY);
    }

    #[test]
    fn combine_folds() {
        let xs = [3.0, -1.0, 7.0, 2.0];
        let fold = |op: ReduceOp| xs.iter().fold(op.identity(), |a, &b| op.combine(a, b));
        assert_eq!(fold(ReduceOp::Sum), 11.0);
        assert_eq!(fold(ReduceOp::Max), 7.0);
        assert_eq!(fold(ReduceOp::Min), -1.0);
    }
}
