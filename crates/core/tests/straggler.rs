//! Fault-injected end-to-end tests of the `spread_straggler(…)` clause:
//! a `target spread` construct rescuing a piece stuck on a device with
//! a planned compute slowdown, with deterministic first-commit-wins.

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_rt::{DegradationKind, Runtime};
use spread_sim::FaultPlan;
use spread_trace::{SimTime, SpanKind};

fn runtime(n_devices: usize, plan: Option<FaultPlan>) -> Runtime {
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.5e9,
    );
    let mut cfg = RuntimeConfig::new(topo).with_team_threads(2);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    Runtime::new(cfg)
}

/// `B[i] = 3*A[i] + 1` spread over all devices in 128-iteration chunks.
/// Serial lanes + a 2 µs/iteration cost make the kernel dominate the
/// construct, so a compute slowdown really shows up as straggling.
fn run_scale(
    rt: &mut Runtime,
    devices: Vec<u32>,
    policy: StragglerPolicy,
    n: usize,
) -> Result<Vec<f64>, RtError> {
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetSpread::devices(devices.clone())
            .with_schedule(SpreadSchedule::static_chunk(128))
            .with_straggler(policy)
            .num_teams(1)
            .num_threads(1)
            .map(spread_to(a, |c| c.range()))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("scale", 2000.0, |chunk, v| {
                    for i in chunk {
                        v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })?;
    Ok(rt.snapshot_host(b))
}

/// An 8× compute slowdown on device 1 covering the whole run.
fn slow_plan() -> FaultPlan {
    FaultPlan::new(5).slow_compute(1, SimTime::ZERO, SimTime::MAX, 8.0)
}

fn check_rescued(policy: StragglerPolicy, expect_stolen: bool) {
    let n = 512;
    let mut clean = runtime(4, None);
    let expect = run_scale(&mut clean, vec![0, 1, 2, 3], StragglerPolicy::Wait, n).unwrap();

    let mut rt = runtime(4, Some(slow_plan()));
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], policy, n).unwrap();
    assert_eq!(out, expect, "rescued results must be bit-identical");
    assert!(rt.races().is_empty());

    let rescues = rt.rescues();
    assert!(!rescues.is_empty(), "the slow piece must be rescued");
    for r in &rescues {
        assert_eq!(r.from, 1, "only the slow device straggles");
        assert_ne!(r.to, 1, "never rescue onto the straggler");
        assert_eq!(r.commits, 1, "exactly one commit per rescued piece");
        assert_eq!(
            r.winner,
            Some(1),
            "an 8x straggler always loses the commit race"
        );
        assert_eq!(r.stolen, expect_stolen);
    }
    // Each rescue is mirrored as a degradation event and a trace span.
    let deg: Vec<_> = rt
        .degradations()
        .into_iter()
        .filter(|e| e.kind == DegradationKind::StragglerRescued)
        .collect();
    assert_eq!(deg.len(), rescues.len());
    let tl = rt.timeline();
    let marks = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Rescue)
        .count();
    assert_eq!(marks, rescues.len());
    // Nothing leaks: every device's memory is clean at the end.
    for d in 0..4 {
        assert_eq!(rt.device_mem_used(d), 0, "device {d} leaks");
    }
}

#[test]
fn steal_rescues_slowed_device_bit_identical() {
    check_rescued(StragglerPolicy::Steal, true);
}

#[test]
fn replicate_rescues_slowed_device_bit_identical() {
    check_rescued(StragglerPolicy::Replicate, false);
}

#[test]
fn rescue_is_deterministic_per_plan() {
    let n = 512;
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let mut rt = runtime(4, Some(slow_plan()));
            let out = run_scale(&mut rt, vec![0, 1, 2, 3], StragglerPolicy::Steal, n).unwrap();
            (out, rt.rescues(), rt.elapsed())
        })
        .collect();
    assert_eq!(runs[0], runs[1], "identical plan, identical run");
}

#[test]
fn steal_beats_wait() {
    let n = 512;
    let elapsed = |policy| {
        let mut rt = runtime(4, Some(slow_plan()));
        run_scale(&mut rt, vec![0, 1, 2, 3], policy, n).unwrap();
        rt.elapsed()
    };
    let wait = elapsed(StragglerPolicy::Wait);
    let steal = elapsed(StragglerPolicy::Steal);
    let replicate = elapsed(StragglerPolicy::Replicate);
    assert!(steal < wait, "steal {steal:?} must beat wait {wait:?}");
    // Replicate leaves the straggler running (its exit still gates the
    // blocking drain), so construct latency matches wait — the win is
    // that the piece's *result* lands early via the rescue's commit.
    assert!(
        replicate.as_nanos() <= wait.as_nanos() + wait.as_nanos() / 10,
        "replicate {replicate:?} must not regress past wait {wait:?}"
    );
}

#[test]
fn fast_runs_never_rescue() {
    let n = 512;
    let mut rt = runtime(4, None);
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], StragglerPolicy::Steal, n).unwrap();
    assert!(rt.rescues().is_empty(), "no straggler, no rescue");
    let mut clean = runtime(4, None);
    let expect = run_scale(&mut clean, vec![0, 1, 2, 3], StragglerPolicy::Wait, n).unwrap();
    assert_eq!(out, expect);
}

#[test]
fn straggler_rejects_dynamic_and_nowait() {
    let mut rt = runtime(2, None);
    let err = rt
        .run(|s| {
            let a = s.host_array("A", 64);
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::dynamic(16))
                .with_straggler(StragglerPolicy::Steal)
                .map(spread_tofrom(a, |c| c.range()))
                .parallel_for(
                    s,
                    0..64,
                    KernelSpec::new("id", 1.0, |_, _| {}).arg(KernelArg::read_write(a, |r| r)),
                )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");

    let mut rt = runtime(2, None);
    let err = rt
        .run(|s| {
            let a = s.host_array("A", 64);
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::static_chunk(16))
                .with_straggler(StragglerPolicy::Replicate)
                .nowait()
                .map(spread_tofrom(a, |c| c.range()))
                .parallel_for(
                    s,
                    0..64,
                    KernelSpec::new("id", 1.0, |_, _| {}).arg(KernelArg::read_write(a, |r| r)),
                )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
}

#[test]
fn straggler_composes_with_resilience() {
    // Device 1 is slow *and* device 3 dies mid-run: the straggler
    // monitor rescues the slow piece while the resilience coordinator
    // rebuilds the dead device's piece — results stay bit-identical.
    let n = 512;
    let mut clean = runtime(4, None);
    let expect = run_scale(&mut clean, vec![0, 1, 2, 3], StragglerPolicy::Wait, n).unwrap();
    let mid = SimTime::from_nanos(clean.elapsed().as_nanos() / 2);

    let plan = slow_plan().lose_device(3, mid);
    let mut rt = runtime(4, Some(plan));
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetSpread::devices([0, 1, 2, 3])
            .with_schedule(SpreadSchedule::static_chunk(128))
            .with_straggler(StragglerPolicy::Steal)
            .with_resilience(ResiliencePolicy::Redistribute)
            .map(spread_to(a, |c| c.range()))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("scale", 2.0, |chunk, v| {
                    for i in chunk {
                        v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.snapshot_host(b), expect);
    assert!(rt.races().is_empty());
}

#[test]
fn beta_scales_the_deadline() {
    // A mild 2× slowdown: with the default β = 4 the slow piece still
    // makes the deadline (no rescue); with β tightened to ~1 it is
    // rescued.
    let n = 512;
    let plan = || FaultPlan::new(5).slow_compute(1, SimTime::ZERO, SimTime::MAX, 2.0);
    let run = |beta: f64| {
        let mut rt = runtime(4, Some(plan()));
        let a = rt.host_array("A", n);
        let b = rt.host_array("B", n);
        rt.fill_host(a, |i| i as f64);
        rt.run(|s| {
            TargetSpread::devices([0, 1, 2, 3])
                .with_schedule(SpreadSchedule::static_chunk(128))
                .with_straggler(StragglerPolicy::Replicate)
                .with_straggler_beta(beta)
                .map(spread_to(a, |c| c.range()))
                .map(spread_from(b, |c| c.range()))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("scale", 2.0, |chunk, v| {
                        for i in chunk {
                            v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                        }
                    })
                    .arg(KernelArg::read(a, |r| r))
                    .arg(KernelArg::write(b, |r| r)),
                )?;
            Ok(())
        })
        .unwrap();
        rt.rescues().len()
    };
    assert_eq!(run(4.0), 0, "2x straggler fits a 4x deadline");
    assert!(run(1.0) > 0, "a tight deadline rescues the 2x straggler");
}
