//! The one place the deprecated inherent clause forwarders are still
//! exercised. Every directive builder keeps its pre-trait
//! `spread_*(…)` methods for one release as `#[deprecated]` forwarders
//! onto [`SpreadClausesExt`]; this test pins two things about them:
//!
//! 1. they still **compile** (with deprecation warnings only — hence
//!    the file-level `allow`, which also keeps `clippy -D warnings`
//!    green), and
//! 2. they are **pure forwarders**: a builder configured through the
//!    old spelling is indistinguishable from one configured through
//!    the trait.
//!
//! Every other test and in-repo caller uses the trait spelling; when
//! the forwarders are removed, this file is deleted with them.

#![allow(deprecated)]

use spread_core::data_spread::{
    SpreadClauses, TargetEnterDataSpread, TargetExitDataSpread, TargetUpdateSpread,
};
use spread_core::prelude::*;

const DEVICES: [u32; 2] = [0, 1];

/// `TargetSpread` has the full clause surface, and getters for most of
/// it — assert forwarder/trait equivalence clause by clause.
#[test]
fn target_spread_forwarders_match_the_trait_spelling() {
    let old = TargetSpread::devices(DEVICES)
        .spread_schedule(SpreadSchedule::static_chunk(8))
        .spread_resilience(ResiliencePolicy::Redistribute)
        .spread_pressure(PressurePolicy::Spill)
        .spread_straggler(StragglerPolicy::Steal)
        .spread_straggler_beta(6.5)
        .spread_integrity(IntegrityMode::Heal);
    let new = TargetSpread::devices(DEVICES)
        .with_schedule(SpreadSchedule::static_chunk(8))
        .with_resilience(ResiliencePolicy::Redistribute)
        .with_pressure(PressurePolicy::Spill)
        .with_straggler(StragglerPolicy::Steal)
        .with_straggler_beta(6.5)
        .with_integrity(IntegrityMode::Heal);

    assert_eq!(old.schedule(), new.schedule());
    assert_eq!(old.resilience(), new.resilience());
    assert_eq!(old.resilience(), ResiliencePolicy::Redistribute);
    assert_eq!(old.pressure(), new.pressure());
    assert_eq!(old.pressure(), PressurePolicy::Spill);
    assert_eq!(old.straggler(), new.straggler());
    assert_eq!(old.straggler(), StragglerPolicy::Steal);
    assert_eq!(old.integrity(), new.integrity());
    assert_eq!(old.integrity(), IntegrityMode::Heal);
}

/// The β forwarder inherits the trait's sanitization (non-finite → 4.0,
/// clamp to ≥ 1) because it *is* the trait method. No public getter
/// exposes β, so pin the forwarding itself: both spellings accept the
/// same garbage without panicking and stay chainable.
#[test]
fn straggler_beta_forwarder_sanitizes_like_the_trait() {
    for beta in [f64::NAN, f64::INFINITY, -3.0, 0.0, 1.0, 9.25] {
        let old = TargetSpread::devices(DEVICES).spread_straggler_beta(beta);
        let new = TargetSpread::devices(DEVICES).with_straggler_beta(beta);
        assert_eq!(old.straggler(), new.straggler());
    }
}

/// `SpreadClauses` (the shared data-directive clause bag) still takes
/// the old schedule spelling; the distribution it produces must be the
/// one the trait spelling produces.
#[test]
fn spread_clauses_schedule_forwarder_distributes_identically() {
    let old = SpreadClauses::devices(DEVICES)
        .range(0, 24)
        .spread_schedule(SpreadSchedule::static_chunk(6))
        .chunks()
        .expect("old spelling distributes");
    let new = SpreadClauses::devices(DEVICES)
        .range(0, 24)
        .with_schedule(SpreadSchedule::static_chunk(6))
        .chunks()
        .expect("trait spelling distributes");
    assert!(!old.is_empty());
    assert_eq!(old, new);
}

/// The data-movement builders have no clause getters, so the contract
/// this pins is the forwarders' continued existence and chainability —
/// each deprecated method accepts the same argument as its trait twin
/// and returns the builder. (Their bodies are one-line calls into the
/// trait, so compiling here plus the `TargetSpread` equivalence above
/// covers their behavior.)
#[test]
fn data_builders_still_accept_the_deprecated_spellings() {
    let _enter = TargetEnterDataSpread::devices(DEVICES)
        .range(0, 16)
        .spread_resilience(ResiliencePolicy::FailStop)
        .spread_schedule(SpreadSchedule::static_chunk(4));
    let _exit = TargetExitDataSpread::devices(DEVICES)
        .range(0, 16)
        .spread_resilience(ResiliencePolicy::FailStop)
        .spread_schedule(SpreadSchedule::static_chunk(4));
    let _update = TargetUpdateSpread::devices(DEVICES)
        .range(0, 16)
        .spread_resilience(ResiliencePolicy::FailStop)
        .spread_integrity(IntegrityMode::Verify);
}
