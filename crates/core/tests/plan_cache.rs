//! End-to-end tests of the `spread_plan_cache(key)` clause: repeated
//! launches replay the cached plan, misuse is rejected loudly, and the
//! topology epoch invalidates — never serves — a stale plan after
//! device loss, integrity-breaker quarantine, or an adaptive-weight
//! update.

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_sim::FaultPlan;
use spread_trace::SimTime;

fn runtime(n_devices: usize, plan: Option<FaultPlan>, breaker: u32) -> Runtime {
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.5e9,
    );
    let mut cfg = RuntimeConfig::new(topo)
        .with_team_threads(2)
        .with_breaker(breaker);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    Runtime::new(cfg)
}

/// One keyed `B[i] = 3*A[i] + 1` launch over `devices`.
fn keyed_scale(
    s: &mut Scope<'_>,
    a: HostArray,
    b: HostArray,
    devices: &[u32],
    n: usize,
    integrity: IntegrityMode,
    resilience: ResiliencePolicy,
) -> Result<(), RtError> {
    TargetSpread::devices(devices.iter().copied())
        .with_schedule(SpreadSchedule::static_chunk(64))
        .with_integrity(integrity)
        .with_resilience(resilience)
        .with_plan_cache("scale")
        .map(spread_to(a, |c| c.range()))
        .map(spread_from(b, |c| c.range()))
        .parallel_for(
            s,
            0..n,
            KernelSpec::new("scale", 2.0, |chunk, v| {
                for i in chunk {
                    v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                }
            })
            .arg(KernelArg::read(a, |r| r))
            .arg(KernelArg::write(b, |r| r)),
        )?;
    Ok(())
}

fn assert_scaled(rt: &Runtime, b: HostArray, n: usize) {
    let out = rt.snapshot_host(b);
    assert_eq!(out.len(), n);
    for (i, &x) in out.iter().enumerate() {
        assert_eq!(x, 3.0 * i as f64 + 1.0);
    }
}

#[test]
fn repeated_launches_hit_the_cache() {
    let n = 512;
    let mut rt = runtime(3, None, 8);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        for _ in 0..5 {
            keyed_scale(
                s,
                a,
                b,
                &[0, 1, 2],
                n,
                IntegrityMode::Off,
                ResiliencePolicy::FailStop,
            )?;
        }
        Ok(())
    })
    .unwrap();
    assert_scaled(&rt, b, n);
    let stats = rt.plan_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits, 4, "{stats:?}");
    assert_eq!(stats.invalidations, 0, "{stats:?}");
    assert_eq!(stats.cold_plans, 1, "{stats:?}");
    assert_eq!(stats.warm_plans, 4, "{stats:?}");
    assert_eq!(rt.topology_epoch(), 0, "nothing invalidated anything");
}

#[test]
fn unkeyed_constructs_leave_the_cache_idle() {
    let n = 256;
    let mut rt = runtime(2, None, 8);
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        for _ in 0..3 {
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::static_chunk(64))
                .map(spread_tofrom(a, |c| c.range()))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("bump", 1.0, |chunk, v| {
                        for i in chunk {
                            v.set(0, i, v.get(0, i) + 1.0);
                        }
                    })
                    .arg(KernelArg::read_write(a, |r| r)),
                )?;
        }
        Ok(())
    })
    .unwrap();
    let stats = rt.plan_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.cold_plans, stats.warm_plans),
        (0, 0, 0, 0),
        "an unkeyed construct must never touch the cache: {stats:?}"
    );
}

#[test]
fn dynamic_schedules_reject_the_clause() {
    let n = 256;
    let mut rt = runtime(2, None, 8);
    let a = rt.host_array("A", n);
    let err = rt
        .run(|s| {
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::dynamic(32))
                .with_plan_cache("dyn")
                .map(spread_tofrom(a, |c| c.range()))
                .parallel_for(s, 0..n, KernelSpec::new("noop", 1.0, |_, _| {}))?;
            Ok(())
        })
        .unwrap_err();
    match err {
        RtError::InvalidDirective(msg) => {
            assert!(msg.contains("spread_plan_cache"), "{msg}");
            assert!(msg.contains("static schedule"), "{msg}");
        }
        other => panic!("expected InvalidDirective, got {other:?}"),
    }
}

#[test]
fn data_directives_reject_the_clause() {
    let n = 256;
    let mut rt = runtime(2, None, 8);
    let a = rt.host_array("A", n);
    let err = rt
        .run(|s| {
            TargetEnterDataSpread::devices([0, 1])
                .range(0, n)
                .chunk_size(64)
                .with_plan_cache("enter")
                .map(spread_to(a, |c| c.range()))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    match err {
        RtError::InvalidDirective(msg) => {
            assert!(msg.contains("spread_plan_cache"), "{msg}");
        }
        other => panic!("expected InvalidDirective, got {other:?}"),
    }
}

/// Permanent device loss mid-construct bumps the topology epoch: the
/// relaunch must record an invalidation-miss and re-plan — never serve
/// the pre-loss chunks — and still land exact results.
#[test]
fn device_loss_invalidates_and_forces_a_replan() {
    let n = 512;
    // A clean run to learn the construct's duration, so the loss can be
    // armed squarely inside the first launch.
    let mid = {
        let mut rt = runtime(3, None, 8);
        let a = rt.host_array("A", n);
        let b = rt.host_array("B", n);
        rt.fill_host(a, |i| i as f64);
        rt.run(|s| {
            keyed_scale(
                s,
                a,
                b,
                &[0, 1, 2],
                n,
                IntegrityMode::Off,
                ResiliencePolicy::FailStop,
            )
        })
        .unwrap();
        SimTime::from_nanos(rt.elapsed().as_nanos() / 2)
    };
    let plan = FaultPlan::new(3).lose_device(2, mid);
    let mut rt = runtime(3, Some(plan), 8);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        // Launch 1 plans on the full device list, loses device 2 in
        // flight, and redistributes. Launch 2 re-plans.
        for _ in 0..2 {
            keyed_scale(
                s,
                a,
                b,
                &[0, 1, 2],
                n,
                IntegrityMode::Off,
                ResiliencePolicy::Redistribute,
            )?;
        }
        Ok(())
    })
    .unwrap();
    assert_scaled(&rt, b, n);
    assert_eq!(rt.lost_devices(), vec![2]);
    assert!(rt.topology_epoch() >= 1, "loss must bump the epoch");
    let stats = rt.plan_stats();
    assert_eq!(
        stats.hits, 0,
        "a stale plan must never be served: {stats:?}"
    );
    assert_eq!(stats.misses, 2, "{stats:?}");
    assert_eq!(stats.invalidations, 1, "{stats:?}");
}

/// Integrity-breaker quarantine routes through the same loss hook, so
/// it must bump the epoch and invalidate exactly like a genuine loss.
#[test]
fn quarantine_invalidates_and_forces_a_replan() {
    let n = 512;
    // Device 1 lies on every commit; breaker 2 quarantines it during
    // the first launch.
    let plan = FaultPlan::new(11).silent_flips(1, SimTime::ZERO, 32);
    let mut rt = runtime(4, Some(plan), 2);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        for _ in 0..2 {
            keyed_scale(
                s,
                a,
                b,
                &[0, 1, 2, 3],
                n,
                IntegrityMode::Heal,
                ResiliencePolicy::Redistribute,
            )?;
        }
        Ok(())
    })
    .unwrap();
    assert_scaled(&rt, b, n);
    assert_eq!(rt.lost_devices(), vec![1], "the liar is quarantined");
    assert!(rt.topology_epoch() >= 1, "quarantine must bump the epoch");
    let stats = rt.plan_stats();
    assert_eq!(
        stats.hits, 0,
        "a stale plan must never be served: {stats:?}"
    );
    assert!(stats.invalidations >= 1, "{stats:?}");
}

/// Recording an adaptive construct profile (the `spread_schedule(auto)`
/// learning loop) bumps the epoch: every cached plan is invalidated,
/// because adaptive weights feed future `auto` resolutions.
#[test]
fn adaptive_weight_update_invalidates_cached_plans() {
    let n = 512;
    let mut rt = runtime(2, None, 8);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    let c = rt.host_array("C", n);
    rt.fill_host(a, |i| i as f64);
    rt.fill_host(c, |i| i as f64);
    rt.run(|s| {
        keyed_scale(
            s,
            a,
            b,
            &[0, 1],
            n,
            IntegrityMode::Off,
            ResiliencePolicy::FailStop,
        )?;
        // An auto construct in between: completing it records a profile
        // and bumps the epoch.
        TargetSpread::devices([0, 1])
            .with_schedule(SpreadSchedule::auto("learn"))
            .map(spread_tofrom(c, |ch| ch.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("bump", 1.0, |chunk, v| {
                    for i in chunk {
                        v.set(0, i, v.get(0, i) + 1.0);
                    }
                })
                .arg(KernelArg::read_write(c, |r| r)),
            )?;
        keyed_scale(
            s,
            a,
            b,
            &[0, 1],
            n,
            IntegrityMode::Off,
            ResiliencePolicy::FailStop,
        )?;
        Ok(())
    })
    .unwrap();
    assert_scaled(&rt, b, n);
    assert!(
        rt.topology_epoch() >= 1,
        "the profile record must bump the epoch"
    );
    let stats = rt.plan_stats();
    assert_eq!(
        stats.hits, 0,
        "a stale plan must never be served: {stats:?}"
    );
    assert_eq!(stats.invalidations, 1, "{stats:?}");
}
