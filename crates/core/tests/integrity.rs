//! Fault-injected end-to-end tests of the `spread_integrity(…)` clause:
//! a `target spread` construct detecting silent payload corruption at
//! the staged-commit drain, healing tainted pieces from the unharmed
//! host image, quarantining repeat offenders, and composing with
//! `spread_resilience(redistribute)` across genuine device loss.

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_rt::{IntegrityAction, IntegrityBoundary};
use spread_sim::FaultPlan;
use spread_trace::{SimTime, SpanKind};

fn runtime(n_devices: usize, plan: Option<FaultPlan>, breaker: u32) -> Runtime {
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.5e9,
    );
    let mut cfg = RuntimeConfig::new(topo)
        .with_team_threads(2)
        .with_breaker(breaker);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    Runtime::new(cfg)
}

/// `B[i] = 3*A[i] + 1` spread over the devices in 64-iteration chunks.
fn run_scale(
    rt: &mut Runtime,
    devices: Vec<u32>,
    mode: IntegrityMode,
    resilience: ResiliencePolicy,
    n: usize,
) -> Result<Vec<f64>, RtError> {
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetSpread::devices(devices.clone())
            .with_schedule(SpreadSchedule::static_chunk(64))
            .with_integrity(mode)
            .with_resilience(resilience)
            .map(spread_to(a, |c| c.range()))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("scale", 2.0, |chunk, v| {
                    for i in chunk {
                        v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })?;
    Ok(rt.snapshot_host(b))
}

/// Reference output and virtual mid-point of a fault-free run.
fn clean_run(n_dev: usize, n: usize) -> (Vec<f64>, SimTime) {
    let mut rt = runtime(n_dev, None, 8);
    let devices: Vec<u32> = (0..n_dev as u32).collect();
    let out = run_scale(
        &mut rt,
        devices,
        IntegrityMode::Off,
        ResiliencePolicy::FailStop,
        n,
    )
    .unwrap();
    let mid = SimTime::from_nanos(rt.elapsed().as_nanos() / 2);
    (out, mid)
}

#[test]
fn off_lets_a_flip_flow_through_silently() {
    let n = 512;
    let (expect, _) = clean_run(4, n);
    let plan = FaultPlan::new(11).silent_flips(1, SimTime::ZERO, 1);
    let mut rt = runtime(4, Some(plan), 8);
    let out = run_scale(
        &mut rt,
        vec![0, 1, 2, 3],
        IntegrityMode::Off,
        ResiliencePolicy::FailStop,
        n,
    )
    .unwrap();
    let wrong = (0..n)
        .filter(|&i| out[i].to_bits() != expect[i].to_bits())
        .count();
    assert_eq!(wrong, 1, "exactly one element rotted on the way home");
    assert!(rt.integrity_events().is_empty(), "off computes no digests");
}

#[test]
fn verify_fails_the_construct_and_names_the_device() {
    let n = 512;
    let plan = FaultPlan::new(11).silent_flips(2, SimTime::ZERO, 1);
    let mut rt = runtime(4, Some(plan), 8);
    let err = run_scale(
        &mut rt,
        vec![0, 1, 2, 3],
        IntegrityMode::Verify,
        ResiliencePolicy::FailStop,
        n,
    )
    .unwrap_err();
    assert!(
        matches!(err, RtError::IntegrityViolation { device: 2, .. }),
        "{err:?}"
    );
    let events = rt.integrity_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].device, 2);
    assert_eq!(events[0].boundary, IntegrityBoundary::Commit);
    assert_eq!(events[0].action, IntegrityAction::Failed);
}

#[test]
fn heal_completes_bit_identical_with_flips_injected() {
    let n = 512;
    let (expect, _) = clean_run(4, n);
    // Three flips across two devices — every tainted commit is caught,
    // discarded, and re-executed from the host image.
    let plan = FaultPlan::new(11)
        .silent_flips(1, SimTime::ZERO, 2)
        .silent_flips(3, SimTime::ZERO, 1);
    let mut rt = runtime(4, Some(plan), 8);
    let out = run_scale(
        &mut rt,
        vec![0, 1, 2, 3],
        IntegrityMode::Heal,
        ResiliencePolicy::FailStop,
        n,
    )
    .unwrap();
    assert_eq!(out, expect, "healed results must be bit-identical");
    assert!(rt.races().is_empty());
    let events = rt.integrity_events();
    assert_eq!(events.len(), 3, "three flips, three detections");
    assert!(events
        .iter()
        .all(|e| e.action == IntegrityAction::Healed && e.boundary == IntegrityBoundary::Commit));
    assert!(rt.lost_devices().is_empty(), "nobody hit the breaker");
    let heals = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Heal)
        .count();
    assert!(heals >= 3, "each detection leaves a Heal span, got {heals}");
}

#[test]
fn a_mismatch_streak_quarantines_and_the_redo_lands_on_a_sibling() {
    let n = 512;
    let (expect, _) = clean_run(4, n);
    // Device 1 lies on every commit; breaker 2 quarantines it after two
    // consecutive mismatches and the piece re-routes to a survivor.
    let plan = FaultPlan::new(11).silent_flips(1, SimTime::ZERO, 32);
    let mut rt = runtime(4, Some(plan), 2);
    let out = run_scale(
        &mut rt,
        vec![0, 1, 2, 3],
        IntegrityMode::Heal,
        ResiliencePolicy::FailStop,
        n,
    )
    .unwrap();
    assert_eq!(out, expect, "quarantine still lands bit-identical results");
    assert_eq!(rt.lost_devices(), vec![1], "the liar is quarantined");
    let events = rt.integrity_events();
    assert!(
        events
            .iter()
            .any(|e| e.action == IntegrityAction::Quarantined && e.device == 1),
        "the streak must escalate to quarantine: {events:?}"
    );
    // Quarantine wipes the offender like a loss: nothing left mapped.
    assert_eq!(rt.device_mem_used(1), 0);
}

#[test]
fn heal_composes_with_redistribute_across_a_genuine_loss() {
    let n = 512;
    let (expect, mid) = clean_run(4, n);
    let plan = FaultPlan::new(7)
        .lose_device(3, mid)
        .silent_flips(1, SimTime::ZERO, 1);
    let mut rt = runtime(4, Some(plan), 8);
    let out = run_scale(
        &mut rt,
        vec![0, 1, 2, 3],
        IntegrityMode::Heal,
        ResiliencePolicy::Redistribute,
        n,
    )
    .unwrap();
    assert_eq!(out, expect, "loss redistributed and flip healed at once");
    assert!(rt
        .integrity_events()
        .iter()
        .any(|e| e.action == IntegrityAction::Healed && e.device == 1));
}

#[test]
fn heal_without_redistribute_fail_stops_on_genuine_loss() {
    let n = 512;
    let (_, mid) = clean_run(4, n);
    let plan = FaultPlan::new(7).lose_device(1, mid);
    let mut rt = runtime(4, Some(plan), 8);
    let err = run_scale(
        &mut rt,
        vec![0, 1, 2, 3],
        IntegrityMode::Heal,
        ResiliencePolicy::FailStop,
        n,
    )
    .unwrap_err();
    assert!(
        matches!(err, RtError::DeviceLost { .. }),
        "healing covers lies, not dead hardware: {err:?}"
    );
}

#[test]
fn heal_without_faults_matches_fail_stop_exactly() {
    let n = 512;
    let (expect, _) = clean_run(4, n);
    let mut rt = runtime(4, None, 8);
    let out = run_scale(
        &mut rt,
        vec![0, 1, 2, 3],
        IntegrityMode::Heal,
        ResiliencePolicy::FailStop,
        n,
    )
    .unwrap();
    assert_eq!(out, expect);
    assert!(rt.integrity_events().is_empty(), "no fault, no detections");
    let heals = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Heal)
        .count();
    assert_eq!(heals, 0, "no fault, no heal work");
}

#[test]
fn healing_is_deterministic() {
    let n = 512;
    let run = || {
        let plan = FaultPlan::new(11).silent_flips(1, SimTime::ZERO, 2);
        let mut rt = runtime(4, Some(plan), 8);
        let out = run_scale(
            &mut rt,
            vec![0, 1, 2, 3],
            IntegrityMode::Heal,
            ResiliencePolicy::FailStop,
            n,
        )
        .unwrap();
        (out, rt.integrity_events().len(), rt.elapsed())
    };
    assert_eq!(run(), run(), "same plan, same seed => identical healing");
}

fn reject_case(build: impl FnOnce(TargetSpread) -> TargetSpread) -> RtError {
    let mut rt = runtime(2, None, 8);
    let a = rt.host_array("A", 64);
    rt.run(|s| {
        build(TargetSpread::devices([0, 1]).with_integrity(IntegrityMode::Heal))
            .map(spread_tofrom(a, |c| c.range()))
            .parallel_for(
                s,
                0..64,
                KernelSpec::new("id", 1.0, |_, _| {}).arg(KernelArg::read(a, |r| r)),
            )?;
        Ok(())
    })
    .unwrap_err()
}

#[test]
fn heal_rejects_incompatible_clauses() {
    for err in [
        reject_case(|t| t.with_schedule(SpreadSchedule::dynamic(16))),
        reject_case(|t| t.nowait()),
        reject_case(|t| t.with_straggler(StragglerPolicy::Steal)),
        reject_case(|t| t.with_pressure(PressurePolicy::Split)),
    ] {
        assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
    }
}

#[test]
fn update_spread_rejects_heal_with_from_items() {
    let mut rt = runtime(2, None, 8);
    let a = rt.host_array("A", 64);
    let err = rt
        .run(|s| {
            TargetUpdateSpread::devices([0, 1])
                .range(0, 64)
                .chunk_size(32)
                .with_integrity(IntegrityMode::Heal)
                .from(a, |c| c.range())
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
}

#[test]
fn update_spread_verify_catches_a_flipped_drain() {
    let n = 128;
    let plan = FaultPlan::new(5).silent_flips(1, SimTime::ZERO, 1);
    let mut rt = runtime(2, Some(plan), 8);
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    let err = rt
        .run(|s| {
            TargetEnterDataSpread::devices([0, 1])
                .range(0, n)
                .chunk_size(64)
                .map(spread_to(a, |c| c.range()))
                .launch(s)?;
            TargetUpdateSpread::devices([0, 1])
                .range(0, n)
                .chunk_size(64)
                .with_integrity(IntegrityMode::Verify)
                .from(a, |c| c.range())
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, RtError::IntegrityViolation { device: 1, .. }),
        "{err:?}"
    );
}
