//! End-to-end tests of the `target spread` directive set — the paper's
//! listings as executable programs on the simulated node.

// Sequential reference loops mirror the paper's C listings index-for-index.
#![allow(clippy::needless_range_loop)]

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_trace::SpanKind;

fn runtime(n_devices: usize) -> Runtime {
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.5e9,
    );
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
}

/// Paper Listing 3/4: the 3-point stencil spread over devices(2,0,1)
/// with halo maps, verified against the sequential result.
#[test]
fn listing3_stencil_spread_over_three_devices() {
    let mut rt = runtime(3);
    let n = 14; // the paper's walk-through size
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| (i * i) as f64);
    rt.run(|s| {
        TargetSpread::devices([2, 0, 1])
            .with_schedule(SpreadSchedule::static_chunk(4))
            .num_teams(2)
            .map(spread_to(a, |c| c.start() - 1..c.end() + 1))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                1..n - 1,
                KernelSpec::new("stencil", 2.0, |chunk, v| {
                    for i in chunk {
                        let sum = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
                        v.set(1, i, sum);
                    }
                })
                .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 1..n - 1 {
        let expect = ((i - 1) * (i - 1) + i * i + (i + 1) * (i + 1)) as f64;
        assert_eq!(out[i], expect, "B[{i}]");
    }
    // Three kernels ran, one per device, and all memory was released.
    let tl = rt.timeline();
    let kernel_devices: Vec<u32> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel)
        .filter_map(|s| s.lane.device())
        .collect();
    assert_eq!(kernel_devices.len(), 3);
    for d in 0..3 {
        assert!(kernel_devices.contains(&d), "device {d} got a chunk");
        assert_eq!(rt.device_mem_used(d), 0);
    }
    assert!(rt.races().is_empty());
}

/// Larger spread with an awkward chunk size; results must match the
/// sequential stencil exactly regardless of device count.
#[test]
fn spread_matches_sequential_for_any_device_count() {
    for n_dev in 1..=4usize {
        let mut rt = runtime(n_dev);
        let n = 1000;
        let a = rt.host_array("A", n);
        let b = rt.host_array("B", n);
        rt.fill_host(a, |i| ((i * 7919) % 1000) as f64);
        let expect: Vec<f64> = {
            let av = rt.snapshot_host(a);
            (0..n)
                .map(|i| {
                    if i == 0 || i == n - 1 {
                        0.0
                    } else {
                        av[i - 1] + av[i] + av[i + 1]
                    }
                })
                .collect()
        };
        let devices: Vec<u32> = (0..n_dev as u32).collect();
        // With one device, halo'd adjacent chunks would overlap (the
        // §V-B rule), so the single-device configuration uses one chunk
        // covering the whole loop — exactly what the paper's 1-GPU
        // One Buffer run does.
        let chunk = if n_dev == 1 { n } else { 37 };
        rt.run(|s| {
            TargetSpread::devices(devices.clone())
                .with_schedule(SpreadSchedule::static_chunk(chunk))
                .map(spread_to(a, |c| c.start() - 1..c.end() + 1))
                .map(spread_from(b, |c| c.range()))
                .parallel_for(
                    s,
                    1..n - 1,
                    KernelSpec::new("stencil", 2.0, |chunk, v| {
                        for i in chunk {
                            let sum = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
                            v.set(1, i, sum);
                        }
                    })
                    .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
                    .arg(KernelArg::write(b, |r| r)),
                )?;
            Ok(())
        })
        .unwrap();
        let out = rt.snapshot_host(b);
        for i in 1..n - 1 {
            assert_eq!(out[i], expect[i], "n_dev={n_dev}, B[{i}]");
        }
    }
}

/// Paper Listing 6: enter/exit data spread distribute the mapping, the
/// kernel (spread with matching schedule) computes, results come home.
#[test]
fn enter_exit_data_spread_roundtrip() {
    let mut rt = runtime(3);
    let n = 120;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetEnterDataSpread::devices([2, 0, 1])
            .range(0, n)
            .chunk_size(10)
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        TargetSpread::devices([2, 0, 1])
            .with_schedule(SpreadSchedule::static_chunk(10))
            .map(spread_tofrom(a, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("inc", 1.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(0, i, x + 100.0);
                    }
                })
                .arg(KernelArg::read_write(a, |r| r)),
            )?;
        TargetExitDataSpread::devices([2, 0, 1])
            .range(0, n)
            .chunk_size(10)
            .map(spread_from(a, |c| c.range()))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], i as f64 + 100.0);
    }
    for d in 0..3 {
        assert_eq!(rt.device_mem_used(d), 0);
    }
}

/// Paper Listing 5: the structured `target data spread` region.
#[test]
fn target_data_spread_region() {
    let mut rt = runtime(2);
    let n = 64;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetDataSpread::devices([1, 0])
            .range(0, n)
            .chunk_size(8)
            .map(spread_tofrom(a, |c| c.range()))
            .region(s, |s| {
                TargetSpread::devices([1, 0])
                    .with_schedule(SpreadSchedule::static_chunk(8))
                    .map(spread_tofrom(a, |c| c.range()))
                    .parallel_for(
                        s,
                        0..n,
                        KernelSpec::new("neg", 1.0, |chunk, v| {
                            for i in chunk {
                                let x = v.get(0, i);
                                v.set(0, i, -x);
                            }
                        })
                        .arg(KernelArg::read_write(a, |r| r)),
                    )?;
                Ok(())
            })
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], -(i as f64));
    }
    assert_eq!(rt.device_mem_used(0), 0);
    assert_eq!(rt.device_mem_used(1), 0);
}

/// Paper Listing 7: update spread pushes host changes to the distributed
/// images and pulls results back.
#[test]
fn target_update_spread() {
    let mut rt = runtime(2);
    let n = 40;
    let a = rt.host_array("A", n);
    rt.run(|s| {
        TargetEnterDataSpread::devices([0, 1])
            .range(0, n)
            .chunk_size(5)
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        // Host writes new values; push them with update-to.
        s.fill_host(a, |i| 2.0 * i as f64);
        TargetUpdateSpread::devices([0, 1])
            .range(0, n)
            .chunk_size(5)
            .to(a, |c| c.range())
            .launch(s)?;
        // Device doubles them.
        TargetSpread::devices([0, 1])
            .with_schedule(SpreadSchedule::static_chunk(5))
            .map(spread_alloc(a, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("dbl", 1.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(0, i, 2.0 * x);
                    }
                })
                .arg(KernelArg::read_write(a, |r| r)),
            )?;
        // Clobber host, pull with update-from.
        s.fill_host(a, |_| -5.0);
        TargetUpdateSpread::devices([0, 1])
            .range(0, n)
            .chunk_size(5)
            .from(a, |c| c.range())
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], 4.0 * i as f64, "A[{i}]");
    }
}

/// Paper Listing 8: two enter-data-spread directives with different
/// device lists and chunkings against different arrays.
#[test]
fn listing8_different_device_lists_per_directive() {
    let mut rt = runtime(4);
    let n = 80;
    let m = 60;
    let a = rt.host_array("A", n + 2);
    let b = rt.host_array("B", n + m + 120);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([2, 0])
                .range(1, n)
                .chunk_size(4)
                .nowait()
                .map(spread_to(a, |c| c.halo(1, 1)))
                .launch(s)
                .unwrap();
            TargetEnterDataSpread::devices([1, 3])
                .range(100, m)
                .chunk_size(10)
                .nowait()
                .map(spread_to(b, |c| c.range()))
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    // A chunks only on devices 2 and 0; B chunks only on 1 and 3.
    assert!(rt.device_mem_used(0) > 0);
    assert!(rt.device_mem_used(2) > 0);
    assert!(rt.device_mem_used(1) > 0);
    assert!(rt.device_mem_used(3) > 0);
    let tl = rt.timeline();
    for s in tl.spans().iter().filter(|s| s.kind == SpanKind::TransferIn) {
        let dev = s.lane.device().unwrap();
        if s.label.starts_with("A ") {
            assert!(dev == 2 || dev == 0, "A chunk on wrong device {dev}");
        } else {
            assert!(dev == 1 || dev == 3, "B chunk on wrong device {dev}");
        }
    }
}

/// §V-B: with halos, adjacent chunks on ONE device overlap → the
/// forbidden array-extension error; with two devices the round-robin
/// gap makes it legal.
#[test]
fn halo_overlap_needs_two_devices() {
    // One device: chunks [0,8) and [8,16) with ±1 halo overlap at 7..9.
    let mut rt = runtime(1);
    let a = rt.host_array("A", 40);
    let err = rt
        .run(|s| {
            TargetEnterDataSpread::devices([0])
                .range(1, 30)
                .chunk_size(8)
                .map(spread_to(a, |c| c.halo(1, 1)))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, RtError::OverlapExtension { device: 0, .. }),
        "got {err}"
    );

    // Two devices: same directive succeeds.
    let mut rt = runtime(2);
    let a = rt.host_array("A", 40);
    rt.run(|s| {
        TargetEnterDataSpread::devices([0, 1])
            .range(1, 30)
            .chunk_size(8)
            .map(spread_to(a, |c| c.halo(1, 1)))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
}

/// The §IX dynamic-schedule extension: chunks are claimed by idle
/// devices; results still match, and a device slowed by a skewed kernel
/// ends up doing fewer chunks.
#[test]
fn dynamic_schedule_balances_load() {
    let mut rt = runtime(2);
    let n = 640;
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        // With a dynamic schedule the chunk→device assignment is decided
        // at run time, so each chunk's tofrom map moves its own data on
        // whichever device claimed it (pre-distributing with enter data
        // spread would require knowing the assignment up front).
        TargetSpread::devices([0, 1])
            .with_schedule(SpreadSchedule::dynamic(40))
            .map(spread_tofrom(a, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("inc", 50.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(0, i, x + 1.0);
                    }
                })
                .arg(KernelArg::read_write(a, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(a);
    for i in 0..n {
        assert_eq!(out[i], i as f64 + 1.0);
    }
    // Both devices participated.
    let tl = rt.timeline();
    let devs: std::collections::BTreeSet<u32> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel)
        .filter_map(|s| s.lane.device())
        .collect();
    assert_eq!(devs.len(), 2);
}

/// The §IX reduction extension: sum across chunks on all devices.
#[test]
fn cross_device_reduction() {
    let mut rt = runtime(3);
    let n = 300;
    let a = rt.host_array("A", n);
    let partials = rt.host_array("partials", n);
    rt.fill_host(a, |i| i as f64);
    let total = rt
        .run(|s| {
            TargetSpread::devices([0, 1, 2])
                .with_schedule(SpreadSchedule::static_chunk(25))
                .map(spread_to(a, |c| c.range()))
                .parallel_for_reduce(
                    s,
                    0..n,
                    KernelSpec::new("partial-sum", 1.0, |chunk, v| {
                        for i in chunk {
                            let x = v.get(0, i);
                            v.set(1, i, x * 2.0);
                        }
                    })
                    .arg(KernelArg::read(a, |r| r))
                    .arg(KernelArg::write(partials, |r| r)),
                    partials,
                    ReduceOp::Sum,
                )
        })
        .unwrap();
    let expect: f64 = (0..n).map(|i| 2.0 * i as f64).sum();
    assert_eq!(total, expect);
}

/// Listing 13 (future work, implemented here): `depend` on the data
/// spread directives replaces the taskgroup barrier — per-chunk
/// kernel starts as soon as *its* chunk arrived.
#[test]
fn listing13_depend_on_data_spread() {
    let mut rt = runtime(2);
    let n = 400;
    let b = rt.host_array("B", n);
    rt.fill_host(b, |i| i as f64);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([0, 1])
                .range(0, n)
                .chunk_size(10)
                .nowait()
                .map(spread_to(b, |c| c.range()))
                .depend_out(b, |c| c.range())
                .launch(s)
                .unwrap();
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::static_chunk(10))
                .nowait()
                .map(spread_alloc(b, |c| c.range()))
                .depend_in(b, |c| c.range())
                .depend_out(b, |c| c.range())
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("scale", 1.0, |chunk, v| {
                        for i in chunk {
                            let x = v.get(0, i);
                            v.set(0, i, x * 3.0);
                        }
                    })
                    .arg(KernelArg::read_write(b, |r| r)),
                )
                .unwrap();
            TargetExitDataSpread::devices([0, 1])
                .range(0, n)
                .chunk_size(10)
                .nowait()
                .map(spread_from(b, |c| c.range()))
                .depend_in(b, |c| c.range())
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 0..n {
        assert_eq!(out[i], 3.0 * i as f64, "B[{i}]");
    }
    assert!(
        rt.races().is_empty(),
        "chunk-level depends order everything: {:?}",
        rt.races()
    );
}

/// Mis-specified directives report errors.
#[test]
fn invalid_directives() {
    let mut rt = runtime(2);
    let a = rt.host_array("A", 10);
    // Missing range clause.
    let err = rt
        .run(|s| {
            TargetEnterDataSpread::devices([0])
                .chunk_size(4)
                .map(spread_to(a, |c| c.range()))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)));

    let mut rt = runtime(2);
    let a = rt.host_array("A", 10);
    // Empty device list.
    let err = rt
        .run(|s| {
            TargetSpread::devices(Vec::<u32>::new())
                .map(spread_to(a, |c| c.range()))
                .parallel_for(
                    s,
                    0..10,
                    KernelSpec::new("k", 1.0, |_c, _v| {}).arg(KernelArg::read(a, |r| r)),
                )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)));
}
