//! Fault-injected end-to-end tests of the `spread_resilience(…)`
//! clause: a `target spread` construct surviving permanent device loss
//! by rebuilding the dead device's chunks on the survivors.

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_sim::FaultPlan;
use spread_trace::{SimTime, SpanKind};

fn runtime(n_devices: usize, plan: Option<FaultPlan>) -> Runtime {
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.5e9,
    );
    let mut cfg = RuntimeConfig::new(topo).with_team_threads(2);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    Runtime::new(cfg)
}

/// `B[i] = 3*A[i] + 1` spread over all devices in 64-iteration chunks.
fn run_scale(
    rt: &mut Runtime,
    devices: Vec<u32>,
    policy: ResiliencePolicy,
    n: usize,
) -> Result<Vec<f64>, RtError> {
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetSpread::devices(devices.clone())
            .with_schedule(SpreadSchedule::static_chunk(64))
            .with_resilience(policy)
            .map(spread_to(a, |c| c.range()))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("scale", 2.0, |chunk, v| {
                    for i in chunk {
                        v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })?;
    Ok(rt.snapshot_host(b))
}

/// Virtual mid-point of a fault-free run of the same program.
fn clean_run(n_dev: usize, n: usize) -> (Vec<f64>, SimTime) {
    let mut rt = runtime(n_dev, None);
    let devices: Vec<u32> = (0..n_dev as u32).collect();
    let out = run_scale(&mut rt, devices, ResiliencePolicy::FailStop, n).unwrap();
    let mid = SimTime::from_nanos(rt.elapsed().as_nanos() / 2);
    (out, mid)
}

#[test]
fn redistribute_completes_bit_identical_after_mid_run_loss() {
    let n = 512;
    let (expect, mid) = clean_run(4, n);

    let plan = FaultPlan::new(7).lose_device(1, mid);
    let mut rt = runtime(4, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], ResiliencePolicy::Redistribute, n).unwrap();

    assert_eq!(out, expect, "recovered results must be bit-identical");
    assert!(rt.races().is_empty());
    // The dead device's chunks really moved: redistribution spans exist
    // and none of them routes back to the dead device.
    let tl = rt.timeline();
    let redists: Vec<_> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Redistribute)
        .collect();
    assert!(!redists.is_empty(), "loss mid-run must trigger recovery");
    for s in &redists {
        assert_ne!(s.lane.device(), Some(1), "never redistribute to the corpse");
    }
    // Loss cleanup released everything the dead device held.
    assert_eq!(rt.device_mem_used(1), 0);
}

#[test]
fn redistribute_recovers_loss_at_time_zero() {
    let n = 512;
    let (expect, _) = clean_run(4, n);
    // Device 2 is dead before its first enter even starts: every one of
    // its chunks faults at task start and is rebuilt elsewhere.
    let plan = FaultPlan::new(11).lose_device(2, SimTime::ZERO);
    let mut rt = runtime(4, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], ResiliencePolicy::Redistribute, n).unwrap();
    assert_eq!(out, expect);
}

#[test]
fn redistribute_survives_cascading_losses() {
    let n = 512;
    let (expect, mid) = clean_run(4, n);
    let quarter = SimTime::from_nanos(mid.as_nanos() / 2);
    let plan = FaultPlan::new(13)
        .lose_device(3, quarter)
        .lose_device(0, mid);
    let mut rt = runtime(4, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], ResiliencePolicy::Redistribute, n).unwrap();
    assert_eq!(out, expect, "two losses, still bit-identical");
}

#[test]
fn redistribute_is_deterministic() {
    let n = 512;
    let (_, mid) = clean_run(4, n);
    let run = || {
        let plan = FaultPlan::new(7).lose_device(1, mid);
        let mut rt = runtime(4, Some(plan));
        let out = run_scale(&mut rt, vec![0, 1, 2, 3], ResiliencePolicy::Redistribute, n).unwrap();
        let redists = rt
            .timeline()
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Redistribute)
            .count();
        (out, redists, rt.elapsed())
    };
    assert_eq!(run(), run(), "same plan, same seed => identical recovery");
}

#[test]
fn fail_stop_reports_device_lost_deterministically() {
    let n = 512;
    let (_, mid) = clean_run(4, n);
    let run = || {
        let plan = FaultPlan::new(7).lose_device(1, mid);
        let mut rt = runtime(4, Some(plan));
        run_scale(&mut rt, vec![0, 1, 2, 3], ResiliencePolicy::FailStop, n)
            .unwrap_err()
            .to_string()
    };
    let msg = run();
    assert!(
        msg.contains("device 1 lost"),
        "fail-stop must name the lost device, got: {msg}"
    );
    assert_eq!(run(), msg, "fail-stop error must be deterministic");
}

#[test]
fn redistribute_fails_when_every_device_is_dead() {
    let plan = FaultPlan::new(3)
        .lose_device(0, SimTime::ZERO)
        .lose_device(1, SimTime::ZERO);
    let mut rt = runtime(2, Some(plan));
    let err = run_scale(&mut rt, vec![0, 1], ResiliencePolicy::Redistribute, 128).unwrap_err();
    assert!(
        matches!(err, RtError::DeviceLost { .. }),
        "no survivors => the loss surfaces, got: {err}"
    );
}

#[test]
fn dynamic_schedule_rejects_redistribute() {
    let mut rt = runtime(2, None);
    let a = rt.host_array("A", 64);
    let err = rt
        .run(|s| {
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::dynamic(16))
                .with_resilience(ResiliencePolicy::Redistribute)
                .map(spread_tofrom(a, |c| c.range()))
                .parallel_for(
                    s,
                    0..64,
                    KernelSpec::new("id", 1.0, |_, _| {}).arg(KernelArg::read(a, |r| r)),
                )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)));
}

#[test]
fn resilient_spread_without_faults_matches_fail_stop_exactly() {
    let n = 512;
    let (expect, _) = clean_run(4, n);
    let mut rt = runtime(4, None);
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], ResiliencePolicy::Redistribute, n).unwrap();
    assert_eq!(out, expect);
    let redists = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Redistribute)
        .count();
    assert_eq!(redists, 0, "no fault, no recovery work");
}
