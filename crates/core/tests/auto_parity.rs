//! Clause-composition parity between `spread_schedule(auto)` and the
//! static schedules it resolves into.
//!
//! `auto` is specified as *syntactic sugar over `StaticWeighted`*: the
//! runtime resolves it to a concrete weighted plan before any clause
//! validation, so every clause combination must behave exactly as it
//! does for an explicit `StaticWeighted` — same `Ok`/`Err` outcome,
//! same [`RtError`] variant on rejection (never a panic), and
//! bit-identical results where both succeed (the first `auto` launch
//! uses the equal split, i.e. the same plan as equal weights). The one
//! documented divergence is `nowait`: a nowait construct has no
//! completion point to close the profile window, so `auto` rejects it
//! with [`RtError::InvalidDirective`] where `StaticWeighted` accepts.

use std::mem::discriminant;

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_sim::FaultPlan;
use spread_trace::SimTime;

const N: usize = 256;
const N_DEV: usize = 4;

fn runtime(mem_bytes: u64, plan: Option<FaultPlan>) -> Runtime {
    let topo = Topology::uniform(
        N_DEV,
        DeviceSpec::v100().with_mem_bytes(mem_bytes),
        1e9,
        1.5e9,
    );
    let mut cfg = RuntimeConfig::new(topo)
        .with_team_threads(2)
        .with_trace(true);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    Runtime::new(cfg)
}

/// The equal split `auto` starts from, written as an explicit schedule.
fn equal_static() -> SpreadSchedule {
    SpreadSchedule::StaticWeighted {
        round: N,
        weights: vec![1.0; N_DEV],
    }
}

/// `B[i] = 3*A[i] + 1` under an arbitrary clause combination.
fn run_scale(
    rt: &mut Runtime,
    schedule: SpreadSchedule,
    resilience: ResiliencePolicy,
    pressure: PressurePolicy,
    nowait: bool,
) -> Result<Vec<f64>, RtError> {
    let a = rt.host_array("A", N);
    let b = rt.host_array("B", N);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        let mut t = TargetSpread::devices(0..N_DEV as u32)
            .with_schedule(schedule.clone())
            .with_resilience(resilience)
            .with_pressure(pressure)
            .map(spread_to(a, |c| c.range()))
            .map(spread_from(b, |c| c.range()));
        if nowait {
            t = t.nowait();
        }
        t.parallel_for(
            s,
            0..N,
            KernelSpec::new("scale", 2.0, |chunk, v| {
                for i in chunk {
                    v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                }
            })
            .arg(KernelArg::read(a, |r| r))
            .arg(KernelArg::write(b, |r| r)),
        )?;
        Ok(())
    })?;
    Ok(rt.snapshot_host(b))
}

/// Run the same clause combination under `auto` and under the explicit
/// equal-weight `StaticWeighted` it desugars to, and require identical
/// outcomes: same success/failure, same error variant, same bits.
fn assert_parity(
    mem_bytes: u64,
    plan: Option<FaultPlan>,
    resilience: ResiliencePolicy,
    pressure: PressurePolicy,
    combo: &str,
) {
    let mut rt_static = runtime(mem_bytes, plan.clone());
    let got_static = run_scale(&mut rt_static, equal_static(), resilience, pressure, false);
    let mut rt_auto = runtime(mem_bytes, plan);
    let got_auto = run_scale(
        &mut rt_auto,
        SpreadSchedule::auto("parity"),
        resilience,
        pressure,
        false,
    );
    match (&got_static, &got_auto) {
        (Ok(s), Ok(a)) => assert_eq!(s, a, "{combo}: results must be bit-identical"),
        (Err(es), Err(ea)) => assert_eq!(
            discriminant(es),
            discriminant(ea),
            "{combo}: same RtError variant expected (static: {es:?}, auto: {ea:?})"
        ),
        _ => panic!(
            "{combo}: Ok/Err divergence — static: {:?}, auto: {:?}",
            got_static.as_ref().map(|_| "Ok"),
            got_auto.as_ref().map(|_| "Ok")
        ),
    }
}

#[test]
fn auto_matches_static_on_the_plain_construct() {
    assert_parity(
        1 << 22,
        None,
        ResiliencePolicy::FailStop,
        PressurePolicy::Fail,
        "no extra clauses",
    );
}

#[test]
fn auto_composes_with_resilience_redistribute() {
    // Fault-free first: the clause is armed but never fires.
    assert_parity(
        1 << 22,
        None,
        ResiliencePolicy::Redistribute,
        PressurePolicy::Fail,
        "redistribute, fault-free",
    );
    // And with a mid-run device loss, both recover to the same bits.
    let mid = {
        let mut rt = runtime(1 << 22, None);
        run_scale(
            &mut rt,
            equal_static(),
            ResiliencePolicy::FailStop,
            PressurePolicy::Fail,
            false,
        )
        .unwrap();
        SimTime::from_nanos(rt.elapsed().as_nanos() / 2)
    };
    assert_parity(
        1 << 22,
        Some(FaultPlan::new(7).lose_device(1, mid)),
        ResiliencePolicy::Redistribute,
        PressurePolicy::Fail,
        "redistribute, device 1 lost mid-run",
    );
}

#[test]
fn auto_composes_with_pressure_split_and_spill() {
    // Tight memory: each device holds ~3 KiB while an equal split needs
    // 2 * 64 * 8 = 1024 bytes per device — admission still fits, but
    // only after the planner engages. Both schedules degrade the same
    // way because auto resolves before admission planning.
    for (policy, name) in [
        (PressurePolicy::Split, "pressure(split)"),
        (PressurePolicy::Spill, "pressure(spill)"),
    ] {
        assert_parity(3 << 10, None, ResiliencePolicy::FailStop, policy, name);
        // Ample memory too: the clause is armed but makes no moves.
        assert_parity(
            1 << 22,
            None,
            ResiliencePolicy::FailStop,
            policy,
            "ample-memory pressure",
        );
    }
}

#[test]
fn auto_rejects_the_same_invalid_combos_as_static() {
    // pressure + redistribute is invalid for every schedule.
    assert_parity(
        1 << 22,
        None,
        ResiliencePolicy::Redistribute,
        PressurePolicy::Split,
        "pressure+redistribute",
    );
    // Empty devices is invalid for every schedule.
    let mut rt = runtime(1 << 22, None);
    let a = rt.host_array("A", N);
    for schedule in [equal_static(), SpreadSchedule::auto("empty")] {
        let err = rt
            .run(|s| {
                TargetSpread::devices([])
                    .with_schedule(schedule.clone())
                    .map(spread_tofrom(a, |c| c.range()))
                    .parallel_for(
                        s,
                        0..N,
                        KernelSpec::new("id", 1.0, |_, _| {}).arg(KernelArg::read(a, |r| r)),
                    )?;
                Ok(())
            })
            .unwrap_err();
        assert!(
            matches!(err, RtError::InvalidDirective(_)),
            "empty devices: {err:?}"
        );
    }
}

#[test]
fn auto_with_nowait_is_an_invalid_directive_not_a_panic() {
    // The documented divergence: StaticWeighted accepts nowait, auto
    // cannot (no completion point closes the profile window).
    let mut rt = runtime(1 << 22, None);
    let ok = run_scale(
        &mut rt,
        equal_static(),
        ResiliencePolicy::FailStop,
        PressurePolicy::Fail,
        true,
    );
    assert!(ok.is_ok(), "StaticWeighted + nowait is legal: {ok:?}");
    let mut rt = runtime(1 << 22, None);
    let err = run_scale(
        &mut rt,
        SpreadSchedule::auto("nowait"),
        ResiliencePolicy::FailStop,
        PressurePolicy::Fail,
        true,
    )
    .unwrap_err();
    match err {
        RtError::InvalidDirective(msg) => {
            assert!(msg.contains("blocking construct"), "message: {msg}")
        }
        other => panic!("expected InvalidDirective, got {other:?}"),
    }
    // pressure + nowait is rejected for both schedules (auto reaches
    // its own nowait gate first; the variant is the same).
    for schedule in [equal_static(), SpreadSchedule::auto("pn")] {
        let mut rt = runtime(1 << 22, None);
        let err = run_scale(
            &mut rt,
            schedule,
            ResiliencePolicy::FailStop,
            PressurePolicy::Split,
            true,
        )
        .unwrap_err();
        assert!(
            matches!(err, RtError::InvalidDirective(_)),
            "pressure+nowait: {err:?}"
        );
    }
}

#[test]
fn dynamic_rejections_do_not_loosen_under_auto() {
    // The contrast cases: Dynamic + redistribute / pressure are
    // invalid, and auto (which resolves to StaticWeighted) is accepted
    // in exactly those spots.
    let mut rt = runtime(1 << 22, None);
    let err = run_scale(
        &mut rt,
        SpreadSchedule::dynamic(32),
        ResiliencePolicy::Redistribute,
        PressurePolicy::Fail,
        false,
    )
    .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
    let mut rt = runtime(1 << 22, None);
    run_scale(
        &mut rt,
        SpreadSchedule::auto("dyn-contrast"),
        ResiliencePolicy::Redistribute,
        PressurePolicy::Fail,
        false,
    )
    .expect("auto + redistribute is legal where dynamic is not");
    let mut rt = runtime(1 << 22, None);
    let err = run_scale(
        &mut rt,
        SpreadSchedule::dynamic(32),
        ResiliencePolicy::FailStop,
        PressurePolicy::Split,
        false,
    )
    .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err:?}");
    let mut rt = runtime(1 << 22, None);
    run_scale(
        &mut rt,
        SpreadSchedule::auto("dyn-contrast-2"),
        ResiliencePolicy::FailStop,
        PressurePolicy::Split,
        false,
    )
    .expect("auto + pressure is legal where dynamic is not");
}

#[test]
fn data_directives_reject_auto_with_invalid_directive() {
    // A standalone data directive has no construct profile to resolve
    // against; `auto` must be an InvalidDirective there, not a panic.
    let mut rt = runtime(1 << 22, None);
    let a = rt.host_array("A", N);
    let err = rt
        .run(|s| {
            TargetEnterDataSpread::devices(0..N_DEV as u32)
                .range(0, N)
                .chunk_size(32)
                .with_schedule(SpreadSchedule::auto("data"))
                .map(spread_to(a, |c| c.range()))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    match err {
        RtError::InvalidDirective(msg) => assert!(
            msg.contains("static distribution"),
            "enter data message: {msg}"
        ),
        other => panic!("expected InvalidDirective, got {other:?}"),
    }
    let err = rt
        .run(|s| {
            TargetExitDataSpread::devices(0..N_DEV as u32)
                .range(0, N)
                .chunk_size(32)
                .with_schedule(SpreadSchedule::auto("data"))
                .map(spread_from(a, |c| c.range()))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, RtError::InvalidDirective(_)),
        "exit data: {err:?}"
    );
    // An explicit StaticWeighted in the same spot is accepted — the
    // rejection is about auto, not about the schedule clause itself.
    rt.run(|s| {
        TargetEnterDataSpread::devices(0..N_DEV as u32)
            .range(0, N)
            .with_schedule(equal_static())
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        TargetExitDataSpread::devices(0..N_DEV as u32)
            .range(0, N)
            .with_schedule(equal_static())
            .map(spread_from(a, |c| c.range()))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
}
