//! End-to-end tests of the `spread_pressure(…)` clause: a `target
//! spread` construct degrading gracefully — admission moves, chunk
//! splits, host spill — instead of failing when device memory cannot
//! hold its mapped sections, always with bit-identical results.

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_rt::DegradationKind;
use spread_sim::FaultPlan;
use spread_trace::{SimTime, SpanKind};

fn runtime(n_devices: usize, mem_bytes: u64, plan: Option<FaultPlan>) -> Runtime {
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(mem_bytes),
        1e9,
        1.5e9,
    );
    let mut cfg = RuntimeConfig::new(topo).with_team_threads(2);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    Runtime::new(cfg)
}

/// `B[i] = 3*A[i] + 1` spread in 64-iteration chunks under a pressure
/// policy. Footprint per chunk: (64 + 64) * 8 = 1024 bytes.
fn run_scale(
    rt: &mut Runtime,
    devices: Vec<u32>,
    policy: PressurePolicy,
    n: usize,
) -> Result<Vec<f64>, RtError> {
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetSpread::devices(devices.clone())
            .with_schedule(SpreadSchedule::static_chunk(64))
            .with_pressure(policy)
            .map(spread_to(a, |c| c.range()))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("scale", 2.0, |chunk, v| {
                    for i in chunk {
                        v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })?;
    Ok(rt.snapshot_host(b))
}

fn expected(n: usize) -> Vec<f64> {
    (0..n).map(|i| 3.0 * i as f64 + 1.0).collect()
}

#[test]
fn no_pressure_means_no_degradation() {
    let mut rt = runtime(2, 1 << 22, None);
    let out = run_scale(&mut rt, vec![0, 1], PressurePolicy::Split, 128).unwrap();
    assert_eq!(out, expected(128));
    assert!(rt.degradations().is_empty());
    assert!(rt.races().is_empty());
}

#[test]
fn admission_moves_chunk_off_pressured_device() {
    // A sustained OOM window fills device 0 before anything launches:
    // its chunk re-homes to device 1 at admission time, no split needed.
    let cap = 8192;
    let plan = FaultPlan::new(21).sustain_pressure(0, SimTime::ZERO, cap);
    let mut rt = runtime(2, cap, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1], PressurePolicy::Split, 128).unwrap();
    assert_eq!(out, expected(128));
    let evs = rt.degradations();
    assert_eq!(evs.len(), 1, "exactly one admission move, got {evs:?}");
    assert_eq!(evs[0].kind, DegradationKind::AdmissionShrunk);
    assert_eq!(evs[0].device, Some(1));
    assert_eq!((evs[0].start, evs[0].len), (0, 64));
    assert!(rt.races().is_empty());
}

#[test]
fn oversized_chunks_split_recursively_and_complete() {
    // 768 B per device: no device holds a 1024 B chunk, but the
    // construct's 2048 B total fits the 2304 B fleet — chunks split
    // (one of them twice) and everything completes bit-identically.
    let mut rt = runtime(3, 768, None);
    let out = run_scale(&mut rt, vec![0, 1, 2], PressurePolicy::Split, 128).unwrap();
    assert_eq!(out, expected(128));
    let evs = rt.degradations();
    assert!(
        evs.len() >= 4,
        "two oversized chunks must split at least once each, got {evs:?}"
    );
    assert!(evs.iter().all(|e| e.kind == DegradationKind::ChunkSplit));
    // The split pieces tile the iteration space exactly.
    let covered: usize = evs.iter().map(|e| e.len).sum();
    assert_eq!(covered, 128);
    // And the trace shows the split glyphs.
    let splits = rt
        .timeline()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::ChunkSplit)
        .count();
    assert_eq!(splits, evs.len());
    assert!(rt.races().is_empty());
}

#[test]
fn spill_completes_when_no_device_has_headroom() {
    // Sustained pressure fills both devices entirely: every chunk
    // executes through the host staging buffer, results still exact.
    let cap = 8192;
    let plan = FaultPlan::new(23)
        .sustain_pressure(0, SimTime::ZERO, cap)
        .sustain_pressure(1, SimTime::ZERO, cap);
    let mut rt = runtime(2, cap, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1], PressurePolicy::Spill, 128).unwrap();
    assert_eq!(out, expected(128));
    let evs = rt.degradations();
    assert_eq!(evs.len(), 2, "both chunks spill whole, got {evs:?}");
    assert!(evs.iter().all(|e| e.kind == DegradationKind::Spilled));
    assert!(evs.iter().all(|e| e.device.is_none()));
    assert_eq!(evs.iter().map(|e| e.bytes).sum::<u64>(), 2048);
    let spans = rt.timeline();
    assert!(spans.spans().iter().any(|s| s.kind == SpanKind::Spill));
}

#[test]
fn split_policy_fails_degraded_when_hopeless() {
    let cap = 8192;
    let plan = FaultPlan::new(23)
        .sustain_pressure(0, SimTime::ZERO, cap)
        .sustain_pressure(1, SimTime::ZERO, cap);
    let mut rt = runtime(2, cap, Some(plan));
    let err = run_scale(&mut rt, vec![0, 1], PressurePolicy::Split, 128).unwrap_err();
    assert!(
        matches!(err, RtError::Degraded { .. }),
        "split without spill must surface Degraded, got: {err}"
    );
}

#[test]
fn reactive_split_recovers_from_fragmentation() {
    // Admission's byte budget is blind to holes: carve the pool into
    // two free blocks of 2048 B and 1536 B (3584 B free in total), then
    // ask for one 3072 B chunk. Admission admits it (3072 <= 3584), the
    // enter's contiguous allocation fails past its retries, and the
    // reactive handler splits the chunk into two 1536 B halves that fit
    // the holes one after the other.
    let mut rt = runtime(1, 4096, None);
    let n = 384;
    let big = rt.host_array("big", 256);
    let small = rt.host_array("small", 64);
    let x = rt.host_array("X", n);
    rt.fill_host(x, |i| i as f64);
    // [big: 2048 B][small: 512 B][tail: 1536 B] → release big → holes.
    rt.run(|s| {
        TargetEnterData::device(0)
            .map(spread_rt::map::to(big, 0..256))
            .launch(s)?;
        TargetEnterData::device(0)
            .map(spread_rt::map::to(small, 0..64))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    rt.run(|s| {
        TargetExitData::device(0)
            .map(spread_rt::map::release(big, 0..256))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    rt.run(|s| {
        TargetSpread::devices([0])
            .with_schedule(SpreadSchedule::static_chunk(n))
            .with_pressure(PressurePolicy::Split)
            .map(spread_tofrom(x, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("double", 2.0, |chunk, v| {
                    for i in chunk {
                        v.set(0, i, 2.0 * v.get(0, i));
                    }
                })
                .arg(KernelArg::read_write(x, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(x);
    assert_eq!(out, (0..n).map(|i| 2.0 * i as f64).collect::<Vec<_>>());
    let evs = rt.degradations();
    assert_eq!(
        evs.iter()
            .filter(|e| e.kind == DegradationKind::ChunkSplit)
            .count(),
        2,
        "fragmentation must trigger one reactive split into halves, got {evs:?}"
    );
    let covered: usize = evs.iter().map(|e| e.len).sum();
    assert_eq!(covered, n);
}

#[test]
fn pressure_under_pressure_is_deterministic() {
    let run = || {
        let cap = 8192;
        let plan = FaultPlan::new(23)
            .sustain_pressure(0, SimTime::ZERO, cap)
            .sustain_pressure(1, SimTime::ZERO, cap / 2);
        let mut rt = runtime(2, cap, Some(plan));
        let out = run_scale(&mut rt, vec![0, 1], PressurePolicy::Spill, 256).unwrap();
        (out, rt.degradations(), rt.elapsed())
    };
    assert_eq!(
        run(),
        run(),
        "same plan, same seed => identical degradation"
    );
}

#[test]
fn pressure_rejects_dynamic_nowait_and_redistribute() {
    let mut rt = runtime(2, 1 << 22, None);
    let a = rt.host_array("A", 64);
    let kernel = || KernelSpec::new("id", 1.0, |_, _| {}).arg(KernelArg::read(a, |r| r));
    let build = || {
        TargetSpread::devices([0, 1])
            .with_pressure(PressurePolicy::Split)
            .map(spread_to(a, |c| c.range()))
    };
    let err = rt
        .run(|s| {
            build()
                .with_schedule(SpreadSchedule::dynamic(16))
                .parallel_for(s, 0..64, kernel())?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err}");
    let err = rt
        .run(|s| {
            build().nowait().parallel_for(s, 0..64, kernel())?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err}");
    let err = rt
        .run(|s| {
            build()
                .with_resilience(ResiliencePolicy::Redistribute)
                .parallel_for(s, 0..64, kernel())?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)), "{err}");
}
