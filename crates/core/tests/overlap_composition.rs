//! The `spread_overlap(…)` row/column of the clause-composition matrix
//! (DESIGN.md §15), cell by cell: every reject fires `InvalidDirective`
//! at issue time, and every compose keeps whole-piece semantics —
//! straggler rescues re-execute whole pieces, integrity digests verify
//! whole pieces, resilience replays whole pieces — all bit-identical to
//! the un-pipelined runs.

use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_rt::IntegrityAction;
use spread_sim::FaultPlan;
use spread_trace::SimTime;

fn runtime(n_devices: usize, plan: Option<FaultPlan>) -> Runtime {
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.5e9,
    );
    let mut cfg = RuntimeConfig::new(topo).with_team_threads(2);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    Runtime::new(cfg)
}

/// `B[i] = 3*A[i] + 1` spread over the devices; `build` customizes the
/// clause set on top of a static 64-chunk schedule.
fn run_scale(
    rt: &mut Runtime,
    devices: Vec<u32>,
    n: usize,
    work_ns: f64,
    build: impl FnOnce(TargetSpread) -> TargetSpread,
) -> Result<Vec<f64>, RtError> {
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        let t = build(
            TargetSpread::devices(devices.clone()).with_schedule(SpreadSchedule::static_chunk(64)),
        );
        t.map(spread_to(a, |c| c.range()))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("scale", work_ns, |chunk, v| {
                    for i in chunk {
                        v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                    }
                })
                .arg(KernelArg::read(a, |r| r))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })?;
    Ok(rt.snapshot_host(b))
}

fn expect_invalid(res: Result<Vec<f64>, RtError>, needle: &str) {
    match res {
        Err(RtError::InvalidDirective(msg)) => {
            assert!(msg.contains(needle), "wrong message: {msg}");
        }
        other => panic!("expected InvalidDirective({needle}), got {other:?}"),
    }
}

// ---- Reject cells -------------------------------------------------------

#[test]
fn overlap_rejects_dynamic_schedule() {
    let mut rt = runtime(2, None);
    let res = run_scale(&mut rt, vec![0, 1], 256, 2.0, |t| {
        t.with_schedule(SpreadSchedule::dynamic(64))
            .with_overlap(OverlapPolicy::Depth(2))
    });
    expect_invalid(res, "requires a static schedule");
}

#[test]
fn overlap_rejects_nowait() {
    let mut rt = runtime(2, None);
    let res = run_scale(&mut rt, vec![0, 1], 256, 2.0, |t| {
        t.nowait().with_overlap(OverlapPolicy::Depth(2))
    });
    expect_invalid(res, "requires a blocking construct");
}

#[test]
fn overlap_depth_zero_rejects() {
    let mut rt = runtime(2, None);
    let res = run_scale(&mut rt, vec![0, 1], 256, 2.0, |t| {
        t.with_overlap(OverlapPolicy::Depth(0))
    });
    expect_invalid(res, "spread_overlap(0) is invalid");
}

#[test]
fn overlap_auto_requires_schedule_auto() {
    let mut rt = runtime(2, None);
    let res = run_scale(&mut rt, vec![0, 1], 256, 2.0, |t| {
        t.with_overlap(OverlapPolicy::Auto)
    });
    expect_invalid(res, "requires spread_schedule(auto)");
}

#[test]
fn overlap_rejects_pressure_degradation() {
    for policy in [PressurePolicy::Split, PressurePolicy::Spill] {
        let mut rt = runtime(2, None);
        let res = run_scale(&mut rt, vec![0, 1], 256, 2.0, |t| {
            t.with_pressure(policy)
                .with_overlap(OverlapPolicy::Depth(2))
        });
        expect_invalid(res, "incompatible with");
    }
}

#[test]
fn data_directives_reject_overlap() {
    // `spread_overlap` pipelines an executable construct's kernel; the
    // four data-management directives have no kernel to overlap with.
    let mut rt = runtime(2, None);
    let n = 128;
    let a = rt.host_array("A", n);
    let err = rt
        .run(|s| {
            TargetEnterDataSpread::devices([0, 1])
                .range(0, n)
                .chunk_size(64)
                .with_overlap(OverlapPolicy::Depth(2))
                .map(spread_to(a, |c| c.range()))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    match err {
        RtError::InvalidDirective(msg) => {
            assert!(msg.contains("spread_overlap"), "wrong message: {msg}")
        }
        other => panic!("expected InvalidDirective, got {other:?}"),
    }
}

// ---- Compose cells ------------------------------------------------------

/// overlap × static schedule (the monitored case): bit-identical across
/// depths and devices.
#[test]
fn overlap_static_multi_device_bit_identical() {
    let n = 1024;
    let mut clean = runtime(4, None);
    let expect = run_scale(&mut clean, vec![0, 1, 2, 3], n, 2.0, |t| t).unwrap();
    for depth in [2, 4] {
        let mut rt = runtime(4, None);
        let out = run_scale(&mut rt, vec![0, 1, 2, 3], n, 2.0, |t| {
            t.with_overlap(OverlapPolicy::Depth(depth))
        })
        .unwrap();
        assert_eq!(out, expect, "depth {depth}");
        let recs = rt.overlap_records();
        assert_eq!(recs.len(), n / 64, "one record per pipelined piece");
        assert!(recs.iter().all(|r| r.staged == r.committed && !r.leaked));
        assert!(rt.races().is_empty());
        for d in 0..4 {
            assert_eq!(rt.device_mem_used(d), 0);
        }
    }
}

/// overlap × spread_schedule(auto): `OverlapPolicy::Auto` resolves a
/// depth per launch from the profile store (explore {1, 2, 4}, then the
/// EWMA argmin), bit-identical throughout.
#[test]
fn overlap_auto_explores_depths_and_stays_bit_identical() {
    let n = 1024;
    let mut clean = runtime(2, None);
    let expect = run_scale(&mut clean, vec![0, 1], n, 2.0, |t| t).unwrap();

    let mut rt = runtime(2, None);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        for _ in 0..6 {
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::auto("auto-overlap"))
                .with_overlap(OverlapPolicy::Auto)
                .map(spread_to(a, |c| c.range()))
                .map(spread_from(b, |c| c.range()))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("scale", 2.0, |chunk, v| {
                        for i in chunk {
                            v.set(1, i, 3.0 * v.get(0, i) + 1.0);
                        }
                    })
                    .arg(KernelArg::read(a, |r| r))
                    .arg(KernelArg::write(b, |r| r)),
                )?;
        }
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.snapshot_host(b), expect);
    // The exploration phase must have tried the pipelined candidates
    // (depths 2 and 4) at least once each: those launches leave overlap
    // records; depth-1 launches do not.
    let recs = rt.overlap_records();
    let depths: std::collections::BTreeSet<u32> = recs.iter().map(|r| r.depth).collect();
    assert!(
        depths.contains(&2) && depths.contains(&4),
        "auto must explore depths 2 and 4, saw {depths:?}"
    );
    assert!(rt.races().is_empty());
}

/// overlap × resilience(redistribute): a device lost mid-run is
/// rebuilt on the survivors from the host image — whole pieces,
/// bit-identical.
#[test]
fn overlap_composes_with_redistribute() {
    let n = 1024;
    let mut clean = runtime(4, None);
    let expect = run_scale(&mut clean, vec![0, 1, 2, 3], n, 2.0, |t| t).unwrap();
    let mid = {
        let mut rt = runtime(4, None);
        run_scale(&mut rt, vec![0, 1, 2, 3], n, 2.0, |t| {
            t.with_overlap(OverlapPolicy::Depth(4))
        })
        .unwrap();
        SimTime::from_nanos(rt.elapsed().as_nanos() / 2)
    };
    let plan = FaultPlan::new(7).lose_device(2, mid);
    let mut rt = runtime(4, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], n, 2.0, |t| {
        t.with_overlap(OverlapPolicy::Depth(4))
            .with_resilience(ResiliencePolicy::Redistribute)
    })
    .unwrap();
    assert_eq!(out, expect, "redistributed results must be bit-identical");
    assert!(rt.races().is_empty());
}

/// overlap × straggler(steal): the slow pipelined piece is rescued by a
/// whole-piece re-execution on a sibling; first-commit-wins sees exactly
/// one commit per rescue and the result is bit-identical.
#[test]
fn overlap_composes_with_straggler_steal() {
    let n = 512;
    // Serial lanes + 2 µs/iter so the kernel dominates; device 1 slowed
    // 8× for the whole run.
    let mut clean = runtime(4, None);
    let expect = run_scale(&mut clean, vec![0, 1, 2, 3], n, 2000.0, |t| {
        t.num_teams(1).num_threads(1)
    })
    .unwrap();
    let plan = FaultPlan::new(5).slow_compute(1, SimTime::ZERO, SimTime::MAX, 8.0);
    let mut rt = runtime(4, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], n, 2000.0, |t| {
        t.num_teams(1)
            .num_threads(1)
            .with_overlap(OverlapPolicy::Depth(2))
            .with_straggler(StragglerPolicy::Steal)
    })
    .unwrap();
    assert_eq!(out, expect, "rescued results must be bit-identical");
    let rescues = rt.rescues();
    assert!(!rescues.is_empty(), "the slow piece must be rescued");
    for r in &rescues {
        assert_eq!(r.from, 1);
        assert_ne!(r.to, 1);
        assert_eq!(r.commits, 1, "exactly one whole-piece commit per rescue");
    }
    // The rescue re-executes the piece *un-pipelined*: the overlap log
    // holds one record per original piece and nothing for rescues.
    assert_eq!(rt.overlap_records().len(), n / 64);
    assert!(rt.races().is_empty());
}

/// overlap × integrity(verify): a silent flip on a sub-slice drain is
/// caught at the whole-piece commit digest and fails the construct.
#[test]
fn overlap_composes_with_integrity_verify() {
    let n = 512;
    let plan = FaultPlan::new(11).silent_flips(1, SimTime::ZERO, 1);
    let mut rt = runtime(4, Some(plan));
    let err = run_scale(&mut rt, vec![0, 1, 2, 3], n, 2.0, |t| {
        t.with_overlap(OverlapPolicy::Depth(4))
            .with_integrity(IntegrityMode::Verify)
    })
    .unwrap_err();
    match err {
        RtError::IntegrityViolation { device, .. } => assert_eq!(device, 1),
        other => panic!("expected IntegrityViolation on device 1, got {other:?}"),
    }
    let events = rt.integrity_events();
    assert!(events.iter().any(|e| e.action == IntegrityAction::Failed));
}

/// overlap × integrity(heal): the tainted pipelined piece re-executes
/// from the host image and the final state is bit-identical.
#[test]
fn overlap_composes_with_integrity_heal() {
    let n = 512;
    let mut clean = runtime(4, None);
    let expect = run_scale(&mut clean, vec![0, 1, 2, 3], n, 2.0, |t| t).unwrap();
    let plan = FaultPlan::new(11).silent_flips(1, SimTime::ZERO, 1);
    let mut rt = runtime(4, Some(plan));
    let out = run_scale(&mut rt, vec![0, 1, 2, 3], n, 2.0, |t| {
        t.with_overlap(OverlapPolicy::Depth(4))
            .with_integrity(IntegrityMode::Heal)
    })
    .unwrap();
    assert_eq!(out, expect, "healed results must be bit-identical");
    assert!(rt
        .integrity_events()
        .iter()
        .any(|e| e.action == IntegrityAction::Healed && e.device == 1));
    assert!(rt.races().is_empty());
}

/// Depth(1) is exactly Off: no pipeline engages, no records are kept.
#[test]
fn depth_one_is_off() {
    let n = 512;
    let mut rt = runtime(2, None);
    let out = run_scale(&mut rt, vec![0, 1], n, 2.0, |t| {
        t.with_overlap(OverlapPolicy::Depth(1))
    })
    .unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 3.0 * i as f64 + 1.0);
    }
    assert!(rt.overlap_records().is_empty());
}
