//! The spec's array sections — `A[start:len]` over numbered arrays,
//! with the same overlap algebra as the runtime's `Section` (which the
//! consumers convert to and from at their boundary).

use std::fmt;
use std::ops::Range;

/// A contiguous element range of one numbered host array.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbsSection {
    /// The array number.
    pub array: u32,
    /// First element.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

impl AbsSection {
    /// `array[start:len]`.
    pub fn new(array: u32, start: usize, len: usize) -> Self {
        AbsSection { array, start, len }
    }

    /// Build from a `Range` of element indexes.
    pub fn from_range(array: u32, range: Range<usize>) -> Self {
        AbsSection {
            array,
            start: range.start,
            len: range.end.saturating_sub(range.start),
        }
    }

    /// One-past-the-end element.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// The element range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end()
    }

    /// True if the section has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if both sections are on the same array and share at least
    /// one element.
    pub fn overlaps(&self, other: &AbsSection) -> bool {
        self.array == other.array
            && !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }

    /// True if `other` lies entirely within `self` (same array).
    pub fn contains(&self, other: &AbsSection) -> bool {
        self.array == other.array && other.start >= self.start && other.end() <= self.end()
    }
}

impl fmt::Display for AbsSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}[{}:{}]", self.array, self.start, self.len)
    }
}

impl fmt::Debug for AbsSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AbsSection({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(start: usize, len: usize) -> AbsSection {
        AbsSection::new(0, start, len)
    }

    #[test]
    fn overlap_and_containment_match_the_runtime_algebra() {
        assert!(s(0, 10).overlaps(&s(9, 5)));
        assert!(!s(0, 10).overlaps(&s(10, 5)), "adjacent is not overlap");
        assert!(!s(0, 0).overlaps(&s(0, 10)), "empty never overlaps");
        assert!(!s(0, 10).overlaps(&AbsSection::new(1, 0, 10)));
        assert!(s(0, 10).contains(&s(2, 5)));
        assert!(s(0, 10).contains(&s(0, 10)));
        assert!(!s(0, 10).contains(&s(5, 10)));
        assert_eq!(AbsSection::from_range(0, 4..9), s(4, 5));
        assert_eq!(s(3, 7).to_string(), "arr0[3:7]");
    }
}
