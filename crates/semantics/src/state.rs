//! The explicit abstract machine state: host images, per-device
//! presence maps with refcounts and data images, device health, and the
//! recorded degradation / peer-route / reduction observations.
//!
//! [`DeviceMap`] is the spec twin of `spread-rt`'s presence table — the
//! runtime mirrors every mutation against one of these under
//! `debug_assertions` and asserts the decisions agree (rules `M-*` in
//! the crate docs).

use crate::error::Degradation;
use crate::machine::Perturb;
use crate::map::MapKind;
use crate::section::AbsSection;

/// One present (or dying) mapping on a device.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecEntry {
    /// The mapped section.
    pub section: AbsSection,
    /// Structured-region reference count.
    pub refcount: u32,
    /// True between `M-Dying` and `M-Free`: the entry no longer
    /// satisfies lookups but its storage is still live.
    pub dying: bool,
    /// The device-side image of the section. `None` when the map is
    /// used purely structurally (the runtime mirror tracks shape only,
    /// not bytes — it has the real buffers).
    pub data: Option<Vec<f64>>,
}

/// What [`DeviceMap::begin_enter`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnterOutcome {
    /// `M-Reuse`: the section is contained in this live entry; its
    /// refcount was incremented and **no copy** happens.
    Reuse(u64),
    /// `M-Fresh`: nothing overlaps; the caller allocates and calls
    /// [`DeviceMap::insert_fresh`].
    Fresh,
}

/// What [`DeviceMap::begin_exit`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitOutcome {
    /// `M-Keep`: references remain; only the refcount dropped.
    Keep(u64),
    /// `M-Dying`: that was the last reference — the entry is dying;
    /// copy out if the exit kind copies out, then
    /// [`DeviceMap::commit_exit`].
    LastRef(u64),
}

/// Why a mapping operation was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum Conflict {
    /// `M-Extend`: the request overlaps `present` without being
    /// contained in it.
    Extension {
        /// The live entry the request collided with.
        present: AbsSection,
    },
    /// `M-NotMapped`: no live entry contains the request.
    NotMapped,
}

/// The presence map of one device: entries in creation order, each with
/// a stable id so the runtime mirror can correlate its own keys.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceMap {
    entries: Vec<(u64, SpecEntry)>,
    next_id: u64,
}

impl DeviceMap {
    /// The id of the live (non-dying) entry containing `s`, if any.
    pub fn lookup_containing(&self, s: &AbsSection) -> Option<u64> {
        self.entries
            .iter()
            .find(|(_, e)| !e.dying && e.section.contains(s))
            .map(|(id, _)| *id)
    }

    /// Rules `M-Reuse` / `M-Extend` / `M-Fresh`: decide how an enter of
    /// `s` proceeds. Reuse increments the refcount here; fresh entries
    /// are the caller's to build ([`DeviceMap::insert_fresh`]).
    pub fn begin_enter(&mut self, s: &AbsSection) -> Result<EnterOutcome, Conflict> {
        if let Some(id) = self.lookup_containing(s) {
            self.entry_mut(id).unwrap().refcount += 1;
            return Ok(EnterOutcome::Reuse(id));
        }
        if let Some((_, e)) = self.entries.iter().find(|(_, e)| e.section.overlaps(s)) {
            return Err(Conflict::Extension { present: e.section });
        }
        Ok(EnterOutcome::Fresh)
    }

    /// Rule `M-Alloc`: insert a fresh entry for `s` with refcount 1.
    pub fn insert_fresh(&mut self, section: AbsSection, data: Option<Vec<f64>>) -> u64 {
        debug_assert!(
            !self
                .entries
                .iter()
                .any(|(_, e)| e.section.overlaps(&section)),
            "insert_fresh over an overlapping entry"
        );
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push((
            id,
            SpecEntry {
                section,
                refcount: 1,
                dying: false,
                data,
            },
        ));
        id
    }

    /// Rules `M-Keep` / `M-Dying` / `M-NotMapped`: decide how an exit of
    /// `s` proceeds. `force_delete` (`map(delete: …)`) zeroes the
    /// refcount instead of decrementing it.
    pub fn begin_exit(
        &mut self,
        s: &AbsSection,
        force_delete: bool,
    ) -> Result<ExitOutcome, Conflict> {
        let Some(id) = self.lookup_containing(s) else {
            return Err(Conflict::NotMapped);
        };
        let e = self.entry_mut(id).unwrap();
        if force_delete {
            e.refcount = 0;
        } else {
            e.refcount -= 1;
        }
        if e.refcount == 0 {
            e.dying = true;
            Ok(ExitOutcome::LastRef(id))
        } else {
            Ok(ExitOutcome::Keep(id))
        }
    }

    /// Rule `M-Free`: the release transfer completed — remove the dying
    /// entry and return it (its data is the copy-out source). `None` if
    /// the entry is already gone (e.g. wiped by `M-Wipe`).
    pub fn commit_exit(&mut self, id: u64) -> Option<SpecEntry> {
        let pos = self.entries.iter().position(|(k, _)| *k == id)?;
        let (_, e) = self.entries.remove(pos);
        debug_assert!(e.dying, "commit_exit of a live entry");
        Some(e)
    }

    /// Rule `M-Wipe`: permanent device loss — every entry vanishes.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The live entry with id `id`.
    pub fn entry(&self, id: u64) -> Option<&SpecEntry> {
        self.entries.iter().find(|(k, _)| *k == id).map(|(_, e)| e)
    }

    /// Mutable access to the entry with id `id`.
    pub fn entry_mut(&mut self, id: u64) -> Option<&mut SpecEntry> {
        self.entries
            .iter_mut()
            .find(|(k, _)| *k == id)
            .map(|(_, e)| e)
    }

    /// All entries (live and dying) in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SpecEntry)> {
        self.entries.iter().map(|(id, e)| (*id, e))
    }

    /// The observable mapping snapshot: `(array, start, len, refcount)`
    /// for every non-dying entry, fully sorted — the shape the
    /// conformance harness compares.
    pub fn snapshot(&self) -> Vec<(u32, usize, usize, u32)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.dying)
            .map(|(_, e)| (e.section.array, e.section.start, e.section.len, e.refcount))
            .collect();
        v.sort_unstable();
        v
    }
}

/// The whole abstract machine state at one point of a program.
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    /// Host image of every array.
    pub host: Vec<Vec<f64>>,
    /// Per-device presence maps.
    pub devices: Vec<DeviceMap>,
    /// Per-device health; a permanently lost device is dead from time
    /// zero (its map stays empty and rules `S-FailStop`/`S-Lost` fire).
    pub alive: Vec<bool>,
    /// Reduction results in program order (`S-Fold`).
    pub reduces: Vec<f64>,
    /// Degradation events in admission-plan order (`S-Admit`).
    pub degradations: Vec<Degradation>,
    /// Peer routes in plan order as `(src, dst, array, start, len)`
    /// (`S-Exchange`).
    pub routes: Vec<(u32, u32, u32, usize, usize)>,
    /// The active canary perturbation, if any — a deliberately wrong
    /// rule variant used to prove the harness detects disagreement.
    pub perturb: Option<Perturb>,
    /// Pending silent-corruption tokens per device (`S-Flip`): each
    /// token taints one committing drain on that device, consumed by
    /// `S-Verify`/`S-Heal` at the construct's commit boundary.
    pub flips: Vec<u32>,
}

impl State {
    /// The initial state: `host` images as given, `n_devices` empty
    /// healthy maps except `lost`, which is dead at time zero.
    pub fn new(host: Vec<Vec<f64>>, n_devices: usize, lost: Option<u32>) -> Self {
        State {
            host,
            devices: vec![DeviceMap::default(); n_devices],
            alive: (0..n_devices).map(|d| Some(d as u32) != lost).collect(),
            reduces: Vec::new(),
            degradations: Vec::new(),
            routes: Vec::new(),
            perturb: None,
            flips: vec![0; n_devices],
        }
    }

    /// Rule `S-Enter` for one map clause: reuse keeps the existing
    /// image (no copy); a fresh entry materialises with the host image
    /// iff the kind copies in, zeros otherwise.
    pub fn enter(&mut self, device: u32, kind: MapKind, s: AbsSection) -> Result<(), Conflict> {
        if s.is_empty() {
            return Ok(());
        }
        match self.devices[device as usize].begin_enter(&s)? {
            EnterOutcome::Reuse(_) => Ok(()),
            EnterOutcome::Fresh => {
                let data = if kind.copies_in() {
                    self.host[s.array as usize][s.range()].to_vec()
                } else {
                    vec![0.0; s.len]
                };
                self.devices[device as usize].insert_fresh(s, Some(data));
                Ok(())
            }
        }
    }

    /// Rule `S-Exit` for one map clause: the last release copies the
    /// requested window back to the host iff the kind copies out, then
    /// frees (`M-Free`).
    pub fn exit(&mut self, device: u32, kind: MapKind, s: AbsSection) -> Result<(), Conflict> {
        if s.is_empty() {
            return Ok(());
        }
        let force_delete = kind == MapKind::Delete;
        match self.devices[device as usize].begin_exit(&s, force_delete)? {
            ExitOutcome::Keep(_) => Ok(()),
            ExitOutcome::LastRef(id) => {
                let e = self.devices[device as usize].commit_exit(id).unwrap();
                if kind.copies_out() {
                    if let Some(data) = &e.data {
                        let off = s.start - e.section.start;
                        self.host[s.array as usize][s.range()]
                            .copy_from_slice(&data[off..off + s.len]);
                    }
                }
                Ok(())
            }
        }
    }

    /// Rule `S-Update`: copy `s` through its containing live entry,
    /// host→device (`from_device == false`) or device→host.
    pub fn update(
        &mut self,
        device: u32,
        from_device: bool,
        s: AbsSection,
    ) -> Result<(), Conflict> {
        if s.is_empty() {
            return Ok(());
        }
        let map = &mut self.devices[device as usize];
        let Some(id) = map.lookup_containing(&s) else {
            return Err(Conflict::NotMapped);
        };
        let e = map.entry_mut(id).unwrap();
        let off = s.start - e.section.start;
        let data = e
            .data
            .as_mut()
            .expect("spec update through a shape-only entry");
        if from_device {
            self.host[s.array as usize][s.range()].copy_from_slice(&data[off..off + s.len]);
        } else {
            data[off..off + s.len].copy_from_slice(&self.host[s.array as usize][s.range()]);
        }
        Ok(())
    }

    /// Read one element of `array` from the entry mapping it on
    /// `device`. Panics if unmapped — kernels only run over sections
    /// their construct mapped, so this is an internal invariant.
    pub fn read_dev(&self, device: u32, array: u32, i: usize) -> f64 {
        let s = AbsSection::new(array, i, 1);
        let map = &self.devices[device as usize];
        let id = map
            .lookup_containing(&s)
            .unwrap_or_else(|| panic!("spec read of unmapped {s} on device {device}"));
        let e = map.entry(id).unwrap();
        e.data.as_ref().expect("shape-only entry")[i - e.section.start]
    }

    /// Write one element of `array` on `device` (see
    /// [`State::read_dev`] for the mapping invariant).
    pub fn write_dev(&mut self, device: u32, array: u32, i: usize, v: f64) {
        let s = AbsSection::new(array, i, 1);
        let map = &mut self.devices[device as usize];
        let id = map
            .lookup_containing(&s)
            .unwrap_or_else(|| panic!("spec write of unmapped {s} on device {device}"));
        let e = map.entry_mut(id).unwrap();
        let off = e.section.start;
        e.data.as_mut().expect("shape-only entry")[i - off] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(start: usize, len: usize) -> AbsSection {
        AbsSection::new(0, start, len)
    }

    #[test]
    fn reuse_increments_and_never_copies() {
        let mut st = State::new(vec![vec![1.0; 8]], 1, None);
        st.enter(0, MapKind::To, s(0, 8)).unwrap();
        st.write_dev(0, 0, 3, 42.0);
        st.enter(0, MapKind::To, s(2, 4)).unwrap();
        assert_eq!(st.read_dev(0, 0, 3), 42.0, "reuse must not refresh bytes");
        assert_eq!(st.devices[0].snapshot(), vec![(0, 0, 8, 2)]);
    }

    #[test]
    fn extension_is_rejected_with_the_present_entry() {
        let mut map = DeviceMap::default();
        assert_eq!(map.begin_enter(&s(0, 4)), Ok(EnterOutcome::Fresh));
        map.insert_fresh(s(0, 4), None);
        assert_eq!(
            map.begin_enter(&s(2, 4)),
            Err(Conflict::Extension { present: s(0, 4) })
        );
    }

    #[test]
    fn dying_entries_block_reuse_and_extension_until_freed() {
        let mut map = DeviceMap::default();
        map.insert_fresh(s(0, 8), None);
        let ExitOutcome::LastRef(id) = map.begin_exit(&s(0, 8), false).unwrap() else {
            panic!("sole reference must be the last");
        };
        assert_eq!(map.lookup_containing(&s(0, 4)), None, "dying blocks reuse");
        assert_eq!(
            map.begin_enter(&s(4, 8)),
            Err(Conflict::Extension { present: s(0, 8) }),
            "dying storage still blocks extension"
        );
        assert!(map.commit_exit(id).is_some());
        assert_eq!(map.begin_enter(&s(4, 8)), Ok(EnterOutcome::Fresh));
    }

    #[test]
    fn delete_zeroes_the_refcount_and_last_ref_copies_out() {
        let mut st = State::new(vec![vec![0.0; 4]], 1, None);
        st.enter(0, MapKind::ToFrom, s(0, 4)).unwrap();
        st.enter(0, MapKind::ToFrom, s(0, 4)).unwrap();
        st.write_dev(0, 0, 1, 7.0);
        st.exit(0, MapKind::Delete, s(0, 4)).unwrap();
        assert_eq!(st.host[0][1], 0.0, "delete never copies out");
        assert!(st.devices[0].snapshot().is_empty());

        st.enter(0, MapKind::ToFrom, s(0, 4)).unwrap();
        st.write_dev(0, 0, 1, 9.0);
        st.exit(0, MapKind::From, s(0, 4)).unwrap();
        assert_eq!(st.host[0][1], 9.0, "last from-release copies out");
    }

    #[test]
    fn exit_of_unmapped_is_not_mapped() {
        let mut st = State::new(vec![vec![0.0; 4]], 1, None);
        assert_eq!(
            st.exit(0, MapKind::Release, s(0, 4)),
            Err(Conflict::NotMapped)
        );
        assert_eq!(st.update(0, false, s(0, 4)), Err(Conflict::NotMapped));
    }

    #[test]
    fn update_windows_copy_through_the_containing_entry() {
        let mut st = State::new(vec![(0..8).map(|i| i as f64).collect()], 1, None);
        st.enter(0, MapKind::To, s(0, 8)).unwrap();
        st.write_dev(0, 0, 5, -1.0);
        st.update(0, true, s(4, 2)).unwrap();
        assert_eq!(st.host[0][5], -1.0);
        assert_eq!(st.host[0][6], 6.0, "outside the window is untouched");
        st.host[0][5] = 50.0;
        st.update(0, false, s(5, 1)).unwrap();
        assert_eq!(st.read_dev(0, 0, 5), 50.0);
    }
}
